"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists only so that
``pip install -e .`` works in offline environments whose setuptools
cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
