"""E7: why mixed questions need NL2CM (the introduction's argument).

For every mixed corpus question (one with both general entities and
individual expressions in its gold annotation), measures what fraction
of the information needs each system covers:

* NL2CM — general needs into WHERE, individual needs into SATISFYING;
* the general-only baseline (pre-NL2CM NL interfaces) — general needs
  only; individual needs are silently dropped, and habit-only
  questions fail outright.
"""

from repro.baselines import GeneralOnlyTranslator
from repro.data.corpus import supported_questions
from repro.errors import ReproError
from repro.eval.harness import format_table
from repro.rdf.terms import IRI


def covered_needs(query, question):
    """(general hits, individual hits) for a produced query."""
    names = {
        t.local_name
        for triple in (list(query.where)
                       + [t for c in query.satisfying for t in c.triples])
        for t in triple.terms()
        if isinstance(t, IRI)
    }
    general = sum(
        1 for e in question.gold_general_entities if e in names
    )
    mined_preds = {
        t.p.local_name
        for c in query.satisfying
        for t in c.triples
        if isinstance(t.p, IRI)
    }
    return general, len(mined_preds)


def test_bench_general_only_vs_nl2cm(nl2cm, ontology, report_writer):
    baseline = GeneralOnlyTranslator(ontology=ontology)

    mixed = [
        q for q in supported_questions()
        if q.gold_general_entities and q.gold_ix_anchors
    ]
    assert len(mixed) >= 20

    stats = {"nl2cm": [0, 0, 0], "baseline": [0, 0, 0]}
    # fields: [questions answered, general needs covered,
    #          questions whose individual needs are covered]
    total_general = 0
    for question in mixed:
        total_general += len(question.gold_general_entities)

        result = nl2cm.translate(question.text)
        g, i = covered_needs(result.query, question)
        stats["nl2cm"][0] += 1
        stats["nl2cm"][1] += g
        stats["nl2cm"][2] += int(i > 0)

        try:
            base = baseline.translate(question.text)
        except ReproError:
            continue
        g, i = covered_needs(base.query, question)
        stats["baseline"][0] += 1
        stats["baseline"][1] += g
        stats["baseline"][2] += int(i > 0)

    rows = []
    for name, (answered, general, individual) in stats.items():
        rows.append([
            name,
            f"{answered}/{len(mixed)}",
            f"{general}/{total_general}",
            f"{individual}/{len(mixed)}",
        ])
    table = format_table(
        ["system", "questions answered", "general needs covered",
         "individual needs covered"],
        rows,
    )
    report_writer("E7-baseline-comparison", table)

    # Shape claims: NL2CM answers everything and covers the individual
    # needs; the general-only baseline covers none of them and cannot
    # even answer every question.
    assert stats["nl2cm"][0] == len(mixed)
    assert stats["nl2cm"][2] == len(mixed)
    assert stats["baseline"][2] == 0
    assert stats["baseline"][0] < len(mixed)
    # On the general parts alone, the baseline is comparable — that is
    # the point: the gap is the individual parts.
    assert stats["baseline"][1] <= stats["nl2cm"][1]
