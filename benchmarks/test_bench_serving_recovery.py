"""E9 (follow-up): warm-restart recovery — cache hit rate after a crash.

The warm-restart protocol claims a worker crash costs restart latency,
not cache locality: before a replacement rejoins the ring, the manager
replays the shard's hottest (question → query) pairs into its LRU from
the shadow index.  This bench measures exactly that claim as a recovery
curve and gates on it:

* Drive the full supported-question trace until every shard's cache is
  hot and record the **pre-crash hit rate** over one steady-state round.
* Sever one worker mid-trace; the next request restarts it in place.
* Replay one more round (the **recovery window** — each distinct
  question exactly once, so a cold replacement cannot hide behind
  re-caching) and record the post-restart hit rate.
* Gate: with warm-up on, the post-restart hit rate must reach at least
  ``RECOVERY_FLOOR`` of the pre-crash rate inside that window.  The
  ``warmup_keys=0`` run is the cold baseline reported next to it.
* Always: query texts are byte-identical across pre-crash, post-crash,
  warm and cold — recovery is an execution detail, never a semantics
  change.

Thread-mode workers keep the bench fast and deterministic; the protocol
is identical to the process tier (``test_chaos.py`` proves the kill -9
variant).  Results go to ``results/E9-serving-recovery.txt`` and, for
the CI artifact, ``results/E9-serving-recovery.json``.
"""

import json
from pathlib import Path

from repro.data.corpus import supported_questions
from repro.eval.harness import format_table
from repro.serving import ShardManager, WorkerSpec

RESULTS_DIR = Path(__file__).parent / "results"

#: Post-restart hit rate must reach this fraction of the pre-crash rate
#: within one recovery window (warm-up enabled).
RECOVERY_FLOOR = 0.8

#: Warm-up rounds before the steady-state measurement.
WARMUP_ROUNDS = 2


def _hit_rate(outcomes) -> float:
    return sum(1 for o in outcomes if o.cached) / len(outcomes)


def _run_mode(trace: list[str], warmup_keys: int) -> dict:
    """One crash/recovery cycle; returns the measured curve points."""
    with ShardManager(
        shards=2,
        spec=WorkerSpec(cache_size=len(trace) * 2, threads=1),
        start_method="thread",
        connect_timeout=120.0,
        warmup_keys=warmup_keys,
    ) as manager:
        for _ in range(WARMUP_ROUNDS):
            warm = [manager.submit(t, timeout=120.0) for t in trace]
        assert all(o.ok for o in warm)
        baseline = {o.text: o.query for o in warm}
        steady = [manager.submit(t, timeout=120.0) for t in trace]
        pre_rate = _hit_rate(steady)

        victim = manager.route(trace[0])
        owned = sum(1 for t in trace if manager.route(t) == victim)
        # Sever the channel mid-trace: the next dispatch to this shard
        # discovers the crash and restarts (and maybe warms) in place.
        manager._handles[victim].channel.close()

        recovery = [manager.submit(t, timeout=120.0) for t in trace]
        post_rate = _hit_rate(recovery)
        stats = manager.stats()

    assert all(o.ok for o in recovery)
    assert stats.requests == stats.accounted
    assert stats.restarts == 1
    # Byte-identical answers before and after the crash, warm or cold.
    assert {o.text: o.query for o in recovery} == baseline
    return {
        "warmup_keys": warmup_keys,
        "pre_crash_hit_rate": pre_rate,
        "post_restart_hit_rate": post_rate,
        "recovery_ratio": post_rate / pre_rate if pre_rate else 0.0,
        "window_requests": len(trace),
        "crashed_shard_keys": owned,
        "cache_warmups_ok": stats.cache_warmups_ok,
        "cache_warmup_entries": stats.cache_warmup_entries,
        "queries": baseline,
    }


def test_bench_warm_restart_recovery(report_writer):
    trace = [q.text for q in supported_questions()]
    warm = _run_mode(trace, warmup_keys=len(trace))
    cold = _run_mode(trace, warmup_keys=0)

    # Identical semantics across the warm/cold axis too.
    assert warm.pop("queries") == cold.pop("queries")

    rows = [
        [
            mode["label"],
            f"{mode['pre_crash_hit_rate']:.1%}",
            f"{mode['post_restart_hit_rate']:.1%}",
            f"{mode['recovery_ratio']:.2f}",
            str(mode["cache_warmup_entries"]),
        ]
        for mode in (
            {"label": "warm restart", **warm},
            {"label": "cold restart", **cold},
        )
    ]
    table = format_table(
        ["mode", "pre-crash hits", "post-restart hits",
         "recovery", "entries replayed"],
        rows,
    )
    table += (
        f"\n\ntrace: {len(trace)} distinct questions; one shard of 2 "
        f"severed mid-trace; recovery window = one round (each "
        f"question exactly once); floor {RECOVERY_FLOOR:.0%} of the "
        f"pre-crash rate with warm-up on"
    )
    report_writer("E9-serving-recovery", table)
    (RESULTS_DIR / "E9-serving-recovery.json").write_text(
        json.dumps(
            {"floor": RECOVERY_FLOOR, "warm": warm, "cold": cold},
            indent=2,
        ) + "\n",
        "utf-8",
    )

    assert warm["cache_warmups_ok"] == 1
    assert warm["recovery_ratio"] >= RECOVERY_FLOOR, (
        f"warm restart recovered only "
        f"{warm['recovery_ratio']:.0%} of the pre-crash hit rate "
        f"(floor {RECOVERY_FLOOR:.0%})"
    )
    # The cold baseline proves the gate measures the protocol, not the
    # window: without warm-up, every key the dead shard owned misses.
    assert cold["post_restart_hit_rate"] < warm["post_restart_hit_rate"]
    assert cold["cache_warmup_entries"] == 0
