"""E8: ablation of the IX pattern classes.

DESIGN.md calls out the declarative pattern set as the key design
choice; this bench drops each individuality type (lexical /
participant / syntactic) in turn and measures the recall damage —
showing every class carries non-redundant signal, the paper's argument
for covering all three.
"""

from repro.core.ixdetect import IXDetector, load_default_patterns
from repro.eval.harness import evaluate_ix_anchors, format_table


def anchors_fn(patterns):
    detector = IXDetector(patterns=patterns)

    def run(graph):
        return {ix.anchor.lower for ix in detector.detect(graph)}

    return run


def test_bench_pattern_type_ablation(report_writer):
    all_patterns = load_default_patterns()
    full = evaluate_ix_anchors(anchors_fn(all_patterns))

    rows = [["full pattern set", f"{full.precision:.2f}",
             f"{full.recall:.2f}", f"{full.f1:.2f}"]]
    recalls = {}
    for dropped in ("lexical", "participant", "syntactic"):
        kept = [p for p in all_patterns if p.ix_type != dropped]
        pr = evaluate_ix_anchors(anchors_fn(kept))
        recalls[dropped] = pr.recall
        rows.append([
            f"without {dropped} patterns",
            f"{pr.precision:.2f}", f"{pr.recall:.2f}", f"{pr.f1:.2f}",
        ])

    table = format_table(["pattern set", "P", "R", "F1"], rows)
    report_writer("E8-ix-ablation", table)

    # Every type contributes: dropping it strictly hurts recall.
    for dropped, recall in recalls.items():
        assert recall < full.recall, dropped
    # Dropping the lexical patterns hurts the most — opinion adjectives
    # are the single largest IX class in forum questions.
    assert recalls["lexical"] == min(recalls.values())


def test_bench_single_pattern_contributions(report_writer):
    all_patterns = load_default_patterns()
    rows = []
    for pattern in all_patterns:
        pr = evaluate_ix_anchors(anchors_fn([pattern]))
        rows.append([
            pattern.name, pattern.ix_type,
            f"{pr.precision:.2f}", f"{pr.recall:.2f}",
        ])
    table = format_table(["pattern", "type", "P", "R"], rows)
    report_writer("E8-per-pattern", table)
