"""E8b: ablation of composition's IX-overlap deletion strategy.

The paper (Section 3) has FREyA process the *full* request and lets
Query Composition "delete generated SPARQL triples that correspond to
detected IXs".  This bench makes the hazard concrete: an ontology that
happens to contain entities named like opinion words ("Interesting",
a gallery) and habit verbs ("Visit", a magazine) — exactly the
KB-coincidences that make FREyA mis-translate IXs into general triples.
With deletion on, the composed queries stay correct; with deletion off
(ablated), spurious WHERE triples leak into the output.
"""

from repro.core.compose import QueryComposer
from repro.core.ixdetect import IXDetector
from repro.core.triples import IndividualTripleCreator
from repro.data.ontologies import load_merged_ontology
from repro.eval.harness import format_table
from repro.freya.generator import GeneralQueryGenerator
from repro.nlp.depparse import DependencyParser
from repro.rdf.ontology import Ontology
from repro.rdf.turtle import serialize_turtle
from repro.ui.interaction import AutoInteraction

# Classes whose labels collide with the *participants* of habit IXs.
# A KB that knows about "teenagers" or "people" as concepts makes the
# IX-blind generator type the habit's subject — a spurious WHERE triple
# about a participant the query projects out as "[]".
POISON_TTL = """
@prefix kb: <http://repro.example/kb/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

kb:Teenager rdfs:label "teenager" ;
    kb:alias "teenagers" .
kb:Some_Teen kb:instanceOf kb:Teenager ;
    rdfs:label "Some Teen" .
kb:Person_Class rdfs:label "person" ;
    kb:alias "people" ;
    kb:alias "locals" .
kb:Some_Person kb:instanceOf kb:Person_Class ;
    rdfs:label "Someone" .
kb:Kid_Class rdfs:label "kid" ;
    kb:alias "kids" .
kb:Some_Kid kb:instanceOf kb:Kid_Class ;
    rdfs:label "Some Kid" .
"""

QUESTIONS = [
    "Where do teenagers hang out?",
    "Do people eat oatmeal for breakfast?",
    "What places do your kids love in Buffalo?",
]


class _NoDeletionComposer(QueryComposer):
    """The ablated composer: keeps every general triple."""

    def _delete_overlaps(self, general, ixs):
        return list(general), []


def _translate(question, ontology, composer):
    parser = DependencyParser()
    detector = IXDetector(ontology=ontology)
    generator = GeneralQueryGenerator(ontology)
    creator = IndividualTripleCreator()
    provider = AutoInteraction()

    graph = parser.parse(question)
    ixs = detector.detect(graph)
    general = generator.generate(graph, provider)
    individual = creator.create(graph, ixs)
    return composer.compose(graph, ixs, individual, general, provider)


def test_bench_deletion_strategy(report_writer):
    poisoned = Ontology.from_turtle(
        serialize_turtle(load_merged_ontology().store) + POISON_TTL
    )

    rows = []
    leaked_without = 0
    deleted_with = 0
    for question in QUESTIONS:
        with_deletion = _translate(question, poisoned, QueryComposer())
        without = _translate(question, poisoned, _NoDeletionComposer())
        leak = len(without.query.where) - len(with_deletion.query.where)
        leaked_without += leak
        deleted_with += len(with_deletion.deleted_general)
        rows.append([
            question[:44] + ("..." if len(question) > 44 else ""),
            len(with_deletion.query.where),
            len(without.query.where),
            len(with_deletion.deleted_general),
        ])

    table = format_table(
        ["question", "WHERE (deletion on)", "WHERE (ablated)",
         "deleted triples"],
        rows,
    )
    report_writer("E8b-composition-deletion", table)

    # The strategy matters: the poisoned KB makes FREyA produce triples
    # for IX words, and only deletion removes them.
    assert deleted_with > 0
    assert leaked_without > 0


def test_deletion_is_noop_on_clean_corpus(nl2cm, report_writer):
    """On the real snapshots, deletion rarely fires — IX words simply
    do not match the KB, which is why the paper's strategy is safe."""
    from repro.data.corpus import supported_questions

    total_deleted = 0
    for question in supported_questions():
        result = nl2cm.translate(question.text)
        total_deleted += len(result.composed.deleted_general)
    report_writer(
        "E8b-deletion-on-clean-kb",
        f"general triples deleted across the corpus: {total_deleted}",
    )
    assert total_deleted <= 2
