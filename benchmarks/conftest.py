"""Shared fixtures and reporting helpers for the experiment benches.

Every experiment writes its result table both to stdout and to
``benchmarks/results/<experiment>.txt``, so the tables survive pytest's
output capturing; EXPERIMENTS.md records the reference numbers.
"""

from pathlib import Path

import pytest

from repro import NL2CM
from repro.data.ontologies import load_merged_ontology

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ontology():
    return load_merged_ontology()


@pytest.fixture(scope="session")
def nl2cm(ontology):
    return NL2CM(ontology=ontology)


@pytest.fixture(scope="session")
def report_writer():
    """``writer(name, text)`` prints and persists an experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n===== {name} =====")
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", "utf-8")

    return write
