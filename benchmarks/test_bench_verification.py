"""E3: the verification step (demo stage iii).

Measures acceptance of supported questions, rejection of the
descriptive forms the paper lists ("How...?", "Why...?", "For what
purpose...?"), correctness of the rejection reason, and tip coverage —
plus the latency of a verification pass over the corpus.
"""

from repro.core.verification import Verifier
from repro.data.corpus import CORPUS
from repro.eval.harness import evaluate_verification


def test_bench_verification_quality(report_writer):
    report = evaluate_verification()
    assert report.accuracy == 1.0
    assert report.false_accepts == 0
    assert report.false_rejects == 0
    assert report.reason_correct == report.reject_total
    assert report.tips_covered == report.reject_total
    report_writer("E3-verification", report.format())


def test_bench_verification_latency(benchmark):
    verifier = Verifier()
    texts = [q.text for q in CORPUS]

    def verify_all():
        return [verifier.verify(t) for t in texts]

    results = benchmark(verify_all)
    assert len(results) == len(CORPUS)
