"""E14: KB lint overhead — construction-time analysis must stay cheap.

``NL2CM(kb_lint="warn")`` (the default) runs OntologyLint + PatternLint
over the knowledge artifacts once, at construction.  The CI gate pins
that this single streaming pass costs under 5% of a genuinely *cold*
construction.  Like E11, the comparison uses **medians of per-round
measurements** (immune to GC pauses and scheduler noise) and measures
the two quantities directly rather than by differencing two noisy
end-to-end runs: each round clears the snapshot loader caches before
timing the construction, and clears the analyzer memo before timing
the lint pass, so neither side can hide behind a cache.
"""

import statistics
import time

from repro import NL2CM
from repro.analysis import kblint
from repro.analysis.kblint import OntologyLint
from repro.data import ontologies
from repro.eval.harness import format_table

ROUNDS = 25
MAX_OVERHEAD = 0.05

_LOADERS = (
    ontologies.load_geo,
    ontologies.load_dbpedia,
    ontologies.load_food,
    ontologies.load_merged_ontology,
)


def test_bench_kb_lint_overhead(report_writer):
    construction = []
    lint = []
    # Two untimed rounds first: they exercise the exact cold path the
    # timed rounds measure, so first-call costs (bytecode, allocator
    # warm-up) are paid before any measurement.
    for round_no in range(ROUNDS + 2):
        for loader in _LOADERS:
            loader.cache_clear()
        kblint._MEMO.clear()
        start = time.perf_counter()
        nl2cm = NL2CM(kb_lint="off")
        elapsed_construction = time.perf_counter() - start

        kblint._MEMO.clear()
        start = time.perf_counter()
        nl2cm._lint_knowledge_artifacts()
        elapsed_lint = time.perf_counter() - start
        if round_no >= 2:
            construction.append(elapsed_construction)
            lint.append(elapsed_lint)
    construction_med = statistics.median(construction)
    lint_med = statistics.median(lint)
    # Each round's lint is paired with its own construction, so slow
    # rounds (GC, scheduler) inflate both sides of the ratio equally.
    overhead = statistics.median(
        l / c for l, c in zip(lint, construction)
    )

    table = format_table(
        ["quantity", "value"],
        [
            ["cold construction (kb_lint=off)",
             f"{construction_med * 1000:.1f} ms"],
            ["cold KB lint pass", f"{lint_med * 1000:.2f} ms"],
            ["overhead", f"{overhead:.2%}"],
            ["budget", f"{MAX_OVERHEAD:.0%}"],
        ],
    )
    report_writer("E14-kblint-overhead", table)

    assert overhead < MAX_OVERHEAD


def test_bench_memoized_relint_is_free(ontology):
    # Re-linting a cached (frozen) ontology hits the analyzer memo: the
    # repeat pass must be an order of magnitude under the cold pass.
    linter = OntologyLint()

    kblint._MEMO.clear()
    start = time.perf_counter()
    linter.lint(ontology)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        linter.lint(ontology)
    memoized = (time.perf_counter() - start) / 10

    assert memoized < cold / 5, (
        f"memoized re-lint {memoized * 1000:.2f} ms vs "
        f"cold {cold * 1000:.2f} ms"
    )
