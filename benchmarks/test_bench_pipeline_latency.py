"""E6: per-stage pipeline latency (the admin-mode timings).

The admin monitor shows the intermediate outputs with timings; this
bench aggregates per-stage latency across the corpus and checks the
scaling with sentence length stays sane (rule-cascade parsing is
near-linear in tokens).
"""

from collections import defaultdict

from repro.data.corpus import supported_questions
from repro.eval.harness import format_table

STAGES = ("verification", "nl-parsing", "ix-detection", "ix-finder",
          "ix-creator", "ix-verification", "general-query-generator",
          "individual-triple-creation", "query-composition",
          "query-lint", "final-query")

# Top-level stages: their spans tile the root (the covering
# "ix-detection" span parents the finder/creator/verification rows),
# so summing them approximates the wall-clock total from below.
TOTAL_STAGES = ("verification", "nl-parsing", "ix-detection",
                "general-query-generator", "individual-triple-creation",
                "query-composition", "query-lint", "final-query")


def test_bench_stage_latency(nl2cm, report_writer):
    totals = defaultdict(float)
    wall = 0.0
    n = 0
    for question in supported_questions():
        result = nl2cm.translate(question.text)
        for stage, seconds in result.trace.timings().items():
            totals[stage] += seconds
        wall += result.trace.total_seconds()
        n += 1

    total = sum(totals[stage] for stage in TOTAL_STAGES)
    rows = [
        [stage, f"{totals[stage] / n * 1000:.2f}"]
        for stage in STAGES
    ]
    rows.append(["TOTAL (stages)", f"{total / n * 1000:.2f}"])
    rows.append(["TOTAL (wall)", f"{wall / n * 1000:.2f}"])
    table = format_table(["stage", "mean ms/question"], rows)
    report_writer("E6-stage-latency", table)

    # The pipeline is interactive-speed (well under a second).
    assert total / n < 1.0
    # Stage spans can never sum past the covering root span.
    assert total <= wall
    # Static analysis must stay in the noise: < 5% of the mean total.
    assert totals["query-lint"] < 0.05 * total


def test_bench_length_scaling(nl2cm, report_writer):
    short = "Where do you visit in Buffalo?"
    long = ("What are the most interesting places near Forest Hotel, "
            "Buffalo, we should visit in the fall?")
    timings = {}
    for label, text in (("short", short), ("long", long)):
        result = nl2cm.translate(text)
        timings[label] = result.trace.total_seconds()
    table = format_table(
        ["sentence", "tokens", "total ms"],
        [
            ["short", len(short.split()), f"{timings['short']*1000:.2f}"],
            ["long", len(long.split()), f"{timings['long']*1000:.2f}"],
        ],
    )
    report_writer("E6-length-scaling", table)


def test_bench_full_translation(benchmark, nl2cm):
    questions = [q.text for q in supported_questions()[:10]]

    def translate_all():
        return [nl2cm.translate(t) for t in questions]

    results = benchmark(translate_all)
    assert len(results) == len(questions)
