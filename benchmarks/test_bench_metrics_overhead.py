"""E11: metrics overhead — observing the pipeline must stay free.

Two checks, both CI gates:

* the Prometheus exposition of a fully exercised registry parses line
  by line through the strict :func:`repro.obs.parse_prometheus_text`;
* the per-request metric recording cost (counters, outcome labels, the
  translate histogram and every per-stage self-time observation) is
  under 3% of the mean pipeline latency — measured directly by
  replaying the recording path of a real trace many times, which is
  far more stable than differencing two noisy end-to-end runs.
"""

import time

from repro import MetricsRegistry, NL2CM, TranslationService
from repro.data.corpus import supported_questions
from repro.eval.harness import format_table
from repro.obs import parse_prometheus_text

RECORD_ROUNDS = 2000
MAX_OVERHEAD = 0.03


def test_bench_metrics_overhead(ontology, report_writer):
    registry = MetricsRegistry()
    service = TranslationService(
        NL2CM(ontology=ontology), workers=4, cache=256,
        registry=registry,
    )
    texts = [q.text for q in supported_questions()]
    service.translate_batch(texts)

    stats = service.stats()
    mean_latency = stats.busy_seconds / stats.translated

    # Replay the exact per-fresh-translation recording work against a
    # real trace (the cached result keeps its original span tree).
    trace = service.translate(texts[0]).trace
    start = time.perf_counter()
    for _ in range(RECORD_ROUNDS):
        with service._lock:
            service._record_translation(trace)
    record_cost = (time.perf_counter() - start) / RECORD_ROUNDS
    overhead = record_cost / mean_latency

    table = format_table(
        ["quantity", "value"],
        [
            ["mean pipeline latency", f"{mean_latency * 1000:.3f} ms"],
            ["metric recording / request",
             f"{record_cost * 1e6:.1f} us"],
            ["overhead", f"{overhead:.2%}"],
            ["budget", f"{MAX_OVERHEAD:.0%}"],
        ],
    )
    report_writer("E11-metrics-overhead", table)

    assert overhead < MAX_OVERHEAD

    # The exposition of the exercised registry is well-formed.
    text = registry.expose()
    parsed = parse_prometheus_text(text)
    for name in (
        "nl2cm_requests_total",
        "nl2cm_request_outcomes_total",
        "nl2cm_translate_seconds",
        "nl2cm_stage_seconds",
        "nl2cm_cache_lookups_total",
        "nl2cm_cache_size",
    ):
        assert name in parsed, f"{name} missing from exposition"
        assert parsed[name]["samples"], f"{name} has no samples"
