"""E13: cost-based planner vs. the greedy evaluator.

Three measurements, three gates:

* **Repeated-shape BGP workload** — S shapes x V constant variations x
  R repeats against a synthetic store.  The cost planner compiles each
  shape once and serves every variation/repeat from the plan cache; the
  greedy evaluator re-plans (and re-counts selectivities) per call.
  Gates: cost >= 1.5x greedy, plan-cache hit rate >= 90%.
* **Cold-plan overhead** — the extra latency of a plan-cache miss over
  a hit (ordering + shape hashing; step compilation runs on both
  paths), compared to the mean E6 translation latency measured in this
  same run.  Gate: overhead <= 5% of the translation mean.
* **E9 repeated-question mix** — the WHERE clauses of every translated
  corpus query, repeated round-robin as in E9's serving trace,
  evaluated with each planner.  Gate: cost >= 1.0x greedy (a measurable
  win on the serving mix), plus byte-identical translation output and
  identical WHERE solution multisets across planner modes.

Results go to ``benchmarks/results/E13-planner.txt`` and (for the CI
artifact) ``E13-planner.json``.
"""

import json
import time
from pathlib import Path

from repro import NL2CM
from repro.data.corpus import supported_questions
from repro.eval.harness import format_table
from repro.oassis.engine import OassisEngine
from repro.rdf.planner import QueryPlanner
from repro.rdf.sparql import TriplePattern, evaluate_bgp, iter_bgp
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, Variable

RESULTS_DIR = Path(__file__).parent / "results"

N_ENTITIES = 400
N_CLASSES = 8
VARIATIONS = 24
REPEATS = 3
E9_REPEATS = 4

SPEEDUP_FLOOR = 1.5
HIT_RATE_FLOOR = 0.90
COLD_PLAN_CEILING = 0.05
E9_FLOOR = 1.0


def kb(name: str) -> IRI:
    return IRI(f"http://bench.example/{name}")


TYPE, NEAR, LABEL = kb("type"), kb("near"), kb("label")


def synthetic_store() -> TripleStore:
    """A deterministic store: typed entities in a near-neighbor ring."""
    store = TripleStore()
    for i in range(N_ENTITIES):
        e = kb(f"e{i}")
        store.add(e, TYPE, kb(f"C{i % N_CLASSES}"))
        store.add(e, NEAR, kb(f"e{(i * 7 + 1) % N_ENTITIES}"))
        store.add(e, NEAR, kb(f"e{(i * 13 + 5) % N_ENTITIES}"))
        store.add(e, LABEL, Literal(f"entity {i}"))
    return store


def shape_workload() -> list[list[TriplePattern]]:
    """S shapes x VARIATIONS constants, flattened in round-robin order."""
    x, y, t, l = (Variable(v) for v in "xytl")
    variants: list[list[list[TriplePattern]]] = [[] for _ in range(4)]
    for v in range(VARIATIONS):
        cls = kb(f"C{v % N_CLASSES}")
        ent = kb(f"e{(v * 31) % N_ENTITIES}")
        variants[0].append([
            TriplePattern(x, TYPE, cls),
            TriplePattern(x, NEAR, y),
            TriplePattern(y, LABEL, l),
        ])
        variants[1].append([
            TriplePattern(x, NEAR, y),
            TriplePattern(y, TYPE, cls),
        ])
        variants[2].append([
            TriplePattern(ent, NEAR, y),
            TriplePattern(y, LABEL, l),
        ])
        variants[3].append([
            TriplePattern(x, TYPE, cls),
            TriplePattern(x, NEAR, y),
            TriplePattern(y, TYPE, t),
        ])
    return [bgp for group in zip(*variants) for bgp in group]


def drain(solutions) -> int:
    return sum(1 for _ in solutions)


def canon(solutions):
    return sorted(
        tuple(sorted((k, str(v)) for k, v in s.items()))
        for s in solutions
    )


def test_bench_planner(ontology, report_writer):
    store = synthetic_store()
    workload = shape_workload() * REPEATS

    # -- repeated-shape workload: greedy vs cost --------------------------------
    greedy_rows = 0
    start = time.perf_counter()
    for bgp in workload:
        greedy_rows += drain(iter_bgp(store, bgp, planner="greedy"))
    greedy_s = time.perf_counter() - start

    planner = QueryPlanner()
    cost_rows = 0
    start = time.perf_counter()
    for bgp in workload:
        cost_rows += drain(planner.solutions(store, bgp))
    cost_s = time.perf_counter() - start

    assert cost_rows == greedy_rows
    snap = planner.snapshot()
    speedup = greedy_s / cost_s
    hit_rate = snap.hit_rate

    # -- cold-plan overhead vs E6 translation latency ---------------------------
    sample_shapes = shape_workload()[:40]
    cold = QueryPlanner(cache_size=1)  # every plan() call misses
    start = time.perf_counter()
    for bgp in sample_shapes:
        cold.plan(store, bgp)
    cold_each = (time.perf_counter() - start) / len(sample_shapes)
    warm = QueryPlanner()
    for bgp in sample_shapes:
        warm.plan(store, bgp)
    start = time.perf_counter()
    for bgp in sample_shapes:
        warm.plan(store, bgp)
    warm_each = (time.perf_counter() - start) / len(sample_shapes)
    cold_overhead_s = max(0.0, cold_each - warm_each)

    texts = [q.text for q in supported_questions()]
    translator = NL2CM(ontology=ontology)
    start = time.perf_counter()
    queries = [translator.translate(t).query for t in texts]
    translate_mean_s = (time.perf_counter() - start) / len(texts)
    cold_ratio = cold_overhead_s / translate_mean_s

    # -- E9 repeated-question mix over the real ontology ------------------------
    corpus_bgps = [
        [OassisEngine._to_pattern(t) for t in q.where]
        for q in queries if q.where
    ]
    mix = corpus_bgps * E9_REPEATS
    start = time.perf_counter()
    for bgp in mix:
        drain(iter_bgp(ontology.store, bgp, planner="greedy"))
    e9_greedy_s = time.perf_counter() - start
    mix_planner = QueryPlanner()
    start = time.perf_counter()
    for bgp in mix:
        drain(mix_planner.solutions(ontology.store, bgp))
    e9_cost_s = time.perf_counter() - start
    e9_speedup = e9_greedy_s / e9_cost_s
    e9_hit_rate = mix_planner.snapshot().hit_rate

    # -- byte-identical output across planner modes -----------------------------
    greedy_texts = [
        NL2CM(ontology=ontology, planner="greedy").translate(t).query_text
        for t in texts
    ]
    cost_texts = [
        NL2CM(ontology=ontology, planner="cost").translate(t).query_text
        for t in texts
    ]
    identical_translations = greedy_texts == cost_texts
    identical_solutions = all(
        canon(evaluate_bgp(ontology.store, bgp, planner="greedy"))
        == canon(evaluate_bgp(ontology.store, bgp, planner="cost"))
        for bgp in corpus_bgps
    )

    rows = [
        ["repeated-shape greedy", len(workload), f"{greedy_s:.3f}",
         f"{len(workload) / greedy_s:.0f}", "1.0x"],
        ["repeated-shape cost", len(workload), f"{cost_s:.3f}",
         f"{len(workload) / cost_s:.0f}", f"{speedup:.1f}x"],
        ["E9-mix greedy", len(mix), f"{e9_greedy_s:.3f}",
         f"{len(mix) / e9_greedy_s:.0f}", "1.0x"],
        ["E9-mix cost", len(mix), f"{e9_cost_s:.3f}",
         f"{len(mix) / e9_cost_s:.0f}", f"{e9_speedup:.2f}x"],
    ]
    table = format_table(
        ["workload", "evaluations", "seconds", "eval/s", "speedup"], rows
    )
    table += (
        f"\n\nplan cache: {snap.hits} hits / {snap.misses} misses / "
        f"{snap.invalidations} invalidated  "
        f"(hit rate {hit_rate:.1%}, floor {HIT_RATE_FLOOR:.0%})"
        f"\nE9-mix plan-cache hit rate: {e9_hit_rate:.1%}"
        f"\ncold-plan overhead: {cold_overhead_s * 1e6:.1f} us/query = "
        f"{cold_ratio:.2%} of the {translate_mean_s * 1000:.2f} ms mean "
        f"translation (ceiling {COLD_PLAN_CEILING:.0%})"
        f"\ntranslations byte-identical across planners: "
        f"{identical_translations}"
        f"\nWHERE solution multisets identical: {identical_solutions}"
    )
    report_writer("E13-planner", table)
    (RESULTS_DIR / "E13-planner.json").write_text(json.dumps({
        "repeated_shape": {
            "evaluations": len(workload),
            "greedy_seconds": round(greedy_s, 4),
            "cost_seconds": round(cost_s, 4),
            "speedup": round(speedup, 2),
            "hit_rate": round(hit_rate, 4),
        },
        "cold_plan": {
            "overhead_us": round(cold_overhead_s * 1e6, 2),
            "translate_mean_ms": round(translate_mean_s * 1000, 3),
            "ratio": round(cold_ratio, 4),
        },
        "e9_mix": {
            "evaluations": len(mix),
            "greedy_seconds": round(e9_greedy_s, 4),
            "cost_seconds": round(e9_cost_s, 4),
            "speedup": round(e9_speedup, 2),
            "hit_rate": round(e9_hit_rate, 4),
        },
        "identical_translations": identical_translations,
        "identical_solutions": identical_solutions,
    }, indent=2) + "\n", "utf-8")

    assert identical_translations
    assert identical_solutions
    assert hit_rate >= HIT_RATE_FLOOR, (
        f"plan-cache hit rate {hit_rate:.1%} below "
        f"{HIT_RATE_FLOOR:.0%}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"repeated-shape speedup {speedup:.2f}x below "
        f"{SPEEDUP_FLOOR}x"
    )
    assert cold_ratio <= COLD_PLAN_CEILING, (
        f"cold-plan overhead {cold_ratio:.2%} of mean translation "
        f"latency exceeds {COLD_PLAN_CEILING:.0%}"
    )
    assert e9_speedup >= E9_FLOOR, (
        f"E9-mix speedup {e9_speedup:.2f}x below {E9_FLOOR}x"
    )
