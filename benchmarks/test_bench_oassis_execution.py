"""E5: end-to-end query execution via the OASSIS engine (demo stage ii).

Runs the translated Figure 1 query against simulated crowds, sweeping
crowd size and answer noise, and reports support-estimation error,
top-k precision against the ground truth, and the number of crowd tasks
spent.  The shapes to hold: error shrinks with crowd size, grows with
noise; task counts stay well under exhaustive polling thanks to the
sequential test.
"""

import pytest

from repro import EngineConfig, OassisEngine, SimulatedCrowd
from repro.crowd.scenarios import buffalo_travel_truth, opinion_fact_set
from repro.data.corpus import CORPUS
from repro.eval.harness import format_table
from repro.rdf.ontology import KB

FIGURE1_QUERY = next(q for q in CORPUS if q.id == "travel-01").gold_query

# Ground-truth top-3 "interesting" places near Forest Hotel.
TRUE_TOP3 = {"Delaware_Park", "Buffalo_Zoo", "Albright_Knox_Art_Gallery"}


def run_once(ontology, nl2cm, size, noise, seed):
    from repro.oassisql import parse_oassisql

    truth = buffalo_travel_truth()
    crowd = SimulatedCrowd(truth, size=size, noise=noise, seed=seed)
    # Sampling budgets scale with the population: a larger crowd lets
    # the engine average over more members.
    engine = OassisEngine(ontology, crowd, EngineConfig(
        topk_sample=size, max_sample=size,
    ))
    result = engine.evaluate(parse_oassisql(FIGURE1_QUERY))

    errors = []
    top_places = []
    for outcome in result.outcomes:
        place = outcome.binding["x"]
        estimate = outcome.supports.get(0)
        if estimate is None:
            continue
        true_support = truth.support(
            opinion_fact_set(place, "interesting")
        )
        errors.append(abs(estimate - true_support))
    for binding in result.bindings()[:3]:
        top_places.append(binding["x"].local_name)
    mae = sum(errors) / len(errors) if errors else 0.0
    top3_precision = len(set(top_places) & TRUE_TOP3) / 3.0
    return mae, top3_precision, result.tasks_used


def test_bench_crowd_size_sweep(ontology, nl2cm, report_writer):
    rows = []
    maes = {}
    for size in (25, 50, 100, 200, 400):
        mae, precision, tasks = run_once(ontology, nl2cm, size,
                                         noise=0.1, seed=17)
        maes[size] = mae
        rows.append([size, f"{mae:.3f}", f"{precision:.2f}", tasks])
    table = format_table(
        ["crowd size", "support MAE", "top-3 precision", "tasks"], rows
    )
    report_writer("E5-crowd-size-sweep", table)

    # Shape: more members -> better estimates.
    assert maes[400] <= maes[25]


def test_bench_noise_sweep(ontology, nl2cm, report_writer):
    rows = []
    precisions = {}
    for noise in (0.0, 0.05, 0.1, 0.2, 0.3):
        mae, precision, tasks = run_once(ontology, nl2cm, 200, noise,
                                         seed=23)
        precisions[noise] = precision
        rows.append([noise, f"{mae:.3f}", f"{precision:.2f}", tasks])
    table = format_table(
        ["noise", "support MAE", "top-3 precision", "tasks"], rows
    )
    report_writer("E5-noise-sweep", table)

    # Shape: noiseless crowd recovers the exact ground-truth ranking.
    assert precisions[0.0] == 1.0


def test_bench_engine_latency(benchmark, ontology):
    from repro.oassisql import parse_oassisql

    truth = buffalo_travel_truth()
    query = parse_oassisql(FIGURE1_QUERY)

    def evaluate():
        crowd = SimulatedCrowd(truth, size=100, noise=0.1, seed=3)
        return OassisEngine(ontology, crowd).evaluate(query)

    result = benchmark(evaluate)
    assert result.accepted
