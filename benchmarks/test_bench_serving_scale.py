"""E9 (extended): multi-process scaling — shards vs. questions/sec.

The thread-tier bench (``test_bench_throughput.py``) tops out at the
GIL: batching and caching help, but 4 *threads* cannot run 4 pipelines
at once.  This bench drives the same repeated-question trace through
the process tier — real ``spawn`` workers behind consistent-hash
routing — at 1, 2 and 4 shards, with caching **disabled** so every
request is a genuine CPU-bound pipeline run and the measured curve is
process parallelism, nothing else.

Two assertions:

* **Byte-identical outputs** at every shard count (always enforced):
  sharding is an execution detail, not a semantics change — the same
  trace must produce exactly the same query texts, in order, whether
  one worker serves it or four.
* **The scaling floor** (enforced only where it can physically hold:
  ≥4 usable cores — CI's runners have them; a 1-core dev container
  cannot scale by forking and reports the curve without gating on it):
  4 shards must clear ``SCALE_FLOOR``× the 1-shard questions/sec.
"""

import os
import time

from repro.data.corpus import supported_questions
from repro.eval.harness import format_table
from repro.serving import ShardManager, WorkerSpec

SHARD_COUNTS = (1, 2, 4)
ROUNDS = 20
SCALE_FLOOR = 1.8


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def serving_trace() -> list[str]:
    texts = [q.text for q in supported_questions()]
    return [t for _ in range(ROUNDS) for t in texts]


def test_bench_serving_scale(report_writer):
    trace = serving_trace()
    # cache_size=0 + threads=1: every request is one full pipeline run
    # on the owning shard — the only parallelism is the process tier.
    spec = WorkerSpec(cache_size=0, threads=1)

    qps: dict[int, float] = {}
    outputs: dict[int, list[str | None]] = {}
    for shards in SHARD_COUNTS:
        with ShardManager(
            shards=shards, spec=spec, start_method="spawn",
            connect_timeout=180.0,
        ) as manager:
            manager.submit_batch(trace[:4], timeout=300.0)  # warm-up
            start = time.perf_counter()
            outcomes = manager.submit_batch(trace, timeout=600.0)
            elapsed = time.perf_counter() - start
            stats = manager.stats()
        assert all(o.ok for o in outcomes)
        assert stats.requests == stats.accounted
        qps[shards] = len(trace) / elapsed
        outputs[shards] = [o.query for o in outcomes]

    cores = _usable_cores()
    rows = [
        [f"{shards} shard(s)", len(trace),
         f"{len(trace) / qps[shards]:.3f}", f"{qps[shards]:.0f}",
         f"{qps[shards] / qps[1]:.2f}x"]
        for shards in SHARD_COUNTS
    ]
    table = format_table(
        ["tier", "questions", "seconds", "q/s", "vs 1 shard"], rows
    )
    table += (
        f"\n\ntrace: {len(set(trace))} distinct questions x {ROUNDS} "
        f"rounds, cache disabled (every request is a pipeline run); "
        f"{cores} usable core(s); scaling floor {SCALE_FLOOR}x at 4 "
        f"shards enforced only with >= 4 cores"
    )
    report_writer("E9-serving-scale", table)

    # Sharding must not change a single output byte.
    for shards in SHARD_COUNTS[1:]:
        assert outputs[shards] == outputs[1], (
            f"{shards}-shard outputs diverge from the 1-shard tier"
        )

    if cores >= 4:
        assert qps[4] >= SCALE_FLOOR * qps[1], (
            f"4 shards reached only {qps[4] / qps[1]:.2f}x the 1-shard "
            f"throughput on {cores} cores (floor {SCALE_FLOOR}x)"
        )


def test_bench_routing_keeps_shard_caches_hot(report_writer):
    """The consistent-hash dividend: with per-shard LRUs *enabled*, a
    repeated trace is served almost entirely from cache because every
    repeat of a question lands on the shard that already translated
    it."""
    trace = serving_trace()
    distinct = len(set(trace))
    with ShardManager(
        shards=2,
        spec=WorkerSpec(cache_size=distinct * 2, threads=1),
        start_method="spawn",
        connect_timeout=180.0,
    ) as manager:
        start = time.perf_counter()
        outcomes = manager.submit_batch(trace, timeout=600.0)
        elapsed = time.perf_counter() - start
        stats = manager.stats()

    assert all(o.ok for o in outcomes)
    # Each distinct question ran the pipeline at most once per owning
    # shard; everything else was a cache hit or single-flight dedup.
    assert stats.total.translated <= distinct
    served_cheap = (
        stats.total.served_from_cache + stats.total.deduplicated
    )
    assert served_cheap >= len(trace) - distinct
    assert stats.requests == stats.accounted

    table = (
        f"trace of {len(trace)} requests ({distinct} distinct): "
        f"{stats.total.translated} pipeline runs, "
        f"{stats.total.served_from_cache} cache hits, "
        f"{stats.total.deduplicated} deduplicated, "
        f"{len(trace) / elapsed:.0f} q/s end-to-end over 2 shards"
    )
    report_writer("E9-serving-routing", table)
