"""E9: serving throughput — sequential vs. batched vs. cache-warm.

The serving workload is a *repeated-question trace*: every supported
corpus question appears ``REPEATS`` times, round-robin interleaved, the
shape NLIDB front-ends actually see (many users ask the same things).
Three ways to serve the same trace:

* **sequential** — the status quo ante: one ``NL2CM.translate`` call per
  question, no batching, no caching; every repeat re-runs the whole
  Figure-2 pipeline.
* **batched** — the :class:`~repro.service.TranslationService` batch
  path, cold cache, 4 workers: single-flight deduplication plus the LRU
  cache mean each distinct question is translated once per batch.
* **cache-warm** — the same service after :meth:`warm`-ing the distinct
  questions: the whole trace is served from cache.

Acceptance floor (ISSUE 1): batched >= 2x sequential questions/sec at
4+ workers; cache-warm >= 5x the cold sequential path.
"""

import time

from repro import NL2CM
from repro.data.corpus import supported_questions
from repro.eval.harness import format_table
from repro.service import TranslationService

REPEATS = 4
WORKERS = 4


def serving_trace() -> list[str]:
    """Each supported question, REPEATS times, round-robin."""
    texts = [q.text for q in supported_questions()]
    return [t for _ in range(REPEATS) for t in texts]


def test_bench_serving_throughput(ontology, report_writer):
    trace = serving_trace()
    distinct = sorted(set(trace))

    # Sequential baseline: the pre-service single-question path.
    sequential = NL2CM(ontology=ontology)
    start = time.perf_counter()
    sequential_results = [sequential.translate(t) for t in trace]
    sequential_s = time.perf_counter() - start
    sequential_qps = len(trace) / sequential_s

    # Batched, cold cache.
    service = TranslationService(
        NL2CM(ontology=ontology), workers=WORKERS, cache=len(distinct) * 2
    )
    start = time.perf_counter()
    batched_items = service.translate_batch(trace, workers=WORKERS)
    batched_s = time.perf_counter() - start
    batched_qps = len(trace) / batched_s

    # Cache-warm: same service, cache already holds every question.
    service.warm(distinct)
    start = time.perf_counter()
    warm_items = service.translate_batch(trace, workers=WORKERS)
    warm_s = time.perf_counter() - start
    warm_qps = len(trace) / warm_s

    rows = [
        ["sequential (no cache)", len(trace), f"{sequential_s:.3f}",
         f"{sequential_qps:.0f}", "1.0x"],
        [f"batched cold ({WORKERS} workers)", len(trace),
         f"{batched_s:.3f}", f"{batched_qps:.0f}",
         f"{batched_qps / sequential_qps:.1f}x"],
        [f"cache-warm ({WORKERS} workers)", len(trace),
         f"{warm_s:.3f}", f"{warm_qps:.0f}",
         f"{warm_qps / sequential_qps:.1f}x"],
    ]
    table = format_table(
        ["mode", "questions", "seconds", "q/s", "speedup"], rows
    )
    stats = service.stats()
    table += (
        f"\n\ntrace: {len(distinct)} distinct questions x {REPEATS} "
        f"repeats; cache hit rate {stats.cache_hit_rate:.1%}, "
        f"{stats.translated} pipeline runs for "
        f"{stats.requests} requests"
    )
    report_writer("E9-throughput", table)

    # Correctness before speed: every path serves identical queries.
    expected = [r.query_text for r in sequential_results]
    assert [i.query_text for i in batched_items] == expected
    assert [i.query_text for i in warm_items] == expected

    # The acceptance floors.
    assert batched_qps >= 2 * sequential_qps
    assert warm_qps >= 5 * sequential_qps


def test_bench_single_flight_saves_pipeline_runs(ontology):
    trace = serving_trace()
    distinct = set(trace)
    service = TranslationService(
        NL2CM(ontology=ontology), workers=WORKERS, cache=len(distinct) * 2
    )
    service.translate_batch(trace)
    stats = service.stats()
    # One pipeline run per distinct question; every repeat rode the
    # leader's single-flight group — those are *deduplicated*, not
    # cache hits (nothing was ever looked up in the cache for them).
    assert stats.translated == len(distinct)
    assert stats.deduplicated == len(trace) - len(distinct)
    assert stats.served_from_cache == 0
    assert stats.requests == stats.accounted == len(trace)
