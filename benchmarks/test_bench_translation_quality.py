"""E2: translation quality over the corpus, vs. the IX baselines.

The paper claims "the quality of our developed translation is high for
real user questions even without interacting with the user"
(Section 4.1).  This bench measures it: IX-detection P/R/F1, query
well-formedness, entity recall and exact-match rate on the gold-query
subset — and compares NL2CM's IX detector against the two weaker
detectors the paper discusses (sentiment-only, KB-mismatch).
"""

from repro.baselines import KBMismatchDetector, SentimentOnlyDetector
from repro.baselines.ix_baselines import full_detector_anchors
from repro.eval.harness import (
    evaluate_ix_anchors,
    evaluate_translation_quality,
    format_table,
)


def test_bench_translation_quality(benchmark, nl2cm, report_writer):
    report = benchmark(evaluate_translation_quality, nl2cm)

    # The headline claims: high quality without interaction.
    assert report.overall.ix.f1 >= 0.95
    assert report.overall.wellformed == report.overall.questions
    assert report.overall.exact_rate == 1.0
    assert report.overall.entity_recall >= 0.9
    report_writer("E2-translation-quality", report.format())


def test_bench_ix_detector_vs_baselines(report_writer):
    ours = evaluate_ix_anchors(full_detector_anchors)
    sentiment = evaluate_ix_anchors(SentimentOnlyDetector().detect_anchors)
    mismatch = evaluate_ix_anchors(KBMismatchDetector().detect_anchors)

    rows = [
        ["NL2CM (3 individuality types)", f"{ours.precision:.2f}",
         f"{ours.recall:.2f}", f"{ours.f1:.2f}"],
        ["sentiment-only (related work)", f"{sentiment.precision:.2f}",
         f"{sentiment.recall:.2f}", f"{sentiment.f1:.2f}"],
        ["KB-mismatch (naive)", f"{mismatch.precision:.2f}",
         f"{mismatch.recall:.2f}", f"{mismatch.f1:.2f}"],
    ]
    table = format_table(["IX detector", "P", "R", "F1"], rows)
    report_writer("E2-ix-baselines", table)

    # Shape claims from the paper's argument:
    assert ours.f1 > sentiment.f1 > 0          # subset of IXs only
    assert sentiment.precision >= 0.9          # what it finds is right
    assert sentiment.recall < 0.6              # but it misses habits
    assert mismatch.precision < 0.6            # KB incompleteness noise
    assert ours.f1 > mismatch.f1
