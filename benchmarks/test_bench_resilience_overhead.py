"""E12: resilience overhead — fault tolerance must be free when idle.

With the resilience layer enabled and **zero** injected faults, the
E6 pipeline latency may regress by at most 3% against a plain service.
The true cost per translation is one wrapper allocation plus two
breaker lock hops per interaction — on the order of 1% of a ~0.7 ms
pipeline run — so the benchmark's job is mostly to not drown that
signal in scheduler noise:

* **paired ABBA rounds**: each question is timed plain, resilient,
  resilient, plain (order mirrored every other round), which cancels
  both linear drift and the warm-second-position bias that a plain
  A/B loop suffers;
* **median of per-question paired differences**, immune to the
  occasional descheduling outlier;
* **GC disabled** inside the timed region (collected between rounds),
  so collection pauses are not charged to whichever service happens to
  allocate the triggering object;
* **best of three independent measurements**: a spurious overshoot in
  one measurement is noise, not a regression — a real regression shows
  up in all three.

The per-stage deadline machinery is benched the same way but against
its own, looser budget: a deadline is real per-stage work (one
``Deadline`` allocation plus two clock reads for each of the eleven
stage spans), and the acceptance gate applies to the resilience
wrapper, not to opting into stage timeouts.
"""

import gc
import statistics
import time

from repro import NL2CM, TranslationService
from repro.data.corpus import supported_questions
from repro.eval.harness import format_table
from repro.resilience import ResilienceConfig

ROUNDS = 12
QUESTIONS_PER_ROUND = 10
MEASUREMENTS = 3
MAX_OVERHEAD = 0.03
MAX_DEADLINE_OVERHEAD = 0.08


def _one_translation(service, text) -> float:
    start = time.perf_counter()
    service.translate(text)
    return time.perf_counter() - start


def _paired_overhead(baseline, candidate, texts) -> float:
    """Relative overhead of ``candidate`` over ``baseline``, paired."""
    diffs = {text: [] for text in texts}
    base = {text: [] for text in texts}
    gc.collect()
    gc.disable()
    try:
        for rnd in range(ROUNDS):
            for text in texts:
                if rnd % 2 == 0:
                    b1 = _one_translation(baseline, text)
                    c1 = _one_translation(candidate, text)
                    c2 = _one_translation(candidate, text)
                    b2 = _one_translation(baseline, text)
                else:
                    c1 = _one_translation(candidate, text)
                    b1 = _one_translation(baseline, text)
                    b2 = _one_translation(baseline, text)
                    c2 = _one_translation(candidate, text)
                diffs[text].append((c1 + c2) - (b1 + b2))
                base[text].append(b1 + b2)
            gc.collect()
    finally:
        gc.enable()
    extra = sum(statistics.median(diffs[t]) for t in texts)
    total = sum(statistics.median(base[t]) for t in texts)
    return extra / total


def _measure(baseline, candidate, texts):
    # Warm-up: first translations pay one-time lazy-init costs.
    for text in texts:
        _one_translation(baseline, text)
        _one_translation(candidate, text)
    return [
        _paired_overhead(baseline, candidate, texts)
        for _ in range(MEASUREMENTS)
    ]


def _report(report_writer, name, label, overheads, budget, extra_rows=()):
    table = format_table(
        ["quantity", "value"],
        [
            [f"{label} overhead (best)", f"{min(overheads):+.2%}"],
            ["all measurements",
             "  ".join(f"{o:+.2%}" for o in overheads)],
            ["budget", f"{budget:.0%}"],
            *extra_rows,
        ],
    )
    report_writer(name, table)


def test_bench_resilience_overhead(ontology, nl2cm, report_writer):
    texts = [q.text for q in supported_questions()[:QUESTIONS_PER_ROUND]]

    # cache=None so every round exercises the full pipeline; both
    # services share one translator, so the only delta is the wrapper.
    plain = TranslationService(nl2cm, cache=None)
    resilient = TranslationService(
        nl2cm, cache=None,
        resilience=ResilienceConfig(retries=3, sleep=lambda s: None),
    )

    overheads = _measure(plain, resilient, texts)

    stats = resilient.stats()
    _report(
        report_writer, "E12-resilience-overhead", "resilience",
        overheads, MAX_OVERHEAD,
        extra_rows=[
            ["retries seen", str(stats.retries)],
            ["degraded seen", str(stats.degraded)],
        ],
    )

    # Zero faults: the layer was pure bookkeeping.
    assert stats.retries == 0
    assert stats.degraded == 0
    assert stats.breaker_rejections == 0
    assert min(overheads) < MAX_OVERHEAD


def test_bench_stage_deadline_overhead(ontology, report_writer):
    texts = [q.text for q in supported_questions()[:QUESTIONS_PER_ROUND]]
    plain = TranslationService(NL2CM(ontology=ontology), cache=None)
    deadlined = TranslationService(
        NL2CM(ontology=ontology, stage_timeout_ms=60_000), cache=None,
    )

    overheads = _measure(plain, deadlined, texts)
    _report(
        report_writer, "E12-stage-deadline-overhead", "stage deadline",
        overheads, MAX_DEADLINE_OVERHEAD,
    )

    assert min(overheads) < MAX_DEADLINE_OVERHEAD
