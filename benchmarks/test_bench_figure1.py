"""E1: the running example translates to the paper's Figure 1, exactly.

Regenerates Figure 1 — the only query artifact printed in the paper —
and benchmarks the end-to-end translation latency of that question.
"""

from repro.data.corpus import CORPUS

FIGURE1_QUESTION = next(q for q in CORPUS if q.id == "travel-01")


def test_bench_figure1_translation(benchmark, nl2cm, report_writer):
    result = benchmark(nl2cm.translate, FIGURE1_QUESTION.text)

    assert result.query_text == FIGURE1_QUESTION.gold_query
    report_writer(
        "E1-figure1",
        f"question: {FIGURE1_QUESTION.text}\n\n"
        f"{result.query_text}\n\n"
        "exact match with the paper's Figure 1: YES",
    )


def test_bench_figure1_is_stable_across_runs(nl2cm):
    texts = {
        nl2cm.translate(FIGURE1_QUESTION.text).query_text
        for _ in range(3)
    }
    assert len(texts) == 1
