"""E4: user-interaction points and FREyA-style feedback learning.

Counts how often each interaction point fires across the corpus (the
paper: interaction is *optional* — most questions translate with no
user effort), and shows the feedback effect: disambiguation dialogues
disappear on the second pass because first-pass choices are remembered.
"""

from repro.eval.harness import evaluate_interaction


def test_bench_interaction_counts(benchmark, report_writer):
    report = benchmark(evaluate_interaction)

    report_writer("E4-interaction", report.format())

    # Most questions need at most the LIMIT/THRESHOLD defaults — the
    # verify/disambiguate dialogs fire on a minority.
    verify = report.counts_by_type.get("VerifyIXRequest", 0)
    disamb = report.counts_by_type.get("DisambiguationRequest", 0)
    assert verify + disamb < report.questions

    # Feedback learning: strictly fewer dialogs on the second pass.
    assert (report.disambiguations_second_pass
            < report.disambiguations_first_pass)
    assert report.disambiguations_second_pass == 0
