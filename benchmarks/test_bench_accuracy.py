"""E15: per-domain accuracy of the NLP substrate, rules vs. learned.

The paper evaluates translation quality on questions from a handful of
domains (Section 4.1); this experiment tracks the *inputs* to that
claim per scenario pack: POS accuracy (with a known/unknown split),
dependency attachment (UAS/LAS) and gold-query agreement — each
computed for the hand-tuned rules tagger and the trained perceptron so
the two can be A/B-compared.

The floors are seeded a few points under the measured numbers
(EXPERIMENTS.md records the reference run); a regression in either
tagger, the parser or any pack's corpus trips them.
"""

from pathlib import Path

from repro.eval.accuracy import evaluate_accuracy

RESULTS_DIR = Path(__file__).parent / "results"

#: Demo-corpus domain slices: the rules tagger was hand-tuned on these,
#: so their gold queries must translate exactly.
DOMAIN_SLICES = ("travel", "shopping", "food", "health")

#: Authored directory packs carry deliberate out-of-vocabulary
#: questions, so their rules-tagger floors sit lower.
PACK_EXACT_FLOORS = {"patients": 0.8, "movies": 0.6, "commerce": 0.5}


def test_bench_accuracy(benchmark, report_writer):
    report = benchmark(evaluate_accuracy)
    total = report.totals()

    # Whole-corpus floors (measured 2026-08-07: rules POS .939,
    # rules LAS .934, learned POS 1.000, learned LAS .983).
    rules_pos = total.pos["rules"]
    assert rules_pos.accuracy >= 0.92
    assert rules_pos.known_accuracy >= 0.95
    assert total.parse["rules"].uas >= 0.92
    assert total.parse["rules"].las >= 0.90
    assert total.pos["learned"].accuracy >= 0.99
    assert total.parse["learned"].las >= 0.95

    # Nothing silently drops out of the evaluation.
    for mode in report.taggers:
        assert total.pos[mode].skipped == 0
        assert total.parse[mode].skipped == 0
        assert total.translation[mode].failures == 0

    # Per-pack floors.
    for pack in report.packs:
        assert pack.pos["rules"].accuracy >= 0.85, pack.name
        assert pack.parse["rules"].las >= 0.70, pack.name
        exact = pack.translation["rules"].exact_rate
        if pack.name in DOMAIN_SLICES:
            assert exact == 1.0, pack.name
        else:
            assert exact >= PACK_EXACT_FLOORS[pack.name], pack.name

    # The A/B claim: training on the packs' gold beats the hand-tuned
    # lexicon on their own corpora, end to end.
    rules_exact = total.translation["rules"].exact
    learned_exact = total.translation["learned"].exact
    assert learned_exact >= rules_exact
    assert (
        total.translation["learned"].structure_avg
        >= total.translation["rules"].structure_avg
    )

    report_writer("E15-accuracy", report.format())
    report.write_json(RESULTS_DIR / "E15-accuracy.json")


def test_bench_accuracy_covers_every_builtin_pack():
    report = evaluate_accuracy()
    names = [pack.name for pack in report.packs]
    assert len(names) >= 5
    assert set(DOMAIN_SLICES) <= set(names)
    assert set(PACK_EXACT_FLOORS) <= set(names)
    for pack in report.packs:
        for mode in report.taggers:
            assert pack.translation[mode].gold_queries > 0, pack.name
