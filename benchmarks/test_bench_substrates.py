"""E10: micro-benchmarks of the from-scratch substrates.

Not a paper experiment — throughput sanity checks for the components
the paper outsources (Stanford Parser, RDF stack): the triple store's
indexed lookups, the SPARQL evaluator, the NL parser, and the OASSIS-QL
round trip.
"""

import pytest

from repro.data.corpus import CORPUS
from repro.nlp import parse
from repro.oassisql import parse_oassisql, print_oassisql
from repro.rdf.sparql import sparql_select
from repro.rdf.terms import IRI
from repro.rdf.ontology import KB

FIGURE1_QUERY = next(q for q in CORPUS if q.id == "travel-01").gold_query

SPARQL = (
    "PREFIX kb: <http://repro.example/kb/> "
    "SELECT ?x WHERE { ?x kb:instanceOf kb:Place . "
    "?x kb:near kb:Forest_Hotel,_Buffalo,_NY }"
)


def test_bench_store_lookup(benchmark, ontology):
    store = ontology.store
    place = KB.Place

    def lookups():
        total = 0
        for _ in range(100):
            total += store.count(None, KB.instanceOf, place)
        return total

    assert benchmark(lookups) > 0


def test_bench_sparql_select(benchmark, ontology):
    rows = benchmark(sparql_select, ontology.store, SPARQL)
    assert len(rows) == 6


def test_bench_nl_parse(benchmark):
    sentences = [q.text for q in CORPUS if q.supported]

    def parse_all():
        return [parse(s) for s in sentences]

    graphs = benchmark(parse_all)
    assert all(g.head is not None for g in graphs)


def test_bench_oassisql_round_trip(benchmark):
    def round_trip():
        return print_oassisql(parse_oassisql(FIGURE1_QUERY))

    assert benchmark(round_trip) == FIGURE1_QUERY


def test_bench_entity_lookup(benchmark, ontology):
    phrases = ["Buffalo", "Forest Hotel", "Delaware Park", "places",
               "thrill ride", "camera", "oatmeal"]

    def lookup_all():
        return [ontology.lookup(p) for p in phrases]

    results = benchmark(lookup_all)
    assert all(results[i] for i in (0, 1, 2, 3, 4))
