"""OASSIS-QL evaluation over an ontology plus a crowd.

Evaluation plan (paper Section 2.1 semantics):

1. **WHERE** — the SPARQL-like selection runs over the ontology's triple
   store, producing candidate variable bindings.
2. **SATISFYING** — each binding instantiates every subclause into a
   ground fact-set; the crowd estimates each fact-set's support:

   * *threshold* subclauses use sequential sampling with a normal-
     approximation confidence interval: members are asked one by one
     until the interval clears the threshold on either side (or the
     per-fact-set budget runs out, in which case the point estimate
     decides);
   * *top-k* subclauses estimate the support of every candidate
     fact-set with a fixed sample and keep the bindings of the k best
     (k worst for ``ASC``).

3. The query returns the bindings that satisfy **all** subclauses —
   "significant variable bindings" — with their estimated supports.

The engine also exposes the generated :class:`CrowdTask` stream, which
is what the demo shows on the OASSIS crowd monitor.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.crowd.model import FactSet, verbalize_fact_set
from repro.crowd.simulator import SimulatedCrowd
from repro.errors import BudgetExhausted, EngineError
from repro.obs.metrics import MetricsRegistry
from repro.oassisql.ast import (
    Anything,
    OassisQuery,
    QueryTriple,
    SatisfyingClause,
    SupportThreshold,
    TopK,
)
from repro.rdf.ontology import Ontology
from repro.rdf.planner import QueryPlanner, default_planner
from repro.rdf.sparql import TriplePattern, iter_bgp
from repro.rdf.terms import IRI, Literal, Variable

__all__ = [
    "EngineConfig", "CrowdTask", "BindingOutcome", "QueryResult",
    "OassisEngine",
]

#: One candidate variable binding: name -> ground term.
Binding = dict[str, object]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs.

    Attributes:
        min_sample: members asked before the sequential test may stop.
        max_sample: per-fact-set budget of the sequential test.
        topk_sample: fixed sample size used for top-k estimation.
        confidence_z: z-value of the decision interval (1.96 = 95%).
        task_budget: total crowd-task budget per query (None = no cap).
        memoize_answers: reuse a member's previous answer when the same
            (member, fact-set) pair comes up again — in another
            subclause or a later query.  A consistent human answers the
            same question the same way, so this only skips the simulated
            answer computation; the task stream, budget accounting and
            results are unchanged.
    """

    min_sample: int = 8
    max_sample: int = 60
    topk_sample: int = 25
    confidence_z: float = 1.96
    task_budget: int | None = None
    memoize_answers: bool = True


@dataclass(frozen=True)
class CrowdTask:
    """One question posed to one crowd member."""

    member_id: int
    fact_set: FactSet
    question: str
    answer: float


@dataclass
class BindingOutcome:
    """Per-binding evaluation record."""

    binding: Binding
    supports: dict[int, float] = field(default_factory=dict)
    accepted: bool = False

    def support_of(self, clause_index: int) -> float:
        return self.supports[clause_index]


@dataclass
class QueryResult:
    """The engine's output for one query."""

    outcomes: list[BindingOutcome]
    tasks: list[CrowdTask]
    where_bindings: int

    @property
    def accepted(self) -> list[BindingOutcome]:
        return [o for o in self.outcomes if o.accepted]

    @property
    def tasks_used(self) -> int:
        return len(self.tasks)

    def bindings(self) -> list[Binding]:
        """The significant variable bindings, best-supported first.

        Ranked by mean estimated support across the subclauses, so a
        binding strong on every mined pattern precedes one that barely
        cleared a threshold.
        """
        def mean_support(o: BindingOutcome) -> float:
            if not o.supports:
                return 0.0
            return sum(o.supports.values()) / len(o.supports)

        ranked = sorted(self.accepted, key=lambda o: -mean_support(o))
        return [o.binding for o in ranked]


class OassisEngine:
    """Evaluates OASSIS-QL queries over an ontology and a crowd."""

    def __init__(
        self,
        ontology: Ontology,
        crowd: SimulatedCrowd,
        config: EngineConfig | None = None,
        registry: MetricsRegistry | None = None,
        planner: str | QueryPlanner | None = None,
    ):
        self.ontology = ontology
        self.crowd = crowd
        self.config = config or EngineConfig()
        # WHERE evaluator: None/"greedy" = the greedy per-call join,
        # "cost" = the shared cost-based planner (plan cache included),
        # or a QueryPlanner instance for a dedicated cache.
        if isinstance(planner, str):
            if planner == "greedy":
                planner = None
            elif planner == "cost":
                planner = default_planner()
            else:
                raise ValueError(
                    f"unknown planner {planner!r}; "
                    "expected 'cost' or 'greedy'"
                )
        self.planner = planner
        # (member_id, fact_set.key()) -> answer; the crowd model is
        # deterministic per member, so repeated subclauses and repeated
        # queries need not recompute the simulated answer.
        self._answer_cache: dict[tuple[int, str], float] = {}
        self.answer_cache_hits = 0
        self.answer_cache_misses = 0
        self._m_evaluations = None
        self._m_eval_seconds = None
        self._m_tasks = None
        self._m_answer_cache = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Mirror the engine's counters into ``registry``.

        Sharing the translation service's registry puts evaluation
        metrics on the same scrape endpoint as translation metrics.
        """
        self._m_evaluations = registry.counter(
            "oassis_evaluations_total",
            "OASSIS-QL queries evaluated, by outcome (ok/error).",
            labelnames=("outcome",),
        )
        self._m_eval_seconds = registry.histogram(
            "oassis_evaluation_seconds",
            "Wall-clock seconds per OASSIS-QL evaluation "
            "(errors included).",
        )
        self._m_tasks = registry.counter(
            "oassis_crowd_tasks_total",
            "Crowd tasks issued across evaluations.",
        )
        self._m_answer_cache = registry.counter(
            "oassis_answer_cache_total",
            "Memoized crowd-answer lookups by result (hit/miss).",
            labelnames=("result",),
        )

    def clear_answer_cache(self) -> None:
        """Drop memoized crowd answers (e.g. after swapping the crowd)."""
        self._answer_cache.clear()
        self.answer_cache_hits = 0
        self.answer_cache_misses = 0

    # -- public API ---------------------------------------------------------------

    def evaluate(self, query: OassisQuery) -> QueryResult:
        """Evaluate ``query``; returns outcomes, tasks and statistics.

        Variables that occur only in SATISFYING are *open*: they are
        instantiated by the crowd itself (crowd-mining in the style of
        the OASSIS companion work) — modeled by unifying the open
        pattern against the fact-sets the simulated crowd knows about.

        Raises:
            EngineError: when a clause cannot be grounded at all.
            BudgetExhausted: when ``config.task_budget`` runs out.
        """
        if self._m_evaluations is None:
            return self._evaluate(query)
        start = time.perf_counter()
        try:
            result = self._evaluate(query)
        except Exception:
            self._m_evaluations.labels(outcome="error").inc()
            self._m_eval_seconds.observe(time.perf_counter() - start)
            raise
        self._m_evaluations.labels(outcome="ok").inc()
        self._m_eval_seconds.observe(time.perf_counter() - start)
        return result

    def _evaluate(self, query: OassisQuery) -> QueryResult:
        query.validate()
        tasks: list[CrowdTask] = []
        outcomes: list[BindingOutcome] = []
        where_seen = [0]

        def stream_bases():
            # WHERE bindings flow from the (streaming) BGP evaluator
            # straight into outcomes — the first SATISFYING clause pulls
            # candidates one by one, so support estimation never waits
            # on (or materializes) the full WHERE result set.
            for binding in self._iter_where_bindings(query):
                where_seen[0] += 1
                outcomes.append(BindingOutcome(binding=binding))
                yield len(outcomes) - 1

        alive = stream_bases()
        for clause_index, clause in enumerate(query.satisfying):
            if isinstance(alive, list) and not alive:
                break
            expanded = self._expanded(clause, alive, outcomes)
            if isinstance(clause.qualifier, SupportThreshold):
                survivors = []
                for i, fact_set in expanded:
                    support, ok = self._threshold_test(
                        fact_set, clause.qualifier.threshold, tasks
                    )
                    outcomes[i].supports[clause_index] = support
                    if ok:
                        survivors.append(i)
                alive = survivors
            else:
                alive = self._topk_select(
                    clause.qualifier, expanded, outcomes,
                    clause_index, tasks,
                )

        # Without SATISFYING clauses `alive` is still the lazy base
        # stream; listing it drains the WHERE evaluation.
        for i in list(alive):
            outcomes[i].accepted = True
        return QueryResult(
            outcomes=outcomes, tasks=tasks,
            where_bindings=where_seen[0],
        )

    def _expanded(self, clause: SatisfyingClause, alive, outcomes):
        """Stream ``(outcome index, fact-set)`` groundings of a clause.

        Open-variable groundings clone their base outcome (with the
        crowd-supplied extra bindings merged in) and the clone, not the
        base, carries the fact-set forward — same bookkeeping as the
        eager expansion, minus the intermediate lists.
        """
        for i in alive:
            for fact_set, extra in self._groundings(
                clause, outcomes[i].binding
            ):
                if extra:
                    merged = dict(outcomes[i].binding)
                    merged.update(extra)
                    outcomes.append(BindingOutcome(
                        binding=merged,
                        supports=dict(outcomes[i].supports),
                    ))
                    yield (len(outcomes) - 1, fact_set)
                else:
                    yield (i, fact_set)

    # -- clause grounding (incl. open patterns) ------------------------------------

    def _groundings(
        self, clause: SatisfyingClause, binding: Binding
    ) -> list[tuple[FactSet, Binding]]:
        """All ways to ground ``clause`` under ``binding``.

        A fully-bound clause grounds one way.  A clause with open
        variables is unified against every fact-set the crowd's world
        contains, each successful unification contributing the extra
        bindings — the crowd "fills in" the open positions.
        """
        free = clause.variables() - set(binding)
        if not free:
            return [(self._ground(clause, binding), {})]

        results: list[tuple[FactSet, Binding]] = []
        seen: set[str] = set()
        for candidate in self.crowd.ground_truth.supports:
            extra = self._unify(clause, binding, candidate)
            if extra is None:
                continue
            merged = dict(binding)
            merged.update(extra)
            fact_set = self._ground(clause, merged)
            if fact_set.key() not in seen:
                seen.add(fact_set.key())
                results.append((fact_set, extra))
        return results

    def _unify(
        self,
        clause: SatisfyingClause,
        binding: Binding,
        candidate: FactSet,
    ) -> Binding | None:
        """Match the clause's triples against a candidate fact-set.

        Returns bindings for the open variables, or None.  Requires a
        bijective triple matching (fact-sets are tiny, so backtracking
        over permutations is fine).
        """
        pattern = [
            tuple(
                binding.get(t.name, t) if isinstance(t, Variable) else t
                for t in triple.terms()
            )
            for triple in clause.triples
        ]
        facts = list(candidate.triples)
        if len(pattern) != len(facts):
            return None

        def match_terms(p, f, env):
            if isinstance(p, Variable):
                if p.name in env:
                    return env if env[p.name] == f else None
                if isinstance(f, Anything):
                    return None
                new = dict(env)
                new[p.name] = f
                return new
            if isinstance(p, Anything):
                return env if isinstance(f, Anything) else None
            return env if p == f else None

        def backtrack(idx: int, used: set[int], env):
            if idx == len(pattern):
                return env
            for j, fact in enumerate(facts):
                if j in used:
                    continue
                cur = env
                for p, f in zip(pattern[idx], fact.terms()):
                    cur = match_terms(p, f, cur)
                    if cur is None:
                        break
                if cur is None:
                    continue
                found = backtrack(idx + 1, used | {j}, cur)
                if found is not None:
                    return found
            return None

        return backtrack(0, set(), {})

    # -- WHERE -------------------------------------------------------------------

    def _iter_where_bindings(self, query: OassisQuery):
        if not query.where:
            # No general selection: the only binding is the empty one.
            yield {}
            return
        patterns = [self._to_pattern(t) for t in query.where]
        # Deduplicate incrementally (bindings may repeat when
        # instanceOf facts are duplicated across merged snapshots).
        seen = set()
        for sol in iter_bgp(
            self.ontology.store, patterns, planner=self.planner
        ):
            key = tuple(sorted((k, str(v)) for k, v in sol.items()))
            if key not in seen:
                seen.add(key)
                yield dict(sol)

    def _where_bindings(self, query: OassisQuery) -> list[Binding]:
        """Materialized WHERE bindings (deduplicated, in stream order)."""
        return list(self._iter_where_bindings(query))

    @staticmethod
    def _to_pattern(triple: QueryTriple) -> TriplePattern:
        def convert(term):
            if isinstance(term, Anything):
                # '[]' in WHERE behaves like a fresh unnamed variable.
                raise EngineError(
                    "'[]' is not allowed in the WHERE clause"
                )
            return term

        return TriplePattern(
            convert(triple.s), convert(triple.p), convert(triple.o)
        )

    # -- grounding -----------------------------------------------------------------

    def _ground(
        self, clause: SatisfyingClause, binding: Binding
    ) -> FactSet:
        def substitute(term):
            if isinstance(term, Variable):
                if term.name not in binding:
                    raise EngineError(
                        f"variable ${term.name} of the SATISFYING clause "
                        "is unbound — it does not occur in WHERE"
                    )
                return binding[term.name]
            return term

        return FactSet(tuple(
            QueryTriple(
                substitute(t.s), substitute(t.p), substitute(t.o)
            )
            for t in clause.triples
        ))

    # -- crowd access ---------------------------------------------------------------

    def _ask(self, fact_set: FactSet, sample_index: int,
             tasks: list[CrowdTask]) -> float:
        budget = self.config.task_budget
        if budget is not None and len(tasks) >= budget:
            raise BudgetExhausted(
                f"crowd-task budget of {budget} exhausted",
                tasks_used=len(tasks),
            )
        member = self.crowd.member(sample_index % self.crowd.size)
        if self.config.memoize_answers:
            key = (member.member_id, fact_set.key())
            answer = self._answer_cache.get(key)
            if answer is None:
                answer = self.crowd.ask(member, fact_set)
                self._answer_cache[key] = answer
                self.answer_cache_misses += 1
                if self._m_answer_cache is not None:
                    self._m_answer_cache.labels(result="miss").inc()
            else:
                self.answer_cache_hits += 1
                if self._m_answer_cache is not None:
                    self._m_answer_cache.labels(result="hit").inc()
        else:
            answer = self.crowd.ask(member, fact_set)
        if self._m_tasks is not None:
            self._m_tasks.inc()
        tasks.append(CrowdTask(
            member_id=member.member_id,
            fact_set=fact_set,
            question=verbalize_fact_set(fact_set, self.ontology),
            answer=answer,
        ))
        return answer

    # -- threshold clauses -------------------------------------------------------------

    def _threshold_test(
        self,
        fact_set: FactSet,
        threshold: float,
        tasks: list[CrowdTask],
    ) -> tuple[float, bool]:
        """Sequential support test; returns (estimate, support >= θ)."""
        cfg = self.config
        total = 0.0
        total_sq = 0.0
        n = 0
        while n < cfg.max_sample and n < self.crowd.size:
            answer = self._ask(fact_set, n, tasks)
            total += answer
            total_sq += answer * answer
            n += 1
            if n < cfg.min_sample:
                continue
            mean = total / n
            variance = max(total_sq / n - mean * mean, 1e-9)
            half_width = cfg.confidence_z * math.sqrt(variance / n)
            if mean - half_width > threshold:
                return mean, True
            if mean + half_width < threshold:
                return mean, False
        mean = total / n if n else 0.0
        return mean, mean >= threshold

    # -- top-k clauses -------------------------------------------------------------------

    def _topk_select(
        self,
        qualifier: TopK,
        expanded,
        outcomes: list[BindingOutcome],
        clause_index: int,
        tasks: list[CrowdTask],
    ) -> list[int]:
        cfg = self.config
        sample = min(cfg.topk_sample, self.crowd.size)
        estimates: dict[int, float] = {}
        # Distinct bindings may ground to the same fact-set; estimate
        # each fact-set once.  ``expanded`` streams (index, fact-set)
        # pairs; ranking inherently needs every candidate, so this is
        # the one clause kind that drains its input.
        by_fact_set: dict[FactSet, float] = {}
        for i, fact_set in expanded:
            if fact_set not in by_fact_set:
                answers = [
                    self._ask(fact_set, j, tasks) for j in range(sample)
                ]
                by_fact_set[fact_set] = (
                    sum(answers) / len(answers) if answers else 0.0
                )
            estimates[i] = by_fact_set[fact_set]
            outcomes[i].supports[clause_index] = estimates[i]

        reverse = qualifier.descending
        ranked = sorted(
            estimates, key=lambda i: estimates[i], reverse=reverse
        )
        return ranked[: qualifier.k]
