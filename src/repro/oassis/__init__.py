"""The OASSIS crowd-powered query engine (stand-in for SIGMOD'14 OASSIS).

Evaluates OASSIS-QL queries: the WHERE clause against the ontology, the
SATISFYING clause with the (simulated) crowd — sequential significance
testing for threshold clauses, sampled top-k selection for ORDER
BY/LIMIT clauses — exactly the split the paper describes in Section 2.1.
"""

from repro.oassis.engine import (
    BindingOutcome,
    CrowdTask,
    EngineConfig,
    OassisEngine,
    QueryResult,
)

__all__ = [
    "OassisEngine",
    "EngineConfig",
    "QueryResult",
    "BindingOutcome",
    "CrowdTask",
]
