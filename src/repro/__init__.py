"""NL2CM: A Natural Language Interface to Crowd Mining — reproduction.

Reproduction of Amsterdamer, Kukliansky and Milo, SIGMOD 2015, with all
substrates (NL parsing, RDF/SPARQL, OASSIS-QL, the OASSIS engine and a
simulated crowd) implemented from scratch.  Quickstart::

    from repro import NL2CM

    nl2cm = NL2CM()
    result = nl2cm.translate(
        "What are the most interesting places near Forest Hotel, "
        "Buffalo, we should visit in the fall?"
    )
    print(result.query_text)   # the paper's Figure 1 query, exactly

Executing the translated query against a simulated crowd::

    from repro import EngineConfig, OassisEngine, SimulatedCrowd
    from repro.crowd.scenarios import buffalo_travel_truth
    from repro.data import load_merged_ontology

    crowd = SimulatedCrowd(buffalo_travel_truth(), size=150, seed=1)
    engine = OassisEngine(load_merged_ontology(), crowd)
    answers = engine.evaluate(result.query)
    for binding in answers.bindings():
        print(binding["x"].local_name)
"""

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    OntologyLint,
    PatternLint,
    QueryLint,
    ScenarioLint,
    Severity,
)
from repro.core.pipeline import NL2CM, TranslationResult
from repro.core.verification import VerificationResult
from repro.crowd.model import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.data.scenario import (
    ScenarioPack,
    default_pack,
    load_builtin_packs,
    load_pack,
)
from repro.eval.accuracy import AccuracyReport, evaluate_accuracy
from repro.errors import (
    KBLintError,
    QueryLintError,
    ReproError,
    ScenarioPackError,
    TranslationError,
    VerificationError,
)
from repro.oassis.engine import EngineConfig, OassisEngine, QueryResult
from repro.oassisql import OassisQuery, parse_oassisql, print_oassisql
from repro.obs import MetricsRegistry, SlowQueryLog
from repro.rdf.planner import QueryPlanner
from repro.resilience import (
    ChaosCrowd,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FlakyInteraction,
    ResilienceConfig,
    ResilientCrowd,
    ResilientInteraction,
    RetryPolicy,
)
from repro.service import (
    ServiceStats,
    TranslationCache,
    TranslationService,
)
from repro.serving import (
    HashRing,
    HTTPFrontend,
    ServingStats,
    ShardManager,
    WorkerSpec,
)
from repro.ui.interaction import (
    AutoInteraction,
    ConsoleInteraction,
    ScriptedInteraction,
)

__version__ = "1.0.0"

__all__ = [
    "NL2CM",
    "TranslationResult",
    "VerificationResult",
    "OassisQuery",
    "parse_oassisql",
    "print_oassisql",
    "OassisEngine",
    "EngineConfig",
    "QueryResult",
    "SimulatedCrowd",
    "GroundTruth",
    "TranslationService",
    "TranslationCache",
    "ServiceStats",
    "ShardManager",
    "HTTPFrontend",
    "HashRing",
    "WorkerSpec",
    "ServingStats",
    "MetricsRegistry",
    "SlowQueryLog",
    "QueryPlanner",
    "ResilienceConfig",
    "RetryPolicy",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FlakyInteraction",
    "ChaosCrowd",
    "ResilientInteraction",
    "ResilientCrowd",
    "AutoInteraction",
    "ScriptedInteraction",
    "ConsoleInteraction",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "QueryLint",
    "PatternLint",
    "OntologyLint",
    "ScenarioLint",
    "ScenarioPack",
    "default_pack",
    "load_pack",
    "load_builtin_packs",
    "AccuracyReport",
    "evaluate_accuracy",
    "ReproError",
    "TranslationError",
    "VerificationError",
    "QueryLintError",
    "KBLintError",
    "ScenarioPackError",
    "__version__",
]
