"""Structured spans: the truthful replacement for flat trace entries.

The original admin-mode trace was a flat list of ``(stage, artifact,
elapsed)`` entries with a hand-maintained ``SUBSUMED_STAGES`` set to
avoid double-counting the ``ix-detection`` entry that aggregated its
finder/creator sub-steps.  That hack is exactly the kind of lie this
module removes at the root: a :class:`Span` has a ``span_id``, a
``parent_id`` and monotonic ``start``/``end`` timestamps
(``time.perf_counter``), so

* a parent's duration *covers* its children by construction (no
  summing, no subsumption lists);
* "total time" is the root span's duration — real wall clock;
* per-stage aggregation sums **leaf** spans only, which can never
  exceed the root's duration.

A :class:`SpanRecorder` builds one span tree per request (one
translation), carries a ``request_id``, and is deliberately
single-threaded: one recorder per request, many recorders in flight.
"""

from __future__ import annotations

import itertools
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "SpanRecorder", "new_request_id"]

#: Process-wide span id source; ids are unique per process, which is
#: all a parent/child edge needs.
_SPAN_IDS = itertools.count(1)


def new_request_id() -> str:
    """A fresh opaque request id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed unit of work inside a request's span tree."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    artifact: Any = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def elapsed(self) -> float:
        """Seconds from start to end (to *now* while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def render(self, depth: int = 0) -> str:
        """Human-readable block for the admin monitor."""
        body = (
            self.artifact if isinstance(self.artifact, str)
            else repr(self.artifact)
        )
        indent = "  " * depth
        return (
            f"{indent}== {self.name} ({self.elapsed * 1000:.1f} ms) ==\n"
            f"{body}"
        )


@dataclass
class SpanRecorder:
    """Builds one request's span tree; **not** thread-safe by design.

    One recorder records one request on one thread (the pipeline is
    synchronous per request); concurrency lives one level up, in the
    service, which owns a recorder per in-flight translation.
    """

    request_id: str = field(default_factory=new_request_id)
    spans: list[Span] = field(default_factory=list)
    _stack: list[Span] = field(default_factory=list, repr=False)

    # -- recording -----------------------------------------------------------

    def start_span(self, name: str) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=next(_SPAN_IDS),
            parent_id=parent.span_id if parent else None,
            start=time.perf_counter(),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ValueError(
                f"span {span.name!r} is not the innermost open span"
            )
        span.end = time.perf_counter()
        self._stack.pop()

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        span = self.start_span(name)
        try:
            yield span
        finally:
            self.end_span(span)

    def add(self, name: str, artifact: Any, elapsed: float) -> None:
        """Compatibility shim: record an already-measured span.

        Pre-span callers recorded ``(stage, artifact, elapsed)``
        triples; this creates an equivalent finished child of the
        currently open span.
        """
        now = time.perf_counter()
        parent = self._stack[-1] if self._stack else None
        self.spans.append(Span(
            name=name,
            span_id=next(_SPAN_IDS),
            parent_id=parent.span_id if parent else None,
            start=now - elapsed,
            end=now,
            artifact=artifact,
        ))

    # -- tree structure ------------------------------------------------------

    @property
    def root(self) -> Span | None:
        """The first top-level span (the request span, once recorded)."""
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def is_leaf(self, span: Span) -> bool:
        return all(s.parent_id != span.span_id for s in self.spans)

    def leaves(self) -> list[Span]:
        parents = {s.parent_id for s in self.spans}
        return [s for s in self.spans if s.span_id not in parents]

    def find(self, name: str) -> Span | None:
        """The first span with ``name``, or None."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def self_seconds(self, span: Span) -> float:
        """``span``'s elapsed time minus its direct children's.

        Self-times tile the tree exactly: summing them over every span
        equals the root's duration, so per-stage accounting built on
        them can never double-count and never lose time — orchestration
        glue shows up as the parents' (small) self-time instead of
        silently inflating or escaping the totals.
        """
        return span.elapsed - sum(
            c.elapsed for c in self.children(span)
        )

    # -- rendering -----------------------------------------------------------

    def _depth(self, span: Span) -> int:
        by_id = {s.span_id: s for s in self.spans}
        depth, current = 0, span
        while current.parent_id is not None:
            current = by_id[current.parent_id]
            depth += 1
        return depth

    def render_tree(self) -> str:
        """One line per span, indented by depth, with durations.

        The compact form the slow-query log dumps::

            translate (84.2 ms)  request=1f2e...
              verification (0.1 ms)
              ...
        """
        lines = []
        for span in self.spans:
            indent = "  " * self._depth(span)
            suffix = (
                f"  request={self.request_id}"
                if span.parent_id is None else ""
            )
            lines.append(
                f"{indent}{span.name} ({span.elapsed * 1000:.1f} ms)"
                f"{suffix}"
            )
        return "\n".join(lines)
