"""``repro.obs`` — dependency-free observability for the serving stack.

Three pillars, all stdlib-only:

* **Metrics** (:mod:`repro.obs.metrics`): a thread-safe
  :class:`MetricsRegistry` of :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` instruments with labeled series and Prometheus
  text-format exposition (:meth:`MetricsRegistry.expose`), plus a
  strict :func:`parse_prometheus_text` used by the tests and CI to
  prove the exposition is well-formed.

* **Tracing** (:mod:`repro.obs.tracing`): :class:`Span` /
  :class:`SpanRecorder` — true parent/child span trees with monotonic
  timestamps and a per-request id.  The translation pipeline's
  admin-mode trace is built on these, which is what lets per-stage
  accounting sum *leaf* spans instead of maintaining subsumption lists.

* **Slow-query log** (:mod:`repro.obs.slowlog`): a bounded ring of the
  span trees of translations that crossed a latency threshold.

Quickstart::

    from repro.obs import MetricsRegistry
    from repro.service import TranslationService

    registry = MetricsRegistry()
    service = TranslationService(registry=registry)
    service.translate_batch(questions)
    print(registry.expose())          # Prometheus text format

See ``docs/observability.md`` for the metric catalog and span
semantics.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.server import start_metrics_server
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.tracing import Span, SpanRecorder, new_request_id

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "SpanRecorder",
    "new_request_id",
    "parse_prometheus_text",
    "start_metrics_server",
]
