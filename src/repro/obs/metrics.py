"""Dependency-free metrics: registry, instruments, Prometheus text format.

The serving layer needs a truthful, scrape-able window into a running
:class:`~repro.service.service.TranslationService`.  This module is the
substrate: a thread-safe :class:`MetricsRegistry` holding three
instrument kinds —

* :class:`Counter` — monotonically increasing floats (requests,
  cache hits, crowd tasks);
* :class:`Gauge` — instantaneous values, settable or computed by a
  lock-free callback (cache size);
* :class:`Histogram` — cumulative-bucket latency distributions over
  fixed log-scale buckets (per-stage pipeline latency).

Every instrument may be *labeled* (``stage="ix-finder"``); a labeled
family holds one child per label-value combination.  Registration is
get-or-create: asking for an already-registered name returns the
existing family (so a shared registry aggregates across services), and
conflicting re-registration (different kind, help or label names)
raises :class:`~repro.errors.MetricsError`.

:meth:`MetricsRegistry.expose` renders the whole registry in the
Prometheus text exposition format (version 0.0.4), and
:func:`parse_prometheus_text` parses that format back — used by the
tests and the CI job to prove the output is well-formed line by line.

Everything is stdlib-only by design: the container this runs in has no
``prometheus_client``, and none is needed.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Iterator, Mapping

from repro.errors import MetricsError

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

#: Fixed log-scale (1-2.5-5 per decade) latency buckets, in seconds,
#: from 100 microseconds to 10 seconds.  Wide enough for a single NLP
#: stage and for a whole crowd-mining evaluation.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The key of one child inside a family: label values, in the order of
#: the family's ``labelnames``.
LabelValues = tuple[str, ...]


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats without the ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(
    labelnames: tuple[str, ...],
    labelvalues: LabelValues,
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{n}="{_escape_label_value(v)}"'
        for n, v in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{n}="{_escape_label_value(v)}"' for n, v in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Family:
    """Common machinery of a labeled metric family.

    Value mutation and reads share the registry's single re-entrant
    lock: instrument updates are cheap (a dict lookup and a float add),
    and one lock keeps the whole registry's lock ordering trivial —
    nothing in this module ever acquires another lock while holding it.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        lock: threading.RLock,
    ):
        if not _METRIC_NAME.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise MetricsError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._children: dict[LabelValues, object] = {}

    # -- children ------------------------------------------------------------

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def labels(self, **labels: str):
        """The child for one label-value combination (created lazily)."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default_child(self):
        if self.labelnames:
            raise MetricsError(
                f"metric {self.name!r} is labeled "
                f"{list(self.labelnames)}; use .labels(...)"
            )
        return self.labels()

    def children(self) -> list[tuple[dict[str, str], object]]:
        """Snapshot of ``(labels dict, child)`` pairs, insertion order."""
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in self._children.items()
            ]

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:
        """Zero every child **in place**.

        Children are kept (their label series persist at zero, as
        Prometheus series do) so handles cached by hot paths — e.g. the
        service's per-outcome counter children — stay live across a
        reset instead of silently recording into detached objects.
        """
        with self._lock:
            for child in self._children.values():
                child.reset()

    # -- exposition ----------------------------------------------------------

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def expose(self) -> list[str]:
        with self._lock:
            lines = self._header()
            for key, child in self._children.items():
                lines.extend(self._expose_child(key, child))
            return lines

    def _expose_child(self, key, child):  # pragma: no cover - overridden
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.RLock):
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    """A monotonically increasing value (family of them when labeled)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def value(self, **labels: str) -> float:
        """Current value; 0.0 for a label combination never touched."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.value if child is not None else 0.0

    def _expose_child(self, key, child):
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {_format_value(child.value)}"]


class _GaugeChild:
    __slots__ = ("_value", "_lock", "_callback")

    def __init__(
        self,
        lock: threading.RLock,
        callback: Callable[[], float] | None = None,
    ):
        self._value = 0.0
        self._lock = lock
        self._callback = callback

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise MetricsError("callback gauges cannot be set")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise MetricsError("callback gauges cannot be set")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        if self._callback is not None:
            return  # callback gauges describe live state
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        if self._callback is not None:
            # Callbacks run under the registry lock during expose();
            # they must be lock-free and cheap (e.g. len() of a dict).
            return float(self._callback())
        with self._lock:
            return self._value


class Gauge(_Family):
    """An instantaneous value; optionally computed by a callback."""

    kind = "gauge"

    def __init__(self, name, help, labelnames, lock, callback=None):
        if callback is not None and labelnames:
            raise MetricsError("callback gauges cannot be labeled")
        super().__init__(name, help, labelnames, lock)
        self._callback = callback

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock, self._callback)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None and self._callback is not None:
                child = self.labels()
            return child.value if child is not None else 0.0

    def _expose_child(self, key, child):
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {_format_value(child.value)}"]

    def expose(self) -> list[str]:
        # Materialize the default child so a callback gauge shows up
        # even if nobody ever read it.
        if self._callback is not None:
            self.labels()
        return super().expose()


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.RLock, buckets: tuple[float, ...]):
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * len(buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.buckets)
            self._sum = 0.0
            self._count = 0

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, ending at +Inf."""
        with self._lock:
            out, running = [], 0
            for bound, n in zip(self.buckets, self._counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, self._count))
            return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        Linear interpolation inside the bucket that crosses the target
        rank; the last bucket clamps to its lower bound.  An estimate —
        good for admin panels, not for billing.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError("quantile must be in [0, 1]")
        with self._lock:
            if not self._count:
                return 0.0
            target = q * self._count
            running = 0
            lower = 0.0
            overflow = self._count - sum(self._counts)
            for bound, n in zip(self.buckets, self._counts):
                if running + n >= target and n:
                    fraction = (target - running) / n
                    return lower + (bound - lower) * fraction
                running += n
                lower = bound
            # Target falls into the overflow (+Inf) bucket.
            return self.buckets[-1] if overflow else lower


class Histogram(_Family):
    """A cumulative-bucket distribution (Prometheus histogram)."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets=None):
        super().__init__(name, help, labelnames, lock)
        raw = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
        if list(raw) != sorted(raw) or len(set(raw)) != len(raw):
            raise MetricsError("histogram buckets must strictly increase")
        if not raw:
            raise MetricsError("histogram needs at least one bucket")
        self.buckets = tuple(float(b) for b in raw if b != math.inf)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.sum if child is not None else 0.0

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0

    def _expose_child(self, key, child):
        lines = []
        for bound, cumulative in child.cumulative_counts():
            labels = _render_labels(
                self.labelnames, key, (("le", _format_value(bound)),)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        labels = _render_labels(self.labelnames, key)
        lines.append(f"{self.name}_sum{labels} {_format_value(child.sum)}")
        lines.append(f"{self.name}_count{labels} {child.count}")
        return lines


class MetricsRegistry:
    """A named collection of metric families with text exposition.

    One registry per service is the normal shape; injecting a shared
    registry into several components (service, cache, engine) gives one
    scrape endpoint for the whole process.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- registration (get-or-create) ----------------------------------------

    def counter(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
    ) -> Counter:
        return self._register(Counter, name, help, tuple(labelnames))

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        return self._register(
            Gauge, name, help, tuple(labelnames), callback=callback
        )

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, tuple(labelnames), buckets=buckets
        )

    def _register(self, cls, name, help, labelnames, **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != labelnames
                ):
                    raise MetricsError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            family = cls(name, help, labelnames, self._lock, **kwargs)
            self._families[name] = family
            return family

    # -- introspection -------------------------------------------------------

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def __iter__(self) -> Iterator[_Family]:
        with self._lock:
            return iter(list(self._families.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def reset(self) -> None:
        """Zero every value; registrations and callbacks survive."""
        with self._lock:
            for family in self._families.values():
                family.reset()

    # -- exposition ----------------------------------------------------------

    def expose(self) -> str:
        """The whole registry in Prometheus text format (0.0.4).

        Ends with a trailing newline, as scrapers expect.  The snapshot
        is per-family consistent; cross-family consistency is not
        promised (scrapes are not transactions).
        """
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            lines.extend(family.expose())
        return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Text-format parsing (for tests and the CI exposition check)
# ---------------------------------------------------------------------------


def _parse_labels(text: str, lineno: int) -> dict[str, str]:
    """Parse ``name="value",...`` (the part between the braces)."""
    labels: dict[str, str] = {}
    i, n = 0, len(text)
    while i < n:
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', text[i:])
        if not match:
            raise ValueError(
                f"line {lineno}: malformed label pair at {text[i:]!r}"
            )
        name = match.group(1)
        i += match.end()
        value = []
        while i < n and text[i] != '"':
            if text[i] == "\\":
                if i + 1 >= n:
                    raise ValueError(
                        f"line {lineno}: dangling escape in label value"
                    )
                escaped = text[i + 1]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped)
                    or escaped
                )
                i += 2
            else:
                value.append(text[i])
                i += 1
        if i >= n:
            raise ValueError(f"line {lineno}: unterminated label value")
        i += 1  # closing quote
        labels[name] = "".join(value)
        rest = text[i:].lstrip()
        if rest.startswith(","):
            i = n - len(rest) + 1
        elif rest:
            raise ValueError(
                f"line {lineno}: junk after label value: {rest!r}"
            )
        else:
            break
    return labels


def _parse_value(token: str, lineno: int) -> float:
    token = token.strip()
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError as err:
        raise ValueError(
            f"line {lineno}: malformed sample value {token!r}"
        ) from err


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse Prometheus text-format exposition into metric dicts.

    Returns ``{metric name: {"type": str | None, "help": str | None,
    "samples": {(sample name, ((label, value), ...)): float}}}``, where
    the sample name carries any ``_bucket``/``_sum``/``_count`` suffix
    and label pairs are sorted.  Raises :class:`ValueError` on any line
    that is not a valid comment, ``# HELP``, ``# TYPE`` or sample line —
    this strictness is the point: the tests and the CI job use it to
    prove :meth:`MetricsRegistry.expose` output is well-formed.
    """
    metrics: dict[str, dict] = {}

    def entry(name: str) -> dict:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        found = metrics.get(base) if base in metrics else metrics.get(name)
        if found is None:
            found = {"type": None, "help": None, "samples": {}}
            metrics[name] = found
        return found

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                payload = parts[3] if len(parts) > 3 else ""
                record = metrics.setdefault(
                    name, {"type": None, "help": None, "samples": {}}
                )
                record[parts[1].lower()] = payload
            # Other comments are legal and ignored.
            continue
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+\S+)?$",
            line,
        )
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name, _, labeltext, valuetoken, _timestamp = match.groups()
        labels = (
            _parse_labels(labeltext, lineno) if labeltext else {}
        )
        value = _parse_value(valuetoken, lineno)
        key = (name, tuple(sorted(labels.items())))
        entry(name)["samples"][key] = value
    return metrics
