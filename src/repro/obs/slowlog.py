"""Slow-query log: keep the span trees of the slowest translations.

Aggregates (histograms) tell you *that* the p99 moved; the slow-query
log tells you *why*, by retaining the full span tree of any translation
whose wall-clock time crossed a threshold.  A bounded ring buffer keeps
the most recent offenders — production logs must never grow without
bound.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.obs.tracing import SpanRecorder

__all__ = ["SlowQuery", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQuery:
    """One retained slow translation."""

    request_id: str
    text: str
    total_ms: float
    tree: str

    def render(self) -> str:
        return (
            f"-- slow query ({self.total_ms:.1f} ms) "
            f"request={self.request_id}\n"
            f"   {self.text}\n{self.tree}"
        )


class SlowQueryLog:
    """Thread-safe bounded ring of slow translations.

    Args:
        threshold_ms: translations at least this slow are retained.
        capacity: ring size; the oldest entry is dropped when full.
    """

    def __init__(self, threshold_ms: float, capacity: int = 32):
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seen = 0

    def record(self, text: str, trace: SpanRecorder) -> bool:
        """Retain ``trace`` if it was slow enough; True when retained."""
        root = trace.root
        total_ms = (root.elapsed if root is not None else 0.0) * 1000
        if total_ms < self.threshold_ms:
            return False
        entry = SlowQuery(
            request_id=trace.request_id,
            text=text,
            total_ms=total_ms,
            tree=trace.render_tree(),
        )
        with self._lock:
            self._entries.append(entry)
            self._seen += 1
        return True

    def entries(self) -> list[SlowQuery]:
        """Snapshot, oldest first."""
        with self._lock:
            return list(self._entries)

    @property
    def seen(self) -> int:
        """Slow translations recorded over the log's lifetime
        (including ones the ring has since dropped)."""
        with self._lock:
            return self._seen

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return (
                f"slow-query log: empty "
                f"(threshold {self.threshold_ms:.0f} ms)"
            )
        header = (
            f"slow-query log: {len(entries)} shown / {self.seen} seen "
            f"(threshold {self.threshold_ms:.0f} ms)"
        )
        return "\n".join([header] + [e.render() for e in entries])
