"""A stdlib scrape endpoint: ``GET /metrics`` over ``http.server``.

Production deployments put a real ASGI server in front; for the CLI,
the examples and the tests, a ``ThreadingHTTPServer`` on a daemon
thread is exactly enough — zero dependencies, one call to start.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = ["start_metrics_server"]

#: The content type Prometheus expects for text exposition 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def start_metrics_server(
    registry: MetricsRegistry,
    port: int = 0,
    host: str = "127.0.0.1",
) -> ThreadingHTTPServer:
    """Serve ``registry.expose()`` on ``/metrics`` in the background.

    Returns the running server; ``server.server_address[1]`` is the
    bound port (useful with ``port=0``), and ``server.shutdown()``
    stops it.  The serving thread is a daemon, so a forgotten server
    never blocks interpreter exit.
    """

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                self.send_error(404, "try /metrics")
                return
            body = registry.expose().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002
            pass  # scrapes every few seconds must not spam stderr

    server = ThreadingHTTPServer((host, port), MetricsHandler)
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-metrics-server",
        daemon=True,
    )
    thread.start()
    return server
