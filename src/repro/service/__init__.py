"""Serving layer: concurrent batching and caching over one translator.

The ROADMAP's north star is serving heavy question traffic; this
package is the front door for that.  A :class:`TranslationService`
wraps one shared :class:`~repro.core.pipeline.NL2CM` with a bounded LRU
:class:`TranslationCache`, a ``ThreadPoolExecutor`` batch path with
single-flight deduplication, and a :class:`ServiceStats` snapshot the
admin monitor renders (see :func:`repro.ui.admin.render_service_stats`).

Quickstart::

    from repro.service import TranslationService

    service = TranslationService(workers=4, cache=512)
    items = service.translate_batch(questions)
    print(service.stats().cache_hit_rate)
"""

from repro.service.cache import CacheStats, TranslationCache
from repro.service.service import (
    BatchItem,
    ServiceStats,
    StageStat,
    TranslationService,
)

__all__ = [
    "BatchItem",
    "CacheStats",
    "ServiceStats",
    "StageStat",
    "TranslationCache",
    "TranslationService",
]
