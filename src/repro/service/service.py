"""High-throughput translation service over a shared :class:`NL2CM`.

The translator itself is stateless after construction except for the
FREyA feedback store (which serializes its own mutations under a lock),
so one :class:`NL2CM` instance — with its ontology label indexes, IX
patterns and vocabularies built once — can serve many questions.  The
service adds the serving layer the paper's demo never needed:

* :meth:`TranslationService.translate` — single question, through a
  bounded LRU :class:`~repro.service.cache.TranslationCache`;
* :meth:`TranslationService.translate_batch` — fan-out over a
  ``ThreadPoolExecutor`` with single-flight deduplication (identical
  questions in one batch are translated once);
* :meth:`TranslationService.warm` — pre-translate a corpus so first
  user traffic is served from cache;
* :meth:`TranslationService.stats` — a :class:`ServiceStats` snapshot
  (request counters, cache hit rate, per-stage latency aggregates) for
  the admin monitor.

Every counter and latency distribution lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (injectable; a private one
is built if omitted), exposed in Prometheus text format via
``registry.expose()``.  :meth:`stats` is a *compatibility view* derived
from the registry — the two can never disagree, because there is only
one set of numbers.  Request accounting distinguishes four disjoint
outcomes::

    requests == translated + served_from_cache + deduplicated + errors

where *deduplicated* counts batch single-flight followers (they share a
leader's in-batch result — that is not a cache hit, and is counted even
when caching is disabled).  Per-stage latency is aggregated from the
translation trace's span tree using **self-times** (a span's duration
minus its children's), which tile each request exactly: stage totals
always sum to ``busy_seconds``, with orchestration glue visible as the
``pipeline-overhead`` series instead of silently inflating a stage.

Results are returned in request order and are byte-identical to what a
sequential run of ``NL2CM.translate`` produces — determinism under
threading is part of the service contract (and under test).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.pipeline import NL2CM, TranslationResult, TranslationTrace
from repro.errors import (
    QueryLintError,
    ReproError,
    UnexpectedTranslationError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.resilience import (
    FlakyInteraction,
    ResilienceConfig,
    ResilientInteraction,
)
from repro.service.cache import CacheStats, TranslationCache
from repro.ui.interaction import AutoInteraction, InteractionProvider

__all__ = [
    "BatchItem", "SeededTranslation", "ServiceStats", "StageStat",
    "TranslationService",
]

#: Stage name under which a request's orchestration glue (the root
#: span's self-time: span bookkeeping, artifact wiring) is accounted.
OVERHEAD_STAGE = "pipeline-overhead"


@dataclass(frozen=True)
class StageStat:
    """Aggregate self-time of one pipeline stage.

    ``leaf`` is True for real pipeline work (childless spans); False
    for the self-time of aggregate spans (``ix-detection``) and the
    ``pipeline-overhead`` series.  Totals over *all* stages — leaf or
    not — sum to ``busy_seconds``.
    """

    total_seconds: float
    count: int
    leaf: bool = True

    @property
    def mean_ms(self) -> float:
        return self.total_seconds / self.count * 1000 if self.count else 0.0


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's counters.

    Derived from the service's metrics registry under the service lock,
    with the cache counters read *after* the request counters — so the
    snapshot can never show ``served_from_cache > cache hits`` (every
    counted cache-served request incremented the cache's hit counter
    first).

    Attributes:
        requests: translation requests served (all outcomes).
        translated: fresh translations actually run through the pipeline.
        served_from_cache: requests answered by a cache lookup.
        deduplicated: batch single-flight followers that shared a
            leader's result within one batch (not cache hits; counted
            even when caching is disabled).
        errors: requests that raised a translation/verification error.
        batches: ``translate_batch`` calls completed.
        batch_questions: questions served through batches.
        batch_seconds: wall-clock seconds spent inside batch calls.
        busy_seconds: summed per-translation pipeline wall time
            (overlaps under concurrency, so this is per-worker time,
            not wall).
        stages: per-stage self-time aggregates of fresh translations;
            ``sum(s.total_seconds for s in stages.values())`` equals
            ``busy_seconds`` (up to float rounding).
        cache: cache counters, or None when caching is disabled.
        workers: the configured fan-out width.
        lint_errors: ERROR-level lint diagnostics across fresh
            translations (including ones that raised ``QueryLintError``).
        lint_warnings: WARNING-level lint diagnostics, same scope.
        lint_infos: INFO-level lint diagnostics, same scope.
        kb_lint_errors: ERROR-level diagnostics of the translator's
            construction-time knowledge-base lint (0 when the
            translator was built with ``kb_lint="off"``).
        kb_lint_warnings: WARNING-level KB lint diagnostics, same scope.
        kb_lint_infos: INFO-level KB lint diagnostics, same scope.
        slow_queries: translations retained by the slow-query log.
        degraded: fresh translations that served at least one
            interaction from the resilience fallback (a subset of
            ``translated`` — degraded requests still produce a result).
        retries: interaction-provider retry attempts.
        breaker_rejections: interaction calls rejected by an open
            circuit breaker.
        plan_cache_hits: BGP plan-cache hits of the translator's query
            planner (zeros when the translator runs ``planner="greedy"``).
        plan_cache_misses: plan-cache misses (first sight of a query
            shape), same scope.
        plan_cache_invalidations: cached plans dropped because the
            store's mutation epoch moved, same scope.
        plans_compiled: plans built (misses + invalidations), same
            scope.
    """

    requests: int
    translated: int
    served_from_cache: int
    deduplicated: int
    errors: int
    batches: int
    batch_questions: int
    batch_seconds: float
    busy_seconds: float
    stages: dict[str, StageStat]
    cache: CacheStats | None
    workers: int
    lint_errors: int = 0
    lint_warnings: int = 0
    lint_infos: int = 0
    kb_lint_errors: int = 0
    kb_lint_warnings: int = 0
    kb_lint_infos: int = 0
    slow_queries: int = 0
    degraded: int = 0
    retries: int = 0
    breaker_rejections: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_invalidations: int = 0
    plans_compiled: int = 0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Hit fraction of plan-cache lookups (0.0 before any lookup)."""
        lookups = (
            self.plan_cache_hits + self.plan_cache_misses
            + self.plan_cache_invalidations
        )
        return self.plan_cache_hits / lookups if lookups else 0.0

    @property
    def accounted(self) -> int:
        """The outcome sum; equals ``requests`` at every instant."""
        return (
            self.translated + self.served_from_cache
            + self.deduplicated + self.errors
        )

    @property
    def mean_translation_ms(self) -> float:
        if not self.translated:
            return 0.0
        return self.busy_seconds / self.translated * 1000

    @property
    def batch_throughput_qps(self) -> float:
        """Questions/sec over the wall time spent in batch calls."""
        if not self.batch_seconds:
            return 0.0
        return self.batch_questions / self.batch_seconds

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate if self.cache else 0.0


class _SeededTrace:
    """The trace stand-in every seeded entry shares: by construction a
    seeded result is never degraded (degraded results are refused at
    seed time, as they are at cache time)."""

    degraded = False
    degraded_events: tuple = ()


_SEEDED_TRACE = _SeededTrace()


@dataclass(frozen=True)
class SeededTranslation:
    """A cache entry rebuilt from a peer's serialized export.

    The warm-restart protocol ships only what survives the wire —
    the normalized question, the provider fingerprint, and the final
    OASSIS-QL text — not the dependency graph, IXs or span tree of the
    original :class:`~repro.core.pipeline.TranslationResult`.  Serving
    consumers read exactly ``query_text`` and ``trace.degraded`` from a
    cache hit, so a seeded entry answers repeat traffic byte-identically
    to the original; anything that needs the full artifact chain (the
    ``query`` AST, the trace's spans) re-translates instead.
    """

    text: str
    query_text: str
    #: Marks warm-restart provenance for debugging and tests.
    seeded: bool = True

    @property
    def trace(self) -> _SeededTrace:
        return _SEEDED_TRACE

    @property
    def lint(self) -> None:
        return None


@dataclass
class BatchItem:
    """One question's outcome within a batch (in request order)."""

    text: str
    result: TranslationResult | None = None
    error: ReproError | None = None
    cached: bool = False
    #: True when any of this item's interactions were answered by the
    #: resilience fallback (the shared leader's trace for followers).
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def query_text(self) -> str | None:
        return self.result.query_text if self.result else None


class TranslationService:
    """Concurrent, cached front-end to one shared translator.

    Args:
        nl2cm: the shared translator; a default one is built if omitted.
        workers: default fan-out width of :meth:`translate_batch`.
        cache: a :class:`TranslationCache`, a capacity for a fresh one,
            or None to disable caching entirely.
        interaction: default answer provider for requests that do not
            carry their own; falls back to the translator's provider.
        registry: the metrics registry to record into; a private one is
            built if omitted.  Injecting a shared registry gives one
            scrape endpoint for several components (service, cache,
            engine) — at the price that :meth:`reset_stats` zeroes the
            whole registry.
        slow_log: a :class:`~repro.obs.slowlog.SlowQueryLog`, or a
            threshold in milliseconds for a fresh one, or None to
            disable the slow-query log.
        resilience: a :class:`~repro.resilience.ResilienceConfig`
            enabling the fault-tolerance layer — interaction calls are
            retried with deterministic backoff behind a shared circuit
            breaker, and (when ``degrade`` is on) answered from
            :class:`~repro.ui.interaction.AutoInteraction` defaults
            after retries are exhausted.  Degraded results are flagged
            on the trace and the :class:`BatchItem`, counted in
            ``repro_degraded_total``, and **never cached**.  ``None``
            (the default) adds zero overhead.
    """

    def __init__(
        self,
        nl2cm: NL2CM | None = None,
        *,
        workers: int = 4,
        cache: TranslationCache | int | None = 256,
        interaction: InteractionProvider | None = None,
        registry: MetricsRegistry | None = None,
        slow_log: SlowQueryLog | float | None = None,
        resilience: ResilienceConfig | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.nl2cm = nl2cm or NL2CM()
        self.workers = workers
        if isinstance(cache, int):
            cache = TranslationCache(capacity=cache)
        self.cache = cache
        self.interaction = interaction
        self.registry = registry if registry is not None else (
            MetricsRegistry()
        )
        if isinstance(slow_log, (int, float)):
            slow_log = SlowQueryLog(threshold_ms=float(slow_log))
        self.slow_log = slow_log
        self.resilience = resilience
        if resilience is not None:
            self._r_policy = resilience.policy()
            self._r_breaker = resilience.breaker("interaction")
            self._r_fallback = (
                AutoInteraction() if resilience.degrade else None
            )
        else:
            self._r_policy = None
            self._r_breaker = None
            self._r_fallback = None
        self._lock = threading.Lock()
        self._build_metrics()
        if self.cache is not None:
            self.cache.bind_registry(self.registry)
        planner = getattr(self.nl2cm, "planner", None)
        if planner is not None:
            planner.bind_registry(self.registry)

    def _build_metrics(self) -> None:
        r = self.registry
        self._m_requests = r.counter(
            "nl2cm_requests_total",
            "Translation requests served (all outcomes).",
        )
        self._m_outcomes = r.counter(
            "nl2cm_request_outcomes_total",
            "Requests by outcome: translated, cache_hit, deduplicated, "
            "error.  Sums to nl2cm_requests_total.",
            labelnames=("outcome",),
        )
        self._m_translate = r.histogram(
            "nl2cm_translate_seconds",
            "Wall-clock seconds per fresh pipeline translation "
            "(the trace's root span).",
        )
        self._m_stage = r.histogram(
            "nl2cm_stage_seconds",
            "Per-stage self-time of fresh translations; kind is 'leaf' "
            "for real pipeline work, 'self' for aggregate spans' own "
            "time, 'overhead' for request orchestration glue.  Sums "
            "across all series equal nl2cm_translate_seconds_sum.",
            labelnames=("stage", "kind"),
        )
        self._m_batches = r.counter(
            "nl2cm_batches_total", "translate_batch calls completed.",
        )
        self._m_batch_questions = r.counter(
            "nl2cm_batch_questions_total",
            "Questions served through batches.",
        )
        self._m_batch_seconds = r.counter(
            "nl2cm_batch_seconds_total",
            "Wall-clock seconds spent inside translate_batch calls.",
        )
        self._m_lint = r.counter(
            "nl2cm_lint_diagnostics_total",
            "QueryLint diagnostics across fresh translations.",
            labelnames=("severity",),
        )
        self._m_kb_lint = r.gauge(
            "nl2cm_kb_lint_diagnostics",
            "Construction-time knowledge-base lint diagnostics of the "
            "shared translator (ontology + pattern bank), by severity. "
            "A gauge, not a counter: the KB is linted once per "
            "translator, so this mirrors that report, it does not "
            "accumulate.",
            labelnames=("severity",),
        )
        self._apply_kb_lint_gauges()
        self._m_slow = r.counter(
            "nl2cm_slow_queries_total",
            "Translations retained by the slow-query log.",
        )
        self._m_degraded = r.counter(
            "repro_degraded_total",
            "Translations that served at least one interaction from "
            "the resilience fallback (graceful degradation).",
        )
        self._m_retries = r.counter(
            "nl2cm_retries_total",
            "Interaction-provider retry attempts across fresh "
            "translations.",
        )
        self._m_breaker_rejections = r.counter(
            "nl2cm_breaker_rejections_total",
            "Interaction calls rejected by an open circuit breaker.",
        )
        r.gauge(
            "nl2cm_breaker_state",
            "Interaction breaker state: 0 closed, 1 half-open, 2 open "
            "(0 when no breaker is configured).",
            callback=lambda: (
                self._r_breaker.state_code()
                if self._r_breaker is not None else 0.0
            ),
        )
        r.gauge(
            "nl2cm_workers",
            "Configured batch fan-out width.",
            callback=lambda: float(self.workers),
        )
        # Hot-path child handles: skip the labels() validation on every
        # request.  Safe across reset_stats() because registry.reset()
        # zeroes children in place rather than dropping them.
        self._c_requests = self._m_requests.labels()
        self._c_translated = self._m_outcomes.labels(
            outcome="translated"
        )
        self._c_cache_hit = self._m_outcomes.labels(outcome="cache_hit")
        self._c_deduplicated = self._m_outcomes.labels(
            outcome="deduplicated"
        )
        self._c_error = self._m_outcomes.labels(outcome="error")
        self._h_translate = self._m_translate.labels()
        self._stage_children: dict[tuple[str, str], object] = {}

    # -- single-question path -------------------------------------------------------

    def translate(
        self,
        text: str,
        interaction: InteractionProvider | None = None,
    ) -> TranslationResult:
        """Translate one question, going through the cache when safe.

        Raises exactly what ``NL2CM.translate`` raises; errors are
        counted but never cached (a rephrasing tip costs nothing to
        recompute and should not occupy a slot).
        """
        provider = self._provider(interaction)
        fingerprint = self._fingerprint(provider)
        if self.cache is not None and fingerprint is not None:
            cached = self.cache.get(text, fingerprint)
            if cached is not None:
                with self._lock:
                    self._c_requests.inc()
                    self._c_cache_hit.inc()
                return cached
        return self._translate_fresh(text, provider, fingerprint)

    def _translate_fresh(
        self,
        text: str,
        provider: InteractionProvider,
        fingerprint: str | None,
    ) -> TranslationResult:
        guarded = self._guard(provider, text)
        try:
            result = self.nl2cm.translate(text, guarded or provider)
        except QueryLintError as err:
            with self._lock:
                self._c_requests.inc()
                self._c_error.inc()
                self._count_lint(err.report)
            raise
        except ReproError:
            with self._lock:
                self._c_requests.inc()
                self._c_error.inc()
            raise
        except Exception:
            # A non-library exception escaping the translator is a bug,
            # but it must not corrupt the books: count the outcome,
            # then re-raise as-is (translate_batch wraps it in
            # UnexpectedTranslationError for per-item capture).
            with self._lock:
                self._c_requests.inc()
                self._c_error.inc()
            raise
        trace = result.trace
        degraded = guarded is not None and guarded.degraded
        if degraded:
            trace.degraded_events = tuple(guarded.events)
        with self._lock:
            self._record_translation(trace)
            if degraded:
                self._m_degraded.inc()
            if result.lint is not None:
                self._count_lint(result.lint)
        if self.slow_log is not None and self.slow_log.record(text, trace):
            self._m_slow.inc()
        if (
            self.cache is not None
            and fingerprint is not None
            and not degraded
            and not (result.lint is not None and result.lint.has_errors)
        ):
            # A result with ERROR-level diagnostics must never be
            # served from cache: in lint="warn" mode it is returned to
            # this caller, but recomputing keeps the red flag visible
            # in the stats instead of amortizing it away.  Neither may
            # a degraded result: its answers came from the fallback,
            # not the configured provider, and a healthy retry should
            # get the real ones.
            self.cache.put(text, fingerprint, result)
        return result

    def _guard(
        self, provider: InteractionProvider, text: str
    ) -> ResilientInteraction | None:
        """The resilience wrapper for one fresh translation, or None.

        One wrapper (and one fault injector) per translation, keyed by
        the normalized question text — so an injected fault schedule
        depends only on the question and its per-translation call
        index, never on thread scheduling, and the wrapper's degradation
        events map 1:1 onto this request's trace.
        """
        if self.resilience is None:
            return None
        inner = provider
        if self.resilience.faults is not None:
            inner = FlakyInteraction(
                inner,
                self.resilience.faults,
                key=TranslationCache.normalize(text),
            )
        return ResilientInteraction(
            inner,
            policy=self._r_policy,
            breaker=self._r_breaker,
            fallback=self._r_fallback,
            on_retry=self._m_retries.inc,
            on_rejected=self._m_breaker_rejections.inc,
        )

    def _record_translation(self, trace: TranslationTrace) -> None:
        """Record one fresh translation; the caller holds the lock."""
        self._c_requests.inc()
        self._c_translated.inc()
        self._h_translate.observe(trace.total_seconds())
        self._record_stages(trace)

    def _record_stages(self, trace: TranslationTrace) -> None:
        """Observe every span's self-time; self-times tile the request,
        so the per-stage sums reconstruct ``busy_seconds`` exactly."""
        children_elapsed: dict[int | None, float] = {}
        has_children: set[int] = set()
        for span in trace.spans:
            children_elapsed[span.parent_id] = (
                children_elapsed.get(span.parent_id, 0.0) + span.elapsed
            )
            if span.parent_id is not None:
                has_children.add(span.parent_id)
        for span in trace.spans:
            self_time = span.elapsed - children_elapsed.get(
                span.span_id, 0.0
            )
            if span.parent_id is None:
                stage, kind = OVERHEAD_STAGE, "overhead"
            elif span.span_id in has_children:
                stage, kind = span.name, "self"
            else:
                stage, kind = span.name, "leaf"
            child = self._stage_children.get((stage, kind))
            if child is None:
                child = self._m_stage.labels(stage=stage, kind=kind)
                self._stage_children[(stage, kind)] = child
            child.observe(self_time)

    def _apply_kb_lint_gauges(self) -> None:
        """Mirror the translator's KB lint report into the registry.

        Re-applied after :meth:`reset_stats` (a registry reset zeroes
        gauges, but the construction-time report still stands).
        """
        report = getattr(self.nl2cm, "kb_lint_report", None)
        for severity, count in (
            ("error", len(report.errors) if report else 0),
            ("warning", len(report.warnings) if report else 0),
            ("info", len(report.infos) if report else 0),
        ):
            self._m_kb_lint.labels(severity=severity).set(count)

    def _count_lint(self, report) -> None:
        for severity, diagnostics in (
            ("error", report.errors),
            ("warning", report.warnings),
            ("info", report.infos),
        ):
            if diagnostics:
                self._m_lint.labels(severity=severity).inc(
                    len(diagnostics)
                )

    # -- batch path -------------------------------------------------------------------

    def translate_batch(
        self,
        texts: Sequence[str],
        interaction: InteractionProvider | None = None,
        workers: int | None = None,
    ) -> list[BatchItem]:
        """Translate many questions concurrently; results in order.

        Identical questions (after normalization) are translated once
        per batch — single-flight — and every duplicate shares the
        leader's result (counted as ``deduplicated``, whether or not a
        cache is configured).  Translation errors are captured per item
        rather than raised, so one unsupported question does not sink
        the batch.
        """
        texts = list(texts)
        items = [BatchItem(text=t) for t in texts]
        if not texts:
            return items
        provider = self._provider(interaction)
        fingerprint = self._fingerprint(provider)
        width = workers if workers is not None else self.workers
        if width < 1:
            raise ValueError("workers must be >= 1")

        # Single-flight groups: all indexes that share a cache key run
        # once.  Without a usable fingerprint every question runs alone.
        groups: dict[object, list[int]] = {}
        if fingerprint is not None:
            for i, t in enumerate(texts):
                groups.setdefault(TranslationCache.normalize(t), []).append(i)
        else:
            groups = {i: [i] for i in range(len(texts))}

        start = time.perf_counter()

        def run_group(indices: list[int]) -> None:
            leader = indices[0]
            try:
                result = self.translate(texts[leader], provider)
                error = None
            except ReproError as exc:
                result, error = None, exc
            except Exception as exc:
                # The single-question path already counted the error
                # outcome; wrap the escape in a typed error so the
                # executor is never poisoned and the item stays
                # addressable like any other failure.
                result = None
                error = UnexpectedTranslationError(
                    f"translator raised a non-library error for "
                    f"{texts[leader]!r}: {exc!r}",
                    cause=exc,
                )
            degraded = result is not None and result.trace.degraded
            items[leader].result = result
            items[leader].error = error
            items[leader].degraded = degraded
            for i in indices[1:]:
                items[i].result = result
                items[i].error = error
                items[i].cached = error is None
                items[i].degraded = degraded
                with self._lock:
                    self._c_requests.inc()
                    if error is None:
                        self._c_deduplicated.inc()
                    else:
                        self._c_error.inc()

        group_lists = list(groups.values())
        if width == 1 or len(group_lists) == 1:
            for indices in group_lists:
                run_group(indices)
        else:
            with ThreadPoolExecutor(
                max_workers=min(width, len(group_lists))
            ) as pool:
                for future in [
                    pool.submit(run_group, g) for g in group_lists
                ]:
                    future.result()

        elapsed = time.perf_counter() - start
        with self._lock:
            self._m_batches.inc()
            self._m_batch_questions.inc(len(texts))
            self._m_batch_seconds.inc(elapsed)
        return items

    # -- warming ------------------------------------------------------------------------

    def warm(
        self,
        texts: Iterable[str],
        interaction: InteractionProvider | None = None,
        workers: int | None = None,
    ) -> int:
        """Pre-translate ``texts``; returns the number of cache entries
        actually **inserted** — duplicates, questions already cached,
        unsupported questions and lint-refused results are all excluded
        (they put nothing into the cache).  Unsupported questions are
        skipped, not raised: warming a corpus that contains a few
        rejects is routine."""
        if self.cache is None:
            raise ReproError("cannot warm a service with caching disabled")
        provider = self._provider(interaction)
        fingerprint = self._fingerprint(provider)
        if fingerprint is None:
            raise ReproError(
                "cannot warm the cache through a provider without a "
                "cache fingerprint (scripted/console providers are "
                "stateful)"
            )
        before = self.cache.stats().insertions
        self.translate_batch(
            list(texts), interaction=provider, workers=workers
        )
        return self.cache.stats().insertions - before

    # -- warm-restart protocol -----------------------------------------------------------

    def cache_fingerprint(self) -> str | None:
        """The default provider's cache identity, or None.

        This is the fingerprint every cache entry made through the
        default provider carries; peers use it to decide whether their
        exported entries are usable here.
        """
        return self._fingerprint(self._provider(None))

    def export_hot_entries(self, n: int) -> list[dict]:
        """Up to ``n`` hottest cache entries as JSON-safe dicts.

        Each entry is ``{"text", "fingerprint", "query"}`` — the
        ``cache_export`` frame body of the warm-restart protocol,
        hottest first.  An empty list when caching is disabled.
        """
        if self.cache is None:
            return []
        return [
            {"text": text, "fingerprint": fingerprint, "query": query}
            for text, fingerprint, query in self.cache.export_hot(n)
        ]

    def seed_cache(self, entries: Iterable[dict]) -> tuple[int, int]:
        """Replay a peer's exported entries into this service's cache.

        The receive side of the warm-restart protocol: each wire dict is
        rebuilt as a :class:`SeededTranslation` and handed to
        :meth:`TranslationCache.seed`, which refuses anything the live
        cache path would refuse and counts the rest on the dedicated
        ``warmed`` counter (never as hits or insertions).  Malformed
        entries — wrong shape, empty text/fingerprint/query — count as
        refused.  Returns ``(warmed, refused)``; ``(0, 0)`` with
        caching disabled.
        """
        if self.cache is None:
            return (0, 0)
        refused = 0
        triples = []
        for entry in entries:
            if not isinstance(entry, dict):
                refused += 1
                continue
            text = entry.get("text")
            fingerprint = entry.get("fingerprint")
            query = entry.get("query")
            if not (
                isinstance(text, str) and text
                and isinstance(fingerprint, str) and fingerprint
                and isinstance(query, str) and query
            ):
                refused += 1
                continue
            triples.append((
                text,
                fingerprint,
                SeededTranslation(text=text, query_text=query),
            ))
        warmed, bad = self.cache.seed(triples)
        return warmed, refused + bad

    # -- stats ---------------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot, derived from the metrics registry.

        Taken under the service lock, so grouped counter updates are
        never observed half-done; the cache counters are read *after*
        the request counters (still under the lock), which guarantees
        ``served_from_cache <= cache.hits`` in every snapshot.
        """
        with self._lock:
            outcome = self._m_outcomes.value
            stages: dict[str, StageStat] = {}
            for labels, child in self._m_stage.children():
                stages[labels["stage"]] = StageStat(
                    total_seconds=child.sum,
                    count=child.count,
                    leaf=labels["kind"] == "leaf",
                )
            snapshot = dict(
                requests=int(self._m_requests.value()),
                translated=int(outcome(outcome="translated")),
                served_from_cache=int(outcome(outcome="cache_hit")),
                deduplicated=int(outcome(outcome="deduplicated")),
                errors=int(outcome(outcome="error")),
                batches=int(self._m_batches.value()),
                batch_questions=int(self._m_batch_questions.value()),
                batch_seconds=self._m_batch_seconds.value(),
                busy_seconds=self._m_translate.sum(),
                stages=stages,
                lint_errors=int(self._m_lint.value(severity="error")),
                lint_warnings=int(
                    self._m_lint.value(severity="warning")
                ),
                lint_infos=int(self._m_lint.value(severity="info")),
                kb_lint_errors=int(
                    self._m_kb_lint.value(severity="error")
                ),
                kb_lint_warnings=int(
                    self._m_kb_lint.value(severity="warning")
                ),
                kb_lint_infos=int(
                    self._m_kb_lint.value(severity="info")
                ),
                slow_queries=int(self._m_slow.value()),
                degraded=int(self._m_degraded.value()),
                retries=int(self._m_retries.value()),
                breaker_rejections=int(
                    self._m_breaker_rejections.value()
                ),
            )
            planner = getattr(self.nl2cm, "planner", None)
            if planner is not None:
                plans = planner.snapshot()
                snapshot.update(
                    plan_cache_hits=plans.hits,
                    plan_cache_misses=plans.misses,
                    plan_cache_invalidations=plans.invalidations,
                    plans_compiled=plans.compiled,
                )
            cache_stats = (
                self.cache.stats() if self.cache is not None else None
            )
        return ServiceStats(
            cache=cache_stats, workers=self.workers, **snapshot
        )

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are kept).

        Resets the **whole** bound registry — with an injected shared
        registry this includes any other component recording into it.
        """
        with self._lock:
            self.registry.reset()
            self._apply_kb_lint_gauges()
        if self.cache is not None:
            self.cache.reset_counters()
        if self.slow_log is not None:
            self.slow_log.clear()

    # -- internals -----------------------------------------------------------------------

    def _provider(
        self, interaction: InteractionProvider | None
    ) -> InteractionProvider:
        return interaction or self.interaction or self.nl2cm.interaction

    @staticmethod
    def _fingerprint(provider: InteractionProvider) -> str | None:
        """The provider's cache identity, or None if uncacheable."""
        fp = getattr(provider, "cache_fingerprint", None)
        if callable(fp):
            fp = fp()
        return fp if isinstance(fp, str) else None
