"""High-throughput translation service over a shared :class:`NL2CM`.

The translator itself is stateless after construction except for the
FREyA feedback store (which serializes its own mutations under a lock),
so one :class:`NL2CM` instance — with its ontology label indexes, IX
patterns and vocabularies built once — can serve many questions.  The
service adds the serving layer the paper's demo never needed:

* :meth:`TranslationService.translate` — single question, through a
  bounded LRU :class:`~repro.service.cache.TranslationCache`;
* :meth:`TranslationService.translate_batch` — fan-out over a
  ``ThreadPoolExecutor`` with single-flight deduplication (identical
  questions in one batch are translated once);
* :meth:`TranslationService.warm` — pre-translate a corpus so first
  user traffic is served from cache;
* :meth:`TranslationService.stats` — a :class:`ServiceStats` snapshot
  (request counters, cache hit rate, per-stage latency aggregates) for
  the admin monitor.

Results are returned in request order and are byte-identical to what a
sequential run of ``NL2CM.translate`` produces — determinism under
threading is part of the service contract (and under test).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.pipeline import NL2CM, TranslationResult
from repro.errors import QueryLintError, ReproError
from repro.service.cache import CacheStats, TranslationCache
from repro.ui.interaction import InteractionProvider

__all__ = [
    "BatchItem", "ServiceStats", "StageStat", "TranslationService",
]


@dataclass(frozen=True)
class StageStat:
    """Aggregate latency of one pipeline stage."""

    total_seconds: float
    count: int

    @property
    def mean_ms(self) -> float:
        return self.total_seconds / self.count * 1000 if self.count else 0.0


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's counters.

    Attributes:
        requests: translation requests served (cache hits included).
        translated: fresh translations actually run through the pipeline.
        served_from_cache: requests answered without running the pipeline.
        errors: requests that raised a translation/verification error.
        batches: ``translate_batch`` calls completed.
        batch_questions: questions served through batches.
        batch_seconds: wall-clock seconds spent inside batch calls.
        busy_seconds: summed per-translation pipeline time (overlaps
            under concurrency, so this is per-worker time, not wall).
        stages: per-stage latency aggregates of fresh translations.
        cache: cache counters, or None when caching is disabled.
        workers: the configured fan-out width.
        lint_errors: ERROR-level lint diagnostics across fresh
            translations (including ones that raised ``QueryLintError``).
        lint_warnings: WARNING-level lint diagnostics, same scope.
        lint_infos: INFO-level lint diagnostics, same scope.
    """

    requests: int
    translated: int
    served_from_cache: int
    errors: int
    batches: int
    batch_questions: int
    batch_seconds: float
    busy_seconds: float
    stages: dict[str, StageStat]
    cache: CacheStats | None
    workers: int
    lint_errors: int = 0
    lint_warnings: int = 0
    lint_infos: int = 0

    @property
    def mean_translation_ms(self) -> float:
        if not self.translated:
            return 0.0
        return self.busy_seconds / self.translated * 1000

    @property
    def batch_throughput_qps(self) -> float:
        """Questions/sec over the wall time spent in batch calls."""
        if not self.batch_seconds:
            return 0.0
        return self.batch_questions / self.batch_seconds

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate if self.cache else 0.0


@dataclass
class BatchItem:
    """One question's outcome within a batch (in request order)."""

    text: str
    result: TranslationResult | None = None
    error: ReproError | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def query_text(self) -> str | None:
        return self.result.query_text if self.result else None


@dataclass
class _Counters:
    requests: int = 0
    translated: int = 0
    served_from_cache: int = 0
    errors: int = 0
    batches: int = 0
    batch_questions: int = 0
    batch_seconds: float = 0.0
    busy_seconds: float = 0.0
    stage_totals: dict[str, float] = field(default_factory=dict)
    stage_counts: dict[str, int] = field(default_factory=dict)
    lint_errors: int = 0
    lint_warnings: int = 0
    lint_infos: int = 0


class TranslationService:
    """Concurrent, cached front-end to one shared translator.

    Args:
        nl2cm: the shared translator; a default one is built if omitted.
        workers: default fan-out width of :meth:`translate_batch`.
        cache: a :class:`TranslationCache`, a capacity for a fresh one,
            or None to disable caching entirely.
        interaction: default answer provider for requests that do not
            carry their own; falls back to the translator's provider.
    """

    def __init__(
        self,
        nl2cm: NL2CM | None = None,
        *,
        workers: int = 4,
        cache: TranslationCache | int | None = 256,
        interaction: InteractionProvider | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.nl2cm = nl2cm or NL2CM()
        self.workers = workers
        if isinstance(cache, int):
            cache = TranslationCache(capacity=cache)
        self.cache = cache
        self.interaction = interaction
        self._lock = threading.Lock()
        self._counters = _Counters()

    # -- single-question path -------------------------------------------------------

    def translate(
        self,
        text: str,
        interaction: InteractionProvider | None = None,
    ) -> TranslationResult:
        """Translate one question, going through the cache when safe.

        Raises exactly what ``NL2CM.translate`` raises; errors are
        counted but never cached (a rephrasing tip costs nothing to
        recompute and should not occupy a slot).
        """
        provider = self._provider(interaction)
        fingerprint = self._fingerprint(provider)
        if self.cache is not None and fingerprint is not None:
            cached = self.cache.get(text, fingerprint)
            if cached is not None:
                with self._lock:
                    self._counters.requests += 1
                    self._counters.served_from_cache += 1
                return cached
        return self._translate_fresh(text, provider, fingerprint)

    def _translate_fresh(
        self,
        text: str,
        provider: InteractionProvider,
        fingerprint: str | None,
    ) -> TranslationResult:
        start = time.perf_counter()
        try:
            result = self.nl2cm.translate(text, provider)
        except QueryLintError as err:
            with self._lock:
                c = self._counters
                c.requests += 1
                c.errors += 1
                self._count_lint(c, err.report)
            raise
        except ReproError:
            with self._lock:
                self._counters.requests += 1
                self._counters.errors += 1
            raise
        elapsed = time.perf_counter() - start
        with self._lock:
            c = self._counters
            c.requests += 1
            c.translated += 1
            c.busy_seconds += elapsed
            for stage, seconds in result.trace.timings().items():
                c.stage_totals[stage] = (
                    c.stage_totals.get(stage, 0.0) + seconds
                )
                c.stage_counts[stage] = c.stage_counts.get(stage, 0) + 1
            if result.lint is not None:
                self._count_lint(c, result.lint)
        if (
            self.cache is not None
            and fingerprint is not None
            and not (result.lint is not None and result.lint.has_errors)
        ):
            # A result with ERROR-level diagnostics must never be
            # served from cache: in lint="warn" mode it is returned to
            # this caller, but recomputing keeps the red flag visible
            # in the stats instead of amortizing it away.
            self.cache.put(text, fingerprint, result)
        return result

    @staticmethod
    def _count_lint(c: _Counters, report) -> None:
        c.lint_errors += len(report.errors)
        c.lint_warnings += len(report.warnings)
        c.lint_infos += len(report.infos)

    # -- batch path -------------------------------------------------------------------

    def translate_batch(
        self,
        texts: Sequence[str],
        interaction: InteractionProvider | None = None,
        workers: int | None = None,
    ) -> list[BatchItem]:
        """Translate many questions concurrently; results in order.

        Identical questions (after normalization) are translated once
        per batch — single-flight — and every duplicate shares the
        leader's result.  Translation errors are captured per item
        rather than raised, so one unsupported question does not sink
        the batch.
        """
        texts = list(texts)
        items = [BatchItem(text=t) for t in texts]
        if not texts:
            return items
        provider = self._provider(interaction)
        fingerprint = self._fingerprint(provider)
        width = workers if workers is not None else self.workers
        if width < 1:
            raise ValueError("workers must be >= 1")

        # Single-flight groups: all indexes that share a cache key run
        # once.  Without a usable fingerprint every question runs alone.
        groups: dict[object, list[int]] = {}
        if fingerprint is not None:
            for i, t in enumerate(texts):
                groups.setdefault(TranslationCache.normalize(t), []).append(i)
        else:
            groups = {i: [i] for i in range(len(texts))}

        start = time.perf_counter()

        def run_group(indices: list[int]) -> None:
            leader = indices[0]
            try:
                result = self.translate(texts[leader], provider)
                error = None
            except ReproError as exc:
                result, error = None, exc
            items[leader].result = result
            items[leader].error = error
            for i in indices[1:]:
                items[i].result = result
                items[i].error = error
                items[i].cached = error is None
                with self._lock:
                    self._counters.requests += 1
                    if error is None:
                        self._counters.served_from_cache += 1
                    else:
                        self._counters.errors += 1

        group_lists = list(groups.values())
        if width == 1 or len(group_lists) == 1:
            for indices in group_lists:
                run_group(indices)
        else:
            with ThreadPoolExecutor(
                max_workers=min(width, len(group_lists))
            ) as pool:
                for future in [
                    pool.submit(run_group, g) for g in group_lists
                ]:
                    future.result()

        elapsed = time.perf_counter() - start
        with self._lock:
            self._counters.batches += 1
            self._counters.batch_questions += len(texts)
            self._counters.batch_seconds += elapsed
        return items

    # -- warming ------------------------------------------------------------------------

    def warm(
        self,
        texts: Iterable[str],
        interaction: InteractionProvider | None = None,
        workers: int | None = None,
    ) -> int:
        """Pre-translate ``texts`` into the cache; returns the number
        cached.  Unsupported questions are skipped, not raised: warming
        a corpus that contains a few rejects is routine."""
        if self.cache is None:
            raise ReproError("cannot warm a service with caching disabled")
        provider = self._provider(interaction)
        fingerprint = self._fingerprint(provider)
        if fingerprint is None:
            raise ReproError(
                "cannot warm the cache through a provider without a "
                "cache fingerprint (scripted/console providers are "
                "stateful)"
            )
        items = self.translate_batch(
            list(texts), interaction=provider, workers=workers
        )
        return sum(1 for item in items if item.ok)

    # -- stats ---------------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        cache_stats = self.cache.stats() if self.cache is not None else None
        with self._lock:
            c = self._counters
            stages = {
                stage: StageStat(
                    total_seconds=c.stage_totals[stage],
                    count=c.stage_counts[stage],
                )
                for stage in c.stage_totals
            }
            return ServiceStats(
                requests=c.requests,
                translated=c.translated,
                served_from_cache=c.served_from_cache,
                errors=c.errors,
                batches=c.batches,
                batch_questions=c.batch_questions,
                batch_seconds=c.batch_seconds,
                busy_seconds=c.busy_seconds,
                stages=stages,
                cache=cache_stats,
                workers=self.workers,
                lint_errors=c.lint_errors,
                lint_warnings=c.lint_warnings,
                lint_infos=c.lint_infos,
            )

    def reset_stats(self) -> None:
        """Zero the counters (cache contents are kept)."""
        with self._lock:
            self._counters = _Counters()
        if self.cache is not None:
            self.cache.reset_counters()

    # -- internals -----------------------------------------------------------------------

    def _provider(
        self, interaction: InteractionProvider | None
    ) -> InteractionProvider:
        return interaction or self.interaction or self.nl2cm.interaction

    @staticmethod
    def _fingerprint(provider: InteractionProvider) -> str | None:
        """The provider's cache identity, or None if uncacheable."""
        fp = getattr(provider, "cache_fingerprint", None)
        if callable(fp):
            fp = fp()
        return fp if isinstance(fp, str) else None
