"""Bounded, thread-safe LRU cache for translation results.

Serving workloads repeat themselves: the same questions come back from
different users (and the same user retries phrasings), so the single
biggest lever for throughput is never running the Figure-2 pipeline
twice for the same input.  The cache key combines the *normalized*
question text (whitespace runs collapsed — case is preserved, because
capitalization drives proper-noun detection) with the interaction
provider's *fingerprint*: two requests only share a result when the
provider would have answered every clarification dialog identically.

The cache never mutates cached results; callers share the returned
:class:`~repro.core.pipeline.TranslationResult` objects read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["CacheStats", "TranslationCache"]

#: A cache key: (normalized question text, interaction fingerprint).
CacheKey = tuple[str, str]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot; hit rate is hits / (hits + misses)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TranslationCache:
    """A bounded LRU map from (question, fingerprint) to results.

    Args:
        capacity: maximum number of cached translations; the least
            recently *used* (looked up or inserted) entry is evicted
            when a new entry would exceed it.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def normalize(text: str) -> str:
        """Collapse whitespace runs; keep case (it carries signal)."""
        return " ".join(text.split())

    @classmethod
    def make_key(cls, text: str, fingerprint: str) -> CacheKey:
        return (cls.normalize(text), fingerprint)

    # -- lookup / insert ----------------------------------------------------------

    def get(self, text: str, fingerprint: str) -> Any | None:
        """The cached result, or None; counts a hit or a miss."""
        key = self.make_key(text, fingerprint)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, text: str, fingerprint: str, result: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU if full."""
        key = self.make_key(text, fingerprint)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = result
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = result

    def warm(
        self, entries: Iterable[tuple[str, str, Any]]
    ) -> int:
        """Pre-load (text, fingerprint, result) triples.

        Warming does not touch the hit/miss counters — it is not
        traffic.  Returns the number of entries inserted.
        """
        n = 0
        for text, fingerprint, result in entries:
            self.put(text, fingerprint, result)
            n += 1
        return n

    # -- introspection ------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters; entries are kept."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries
