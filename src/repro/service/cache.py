"""Bounded, thread-safe LRU cache for translation results.

Serving workloads repeat themselves: the same questions come back from
different users (and the same user retries phrasings), so the single
biggest lever for throughput is never running the Figure-2 pipeline
twice for the same input.  The cache key combines the *normalized*
question text (whitespace runs collapsed — case is preserved, because
capitalization drives proper-noun detection) with the interaction
provider's *fingerprint*: two requests only share a result when the
provider would have answered every clarification dialog identically.

The cache never mutates cached results; callers share the returned
:class:`~repro.core.pipeline.TranslationResult` objects read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "TranslationCache"]

#: A cache key: (normalized question text, interaction fingerprint).
CacheKey = tuple[str, str]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot; hit rate is hits / (hits + misses).

    ``insertions`` counts entries actually added (refreshing an
    existing key is not an insertion) — it is what
    :meth:`~repro.service.service.TranslationService.warm` reports.
    ``warmed`` counts entries replayed by :meth:`TranslationCache.seed`
    (the warm-restart protocol); they are deliberately **not**
    insertions, so ``warm()`` reporting and insertion rates measure
    real traffic only.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    insertions: int = 0
    warmed: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TranslationCache:
    """A bounded LRU map from (question, fingerprint) to results.

    Args:
        capacity: maximum number of cached translations; the least
            recently *used* (looked up or inserted) entry is evicted
            when a new entry would exceed it.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._insertions = 0
        self._warmed = 0
        self._m_lookups = None
        self._m_evictions = None
        self._m_insertions = None
        self._m_warmed = None

    # -- metrics ----------------------------------------------------------------

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror this cache's counters into ``registry``.

        Event counters (lookups by result, evictions, insertions) are
        incremented as they happen; size and capacity are lock-free
        callback gauges, so a scrape never touches the cache lock.
        Registration is get-or-create, so binding several caches to one
        registry aggregates them.  Lock ordering: the cache lock may be
        held while a counter takes the registry lock, never the
        reverse (the gauge callbacks below are lock-free by design).
        """
        self._m_lookups = registry.counter(
            "nl2cm_cache_lookups_total",
            "Translation cache lookups by result (hit/miss).",
            labelnames=("result",),
        )
        self._m_evictions = registry.counter(
            "nl2cm_cache_evictions_total",
            "Translation cache LRU evictions.",
        )
        self._m_insertions = registry.counter(
            "nl2cm_cache_insertions_total",
            "Translation cache entries actually inserted "
            "(refreshes excluded).",
        )
        self._m_warmed = registry.counter(
            "nl2cm_cache_warmed_total",
            "Entries replayed into the cache by the warm-restart "
            "protocol (seed); counted separately from insertions so "
            "traffic rates stay honest.",
        )
        registry.gauge(
            "nl2cm_cache_size",
            "Translations currently cached.",
            callback=lambda: float(len(self._entries)),
        )
        registry.gauge(
            "nl2cm_cache_capacity",
            "Translation cache capacity.",
            callback=lambda: float(self.capacity),
        )

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def normalize(text: str) -> str:
        """Collapse whitespace runs; keep case (it carries signal)."""
        return " ".join(text.split())

    @classmethod
    def make_key(cls, text: str, fingerprint: str) -> CacheKey:
        return (cls.normalize(text), fingerprint)

    # -- lookup / insert ----------------------------------------------------------

    def get(self, text: str, fingerprint: str) -> Any | None:
        """The cached result, or None; counts a hit or a miss."""
        key = self.make_key(text, fingerprint)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                if self._m_lookups is not None:
                    self._m_lookups.labels(result="miss").inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            if self._m_lookups is not None:
                self._m_lookups.labels(result="hit").inc()
            return result

    def put(self, text: str, fingerprint: str, result: Any) -> bool:
        """Insert (or refresh) an entry, evicting the LRU if full.

        Returns True when a new entry was **inserted**, False when an
        existing key was merely refreshed — the distinction
        :meth:`warm` and the ``insertions`` counter are built on.
        """
        key = self.make_key(text, fingerprint)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = result
                return False
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
            self._entries[key] = result
            self._insertions += 1
            if self._m_insertions is not None:
                self._m_insertions.inc()
            return True

    def warm(
        self, entries: Iterable[tuple[str, str, Any]]
    ) -> int:
        """Pre-load (text, fingerprint, result) triples.

        Warming does not touch the hit/miss counters — it is not
        traffic.  Returns the number of entries actually inserted
        (refreshed duplicates are not counted).
        """
        n = 0
        for text, fingerprint, result in entries:
            if self.put(text, fingerprint, result):
                n += 1
        return n

    # -- warm restarts ------------------------------------------------------------

    def export_hot(self, n: int) -> list[tuple[str, str, str]]:
        """Up to ``n`` hottest entries as (text, fingerprint, query text).

        Ordered hottest-first (most recently used first), which is the
        order a seeding peer should replay them in so that, if its cache
        is smaller, the hottest survive.  Entries whose cached value has
        no serialized query text (no ``query_text`` attribute, or an
        empty one) are skipped — they cannot be rebuilt on the far side.
        Exporting is introspection: it does not touch LRU order or any
        counter.
        """
        if n <= 0:
            return []
        out: list[tuple[str, str, str]] = []
        with self._lock:
            for (text, fingerprint), result in reversed(
                self._entries.items()
            ):
                query_text = getattr(result, "query_text", None)
                if not query_text:
                    continue
                out.append((text, fingerprint, query_text))
                if len(out) >= n:
                    break
        return out

    def seed(
        self, entries: Iterable[tuple[str, str, Any]]
    ) -> tuple[int, int]:
        """Replay (text, fingerprint, result) triples from a peer.

        The warm-restart counterpart of :meth:`warm`, with stricter
        accounting and the same refusal rules the live cache path
        applies: degraded results and results whose lint report carries
        errors are **refused** (they were never cacheable, so a peer
        offering one is handing us stale or suspect data).  Seeded
        entries are counted on their own ``warmed`` counter — never as
        hits, misses or insertions — so hit rates and ``warm()``
        reporting keep measuring real traffic.  Existing keys are left
        untouched (neither warmed nor refused: the live entry wins).

        Returns ``(warmed, refused)``.
        """
        warmed = 0
        refused = 0
        for text, fingerprint, result in entries:
            trace = getattr(result, "trace", None)
            if trace is not None and getattr(trace, "degraded", False):
                refused += 1
                continue
            lint = getattr(result, "lint", None)
            if lint is not None and getattr(lint, "has_errors", False):
                refused += 1
                continue
            key = self.make_key(text, fingerprint)
            with self._lock:
                if key in self._entries:
                    continue
                while len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
                    if self._m_evictions is not None:
                        self._m_evictions.inc()
                self._entries[key] = result
                self._warmed += 1
                if self._m_warmed is not None:
                    self._m_warmed.inc()
            warmed += 1
        return warmed, refused

    # -- introspection ------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                insertions=self._insertions,
                warmed=self._warmed,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0
            self._evictions = self._insertions = self._warmed = 0

    def reset_counters(self) -> None:
        """Zero hit/miss/eviction/insertion/warmed counters; entries kept.

        The bound registry's mirrored counters are *not* reset here —
        the service's ``reset_stats`` resets the whole registry, which
        covers them.
        """
        with self._lock:
            self._hits = self._misses = 0
            self._evictions = self._insertions = self._warmed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries
