"""The worker tier: routing, admission control, crash recovery, stats.

:class:`ShardManager` owns N worker processes (or threads — same
protocol, used by tests and available for debugging), a consistent-hash
:class:`~repro.serving.hashring.HashRing` over the normalized-question
keyspace, and one framed channel per worker.  The pieces:

* **Routing** — a question's shard is
  ``ring.lookup(TranslationCache.normalize(text))``: identical
  questions (modulo whitespace) always land on the same shard, which
  is what keeps that shard's translation LRU and plan cache hot.
* **Dispatch** — one channel per worker, serialized by a per-handle
  lock (the worker is single-threaded anyway); requests carry
  monotonically increasing correlation ids, so a reply that arrives
  after its request timed out is recognized as stale and discarded
  instead of being delivered to the wrong caller.
* **Admission control** — a bounded pending gate per shard: when
  ``max_pending`` requests are already queued or in flight for a
  shard, new ones are *shed* with :class:`AdmissionRejected` (HTTP
  429 upstairs) instead of growing an unbounded queue.  A per-shard
  :class:`~repro.resilience.CircuitBreaker` over dispatch failures
  sheds proactively while a shard is misbehaving.
* **Crash recovery** — a dead channel triggers one in-place restart
  (same shard id, so the ring needs no surgery and the keyspace
  re-routes to the replacement automatically) and one retry of the
  in-flight request; a second failure surfaces as
  :class:`WorkerCrashedError`.
* **Warm restarts** — before a replacement worker rejoins the ring,
  the manager replays the shard's hottest translations into its cache
  (``cache_seed``): first from a manager-side *shadow index* of
  recently served (question, query) pairs, topped up by pulling
  surviving siblings' hottest entries (``cache_export``) — so a crash
  costs restart latency, not a cold cache.  Warm-up is bounded
  (``warmup_keys`` entries, one short deadline), best-effort (a
  failure leaves the worker cold, never down), and happens while only
  the dead shard's dispatch lock is held — admission control and the
  other shards are never blocked by it.
* **Stats** — :meth:`stats` probes every shard and returns a
  :class:`~repro.serving.stats.ServingStats` whose counter identity
  ``requests == translated + served_from_cache + deduplicated +
  errors + shed`` holds in every snapshot.  Each shard's view is the
  sum of a **carry-forward baseline** (counters of its dead
  predecessors, folded in at restart) and the live worker's last
  probed snapshot — so the merged counters are monotone non-decreasing
  across crashes, as Prometheus counter semantics require.

Everything here is stdlib: ``multiprocessing`` for the processes, a
loopback TCP listener the workers dial back into (spawn-safe on every
platform: only picklable primitives cross the process boundary), and
the length-prefixed JSON frames of :mod:`repro.serving.frames`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import multiprocessing
import socket

from repro.errors import (
    AdmissionRejected,
    ChannelClosedError,
    FrameProtocolError,
    ReproError,
    ServingError,
    ShardTimeoutError,
    WorkerCrashedError,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker
from repro.serving.config import WorkerSpec
from repro.serving.frames import FrameChannel
from repro.serving.hashring import HashRing
from repro.serving.stats import (
    ServingStats,
    ShardSnapshot,
    carry_baseline,
    empty_service_stats,
    merge_service_stats,
    service_stats_from_dict,
)
from repro.serving.worker import _process_entry, worker_main
from repro.service.cache import TranslationCache

__all__ = ["RemoteOutcome", "ShardManager"]

#: Start methods the manager accepts.  "thread" runs ``worker_main`` on
#: daemon threads in-process — protocol-identical, no process isolation;
#: it exists for tests and debugging, not for CPU scaling.
START_METHODS = ("spawn", "fork", "forkserver", "thread")


@dataclass(frozen=True)
class RemoteOutcome:
    """One question's result as served by the worker tier."""

    text: str
    shard: int
    ok: bool
    query: str | None = None
    degraded: bool = False
    cached: bool = False
    error_type: str | None = None
    error_message: str | None = None
    tips: tuple[str, ...] = ()

    @classmethod
    def from_payload(
        cls, text: str, shard: int, payload: dict
    ) -> "RemoteOutcome":
        if payload.get("ok"):
            return cls(
                text=text,
                shard=shard,
                ok=True,
                query=payload.get("query"),
                degraded=bool(payload.get("degraded")),
                cached=bool(payload.get("cached")),
            )
        error = payload.get("error") or {}
        return cls(
            text=text,
            shard=shard,
            ok=False,
            error_type=error.get("type") or "UnknownError",
            error_message=error.get("message") or "",
            tips=tuple(error.get("tips") or ()),
        )

    @classmethod
    def from_exception(
        cls, text: str, shard: int, exc: BaseException
    ) -> "RemoteOutcome":
        return cls(
            text=text,
            shard=shard,
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc),
        )

    @property
    def shed(self) -> bool:
        return self.error_type == "AdmissionRejected"

    def to_dict(self) -> dict:
        out: dict = {"question": self.text, "shard": self.shard, "ok": self.ok}
        if self.ok:
            out.update(
                query=self.query, degraded=self.degraded, cached=self.cached
            )
        else:
            out["error"] = {
                "type": self.error_type, "message": self.error_message,
            }
            if self.tips:
                out["error"]["tips"] = list(self.tips)
        return out


class _AdmissionGate:
    """A bounded pending counter; full means shed, never queue."""

    def __init__(self, capacity: int, gauge=None):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._depth = 0
        self._gauge = gauge

    def try_enter(self) -> bool:
        with self._lock:
            if self._depth >= self.capacity:
                return False
            self._depth += 1
            if self._gauge is not None:
                self._gauge.set(float(self._depth))
            return True

    def exit(self) -> None:
        with self._lock:
            self._depth -= 1
            if self._gauge is not None:
                self._gauge.set(float(self._depth))

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth


class _ShadowIndex:
    """The manager's bounded memory of recently served translations.

    A small LRU of ``normalized question -> query text`` fed by every
    successful, non-degraded outcome that passes through the manager.
    It exists for exactly one moment: when a worker dies, its
    replacement is seeded from here (topped up from sibling shards)
    before rejoining the ring.  Guarded by its own lock — recording on
    the hot path costs one dict update and never touches a handle lock
    or the manager lock.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, str] = OrderedDict()

    def record(self, text: str, query: str) -> None:
        key = TranslationCache.normalize(text)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = query
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[key] = query

    def hottest(
        self, n: int, owned: Callable[[str], bool]
    ) -> list[tuple[str, str]]:
        """Up to ``n`` hottest (text, query) pairs passing ``owned``."""
        if n <= 0:
            return []
        out: list[tuple[str, str]] = []
        with self._lock:
            for key in reversed(self._entries):
                if owned(key):
                    out.append((key, self._entries[key]))
                    if len(out) >= n:
                        break
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _WorkerHandle:
    """One shard's runner, channel and correlation-id counter.

    Mutable fields are only touched while holding :attr:`lock` (the
    same lock that serializes the channel), except ``restarts`` which
    is additionally read lock-free by stats snapshots — a torn read of
    an int is impossible in CPython and the value is advisory.
    """

    def __init__(self, shard: int):
        self.shard = shard
        self.lock = threading.Lock()
        self.channel: FrameChannel | None = None
        self.process = None  # multiprocessing.Process | threading.Thread
        self.pid: int | None = None
        self.fingerprint: str | None = None
        self.restarts = 0
        self._request_id = 0

    def next_id(self) -> int:
        """The next correlation id; the caller holds :attr:`lock`."""
        self._request_id += 1
        return self._request_id

    def alive(self) -> bool:
        runner = self.process
        return runner is not None and runner.is_alive()


class ShardManager:
    """N worker processes behind consistent-hash routing + admission.

    Args:
        shards: worker count; each owns ``1/shards`` of the keyspace.
        spec: the :class:`WorkerSpec` every worker builds from.
        start_method: ``"spawn"`` (default, portable), ``"fork"`` /
            ``"forkserver"`` (POSIX), or ``"thread"`` (in-process
            workers for tests/debugging — no CPU scaling).
        max_pending: bounded pending-queue depth per shard; beyond it
            requests are shed with :class:`AdmissionRejected`.
        request_timeout: default per-request deadline in seconds.
        connect_timeout: how long to wait for a worker's ``hello``.
        retry_after: the shed response's Retry-After hint, seconds.
        ring_replicas: virtual nodes per shard on the hash ring.
        breaker_threshold: consecutive dispatch failures that open a
            shard's circuit breaker (0 disables breakers).
        breaker_recovery_ms: open-circuit cool-down before probing.
        warmup_keys: how many hot cache entries to replay into a
            restarted worker before it rejoins the ring (0 disables
            warm restarts *and* the shadow-index bookkeeping feeding
            them).  Warm-up is best-effort and bounded — a failed or
            slow seed leaves the replacement cold, never down.
        registry: metrics registry for the ``serving_*`` series; a
            private one is built if omitted.  The HTTP front-end
            shares it so ``/metrics`` covers both layers.
    """

    def __init__(
        self,
        shards: int = 2,
        spec: WorkerSpec | None = None,
        *,
        start_method: str = "spawn",
        max_pending: int = 64,
        request_timeout: float = 30.0,
        connect_timeout: float = 120.0,
        retry_after: float = 1.0,
        ring_replicas: int = 128,
        breaker_threshold: int = 8,
        breaker_recovery_ms: float = 2000.0,
        warmup_keys: int = 64,
        registry: MetricsRegistry | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS}, "
                f"got {start_method!r}"
            )
        self.spec = spec or WorkerSpec()
        self.start_method = start_method
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.connect_timeout = connect_timeout
        self.retry_after = retry_after
        self.registry = registry if registry is not None else MetricsRegistry()
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method != "thread" else None
        )
        self._token = os.urandom(16).hex()
        self._ring = HashRing(range(shards), replicas=ring_replicas)
        self._handles = [_WorkerHandle(i) for i in range(shards)]
        self._breakers: list[CircuitBreaker | None] = [
            CircuitBreaker(
                failure_threshold=breaker_threshold,
                recovery_seconds=breaker_recovery_ms / 1000.0,
                name=f"shard-{i}",
            ) if breaker_threshold > 0 else None
            for i in range(shards)
        ]
        self._lock = threading.Lock()          # manager-level counters
        self._accept_lock = threading.Lock()   # the shared listener
        self._close_lock = threading.Lock()
        self._closed = False
        self._pending_hellos: dict[
            int, tuple[FrameChannel, int | None, str | None]
        ] = {}
        self.warmup_keys = max(0, warmup_keys)
        self._shadow = _ShadowIndex(
            capacity=max(256, self.warmup_keys * shards * 4)
        ) if self.warmup_keys else None
        # Per-shard carry-forward stats: the summed counters of a
        # shard's dead predecessors (gauges zeroed), plus the live
        # worker's last successfully probed snapshot.  Both are only
        # written under self._lock; _restart_locked folds last_seen
        # into carry atomically, so carry[i] + last_seen[i] is monotone
        # non-decreasing per counter field across restarts.
        self._carry = [empty_service_stats() for _ in range(shards)]
        self._last_seen = [empty_service_stats() for _ in range(shards)]
        self._build_metrics(shards)
        self._gates = [
            _AdmissionGate(
                max_pending, self._m_pending.labels(shard=str(i))
            )
            for i in range(shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard-dispatch"
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(shards + 4)
        try:
            for handle in self._handles:
                self._launch(handle)
            for handle in self._handles:
                channel, pid, fingerprint = self._accept_hello(
                    handle.shard
                )
                handle.channel = channel
                handle.pid = pid
                handle.fingerprint = fingerprint
        except BaseException:
            self.close(timeout=1.0)
            raise

    # -- metrics ---------------------------------------------------------------

    def _build_metrics(self, shards: int) -> None:
        r = self.registry
        shed = r.counter(
            "serving_shed_total",
            "Requests rejected by admission control instead of queued, "
            "by reason (queue_full / breaker_open).  Every shed request "
            "is an HTTP 429 with Retry-After upstairs.",
            labelnames=("reason",),
        )
        self._c_shed_queue = shed.labels(reason="queue_full")
        self._c_shed_breaker = shed.labels(reason="breaker_open")
        self._c_restarts = r.counter(
            "serving_worker_restarts_total",
            "Worker processes restarted in place after a crash "
            "(the replacement inherits the shard's keyspace).",
        ).labels()
        self._c_dispatch_errors = r.counter(
            "serving_dispatch_errors_total",
            "Requests that died at the front-end with no worker "
            "outcome: the worker crashed and the one restart-retry "
            "failed, or the manager was closing.",
        ).labels()
        self._c_deadline = r.counter(
            "serving_deadline_expired_total",
            "Requests whose front-end deadline expired before the "
            "worker answered (the worker may still complete them; "
            "stale replies are drained by correlation id).",
        ).labels()
        warmup = r.counter(
            "serving_cache_warmup_total",
            "Warm-restart cache replays by outcome: ok (the "
            "replacement worker was seeded), empty (nothing to "
            "replay), failed (the seed attempt errored; the worker "
            "serves cold).",
            labelnames=("outcome",),
        )
        self._c_warmup_ok = warmup.labels(outcome="ok")
        self._c_warmup_empty = warmup.labels(outcome="empty")
        self._c_warmup_failed = warmup.labels(outcome="failed")
        self._c_warmup_entries = r.counter(
            "serving_cache_warmup_entries_total",
            "Cache entries replayed into replacement workers by the "
            "warm-restart protocol.",
        ).labels()
        self._m_pending = r.gauge(
            "serving_pending",
            "Requests queued or in flight per shard; admission control "
            "sheds above max_pending.",
            labelnames=("shard",),
        )
        r.gauge(
            "serving_shards",
            "Configured worker-shard count.",
            callback=lambda: float(shards),
        )
        r.gauge(
            "serving_workers_alive",
            "Worker runners currently alive.",
            callback=lambda: float(
                sum(1 for h in self._handles if h.alive())
            ),
        )

    # -- worker lifecycle ------------------------------------------------------

    def _launch(self, handle: _WorkerHandle) -> None:
        host, port = self._listener.getsockname()
        args = (host, port, self._token, handle.shard, self.spec)
        if self.start_method == "thread":
            runner = threading.Thread(
                target=worker_main,
                args=args,
                name=f"shard-{handle.shard}-worker",
                daemon=True,
            )
        else:
            runner = self._ctx.Process(
                target=_process_entry,
                args=args,
                name=f"shard-{handle.shard}-worker",
                daemon=True,
            )
        runner.start()
        handle.process = runner

    def _accept_hello(
        self, expected_shard: int
    ) -> tuple[FrameChannel, int | None, str | None]:
        """Wait for ``expected_shard``'s ready signal on the listener.

        Concurrent restarts share one listener, so a hello for a
        *different* shard is parked and handed to its own waiter
        instead of being dropped.
        """
        deadline = time.monotonic() + self.connect_timeout
        with self._accept_lock:
            while True:
                parked = self._pending_hellos.pop(expected_shard, None)
                if parked is not None:
                    return parked
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServingError(
                        f"shard {expected_shard} did not report ready "
                        f"within {self.connect_timeout:.0f}s"
                    )
                self._listener.settimeout(remaining)
                try:
                    conn, _ = self._listener.accept()
                except (socket.timeout, TimeoutError):
                    continue
                except OSError as err:
                    raise ServingError(
                        f"listener failed while waiting for shard "
                        f"{expected_shard}: {err}"
                    ) from err
                channel = FrameChannel(conn)
                try:
                    hello = channel.recv(timeout=remaining)
                except (ReproError, TimeoutError, OSError):
                    channel.close()
                    continue
                if (
                    hello.get("op") != "hello"
                    or hello.get("token") != self._token
                ):
                    channel.close()
                    continue
                shard = int(hello.get("shard", -1))
                pid = hello.get("pid")
                fingerprint = hello.get("fingerprint")
                if not isinstance(fingerprint, str):
                    fingerprint = None
                if shard == expected_shard:
                    return channel, pid, fingerprint
                self._pending_hellos[shard] = (channel, pid, fingerprint)

    def _restart_locked(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker in place; the caller holds its lock.

        Two recovery duties beyond relaunching: the dead worker's last
        probed counters are folded into the shard's carry-forward
        baseline (so merged stats never go backwards), and the
        replacement's cache is seeded with the shard's hottest keys
        before any request is dispatched to it (so a crash costs
        latency, not locality).
        """
        if handle.channel is not None:
            handle.channel.close()
            handle.channel = None
        runner = handle.process
        if runner is not None and not isinstance(runner, threading.Thread):
            if runner.is_alive():
                runner.terminate()
                runner.join(5.0)
                if runner.is_alive():  # pragma: no cover - stuck worker
                    runner.kill()
                    runner.join(5.0)
        handle.restarts += 1
        with self._lock:
            self._c_restarts.inc()
            # Fold the dead worker's history into the baseline.  The
            # caller holds handle.lock, so no stats probe of this shard
            # can interleave between the fold and the reset — the sum
            # carry + last_seen never moves backwards.
            self._carry[handle.shard] = merge_service_stats([
                self._carry[handle.shard],
                carry_baseline(self._last_seen[handle.shard]),
            ])
            self._last_seen[handle.shard] = empty_service_stats()
        self._launch(handle)
        channel, pid, fingerprint = self._accept_hello(handle.shard)
        handle.channel = channel
        handle.pid = pid
        handle.fingerprint = fingerprint
        self._warm_restart_locked(handle)

    #: Budget for one warm-up exchange (a sibling export pull or the
    #: replacement seed).  Short on purpose: warm-up rides inside a
    #: restart that a live request is waiting on.
    _WARMUP_TIMEOUT = 5.0

    def _warm_restart_locked(self, handle: _WorkerHandle) -> None:
        """Seed a freshly restarted worker's cache; never raises.

        The caller holds ``handle.lock`` (and nothing else).  Entries
        come from the shadow index first — the manager's own memory of
        what this keyspace slice served — topped up from surviving
        siblings' exports.  Sibling pulls are strictly best-effort:
        ``lock.acquire(blocking=False)``, so a busy or restarting
        sibling is skipped rather than waited on (two simultaneous
        restarts can never deadlock pulling from each other).  Any
        failure downgrades to a cold start; the worker is already
        accepting frames either way.
        """
        if self.warmup_keys <= 0 or self._shadow is None:
            return
        fingerprint = handle.fingerprint
        try:
            if fingerprint:
                entries = self._gather_warmup_entries(handle, fingerprint)
            else:
                # The worker runs cache-less or with an uncacheable
                # provider — there is nothing a seed could do.
                entries = []
            if not entries:
                with self._lock:
                    self._c_warmup_empty.inc()
                return
            request_id = handle.next_id()
            message = {
                "op": "cache_seed", "entries": entries, "id": request_id,
            }
            handle.channel.send(message)
            reply = self._await_reply(
                handle, request_id,
                time.monotonic() + self._WARMUP_TIMEOUT,
            )
            warmed = int(reply.get("warmed", 0)) if reply.get("ok") else 0
            with self._lock:
                if reply.get("ok"):
                    self._c_warmup_ok.inc()
                    if warmed:
                        self._c_warmup_entries.inc(warmed)
                else:
                    self._c_warmup_failed.inc()
        except (ReproError, OSError, TimeoutError):
            # Crucially *not* another restart: the channel may be fine
            # (a slow seed) or freshly broken (next dispatch handles
            # it); either way the replacement serves cold.
            with self._lock:
                self._c_warmup_failed.inc()

    def _gather_warmup_entries(
        self, handle: _WorkerHandle, fingerprint: str
    ) -> list[dict]:
        """The seed payload for one restarted shard, hottest first."""
        def owned(key: str) -> bool:
            return self._ring.lookup(key) == handle.shard

        entries: list[dict] = []
        seen: set[str] = set()
        for text, query in self._shadow.hottest(self.warmup_keys, owned):
            entries.append({
                "text": text, "fingerprint": fingerprint, "query": query,
            })
            seen.add(text)
        if len(entries) >= self.warmup_keys:
            return entries
        for sibling in self._handles:
            if sibling.shard == handle.shard:
                continue
            reply = self._exchange_nowait(
                sibling,
                {"op": "cache_export", "n": self.warmup_keys},
            )
            if reply is None or not reply.get("ok"):
                continue
            for entry in reply.get("entries") or []:
                if not isinstance(entry, dict):
                    continue
                text = entry.get("text")
                if (
                    not isinstance(text, str)
                    or text in seen
                    or not owned(TranslationCache.normalize(text))
                    or entry.get("fingerprint") != fingerprint
                ):
                    continue
                entries.append(entry)
                seen.add(text)
                if len(entries) >= self.warmup_keys:
                    return entries
        return entries

    def _exchange_nowait(
        self, handle: _WorkerHandle, payload: dict
    ) -> dict | None:
        """One best-effort side-channel roundtrip, or None.

        Unlike :meth:`_roundtrip` this never blocks on a busy handle,
        never restarts a dead one, and never raises — it exists for
        warm-up's sibling pulls, which must not amplify one shard's
        crash into cluster-wide lock convoys.
        """
        if not handle.lock.acquire(blocking=False):
            return None
        try:
            if handle.channel is None or not handle.alive():
                return None
            request_id = handle.next_id()
            message = dict(payload)
            message["id"] = request_id
            handle.channel.send(message)
            return self._await_reply(
                handle, request_id,
                time.monotonic() + self._WARMUP_TIMEOUT,
            )
        except (ReproError, OSError, TimeoutError):
            return None
        finally:
            handle.lock.release()

    # -- dispatch --------------------------------------------------------------

    def route(self, text: str) -> int:
        """The shard owning a question's normalized keyspace slice."""
        return self._ring.lookup(TranslationCache.normalize(text))

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServingError("the shard manager is closed")

    def _roundtrip(
        self,
        handle: _WorkerHandle,
        payload: dict,
        timeout: float | None = None,
    ) -> dict:
        """Send one op and await its reply, restarting/retrying once on
        a crashed worker; raises :class:`ShardTimeoutError` on deadline,
        :class:`WorkerCrashedError` when the retry fails too."""
        budget = timeout if timeout is not None else self.request_timeout
        deadline = time.monotonic() + budget
        with handle.lock:
            last_error: BaseException | None = None
            for attempt in (1, 2):
                self._ensure_open()
                try:
                    if not handle.alive() or handle.channel is None:
                        raise ChannelClosedError(
                            f"shard {handle.shard} worker is not running"
                        )
                    request_id = handle.next_id()
                    message = dict(payload)
                    message["id"] = request_id
                    handle.channel.send(message)
                    reply = self._await_reply(handle, request_id, deadline)
                # TimeoutError IS an OSError (since Python 3.10), so
                # the deadline clause must come first or every expiry
                # would masquerade as a crash and trigger a restart.
                except TimeoutError as err:
                    self._note_failure(handle.shard)
                    raise ShardTimeoutError(
                        f"shard {handle.shard} did not answer within "
                        f"{budget:.3f}s",
                        shard=handle.shard,
                        budget=budget,
                    ) from err
                except (
                    ChannelClosedError, FrameProtocolError, OSError
                ) as err:
                    last_error = err
                    self._note_failure(handle.shard)
                    if attempt == 1 and not self._closed:
                        self._restart_locked(handle)
                        continue
                    raise WorkerCrashedError(
                        f"shard {handle.shard} worker died and the "
                        f"restart-retry failed: {err}",
                        shard=handle.shard,
                    ) from err
                self._note_success(handle.shard)
                if payload.get("op") == "stats" and reply.get("ok"):
                    # Refresh the carry-forward bookkeeping while the
                    # handle lock is still held: a restart's fold
                    # cannot interleave, so a pre-crash snapshot can
                    # never land *after* its own epoch was folded (which
                    # would double-count it).
                    try:
                        parsed = service_stats_from_dict(
                            reply.get("stats") or {}
                        )
                    except (TypeError, ValueError, KeyError):
                        parsed = None  # malformed snapshot: keep the old
                    if parsed is not None:
                        with self._lock:
                            self._last_seen[handle.shard] = parsed
                return reply
        raise WorkerCrashedError(  # pragma: no cover - loop always exits
            f"shard {handle.shard} dispatch failed: {last_error}",
            shard=handle.shard,
        )

    def _await_reply(
        self, handle: _WorkerHandle, request_id: int, deadline: float
    ) -> dict:
        """Read frames until ``request_id``'s reply; drain stale ones.

        A stale reply (id below the current request) belongs to an
        earlier call that timed out — the worker finished it anyway.
        It is discarded here; an id *ahead* of the request is a
        protocol violation.
        """
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"deadline expired awaiting reply {request_id}"
                )
            reply = handle.channel.recv(timeout=remaining)
            reply_id = reply.get("id")
            if reply_id == request_id:
                return reply
            if isinstance(reply_id, int) and reply_id < request_id:
                continue
            raise FrameProtocolError(
                f"reply id {reply_id!r} is ahead of request "
                f"{request_id} on shard {handle.shard}"
            )

    def _observe_outcome(self, outcome: RemoteOutcome) -> None:
        """Feed the shadow index; free when warm restarts are off."""
        if (
            self._shadow is not None
            and outcome.ok
            and not outcome.degraded
            and outcome.query
        ):
            self._shadow.record(outcome.text, outcome.query)

    def _note_failure(self, shard: int) -> None:
        breaker = self._breakers[shard]
        if breaker is not None:
            breaker.record_failure()

    def _note_success(self, shard: int) -> None:
        breaker = self._breakers[shard]
        if breaker is not None:
            breaker.record_success()

    def _shed(
        self, shard: int, reason: str, count: int
    ) -> AdmissionRejected:
        with self._lock:
            if reason == "queue_full":
                self._c_shed_queue.inc(count)
            else:
                self._c_shed_breaker.inc(count)
        return AdmissionRejected(
            f"shard {shard} shed {count} request(s): {reason}",
            shard=shard,
            reason=reason,
            retry_after=self.retry_after,
        )

    def _admit(self, shard: int, count: int) -> _AdmissionGate:
        """Pass admission control or raise the shed error."""
        breaker = self._breakers[shard]
        if breaker is not None and not breaker.allow():
            raise self._shed(shard, "breaker_open", count)
        gate = self._gates[shard]
        if not gate.try_enter():
            raise self._shed(shard, "queue_full", count)
        return gate

    # -- public request paths --------------------------------------------------

    def submit(
        self, text: str, timeout: float | None = None
    ) -> RemoteOutcome:
        """Route and serve one question.

        Worker-side translation failures come back as a non-``ok``
        :class:`RemoteOutcome`; serving-layer failures raise
        (:class:`AdmissionRejected`, :class:`ShardTimeoutError`,
        :class:`WorkerCrashedError`, :class:`ServingError`).
        """
        self._ensure_open()
        shard = self.route(text)
        gate = self._admit(shard, 1)
        try:
            reply = self._roundtrip(
                self._handles[shard],
                {"op": "translate", "text": text},
                timeout,
            )
        except ShardTimeoutError:
            with self._lock:
                self._c_deadline.inc()
            raise
        except (WorkerCrashedError, ServingError):
            with self._lock:
                self._c_dispatch_errors.inc()
            raise
        finally:
            gate.exit()
        outcome = RemoteOutcome.from_payload(text, shard, reply)
        self._observe_outcome(outcome)
        return outcome

    def submit_batch(
        self, texts: Sequence[str], timeout: float | None = None
    ) -> list[RemoteOutcome]:
        """Serve many questions, one batch frame per owning shard.

        Shards run their slices in parallel (real parallelism — they
        are processes); results come back in request order.  Nothing
        raises per-item: shed, timeout and crash outcomes are typed
        error entries, so one hot shard cannot sink the batch.
        """
        self._ensure_open()
        texts = [str(t) for t in texts]
        outcomes: list[RemoteOutcome | None] = [None] * len(texts)
        groups: dict[int, list[int]] = {}
        for index, text in enumerate(texts):
            groups.setdefault(self.route(text), []).append(index)

        def run(shard: int, indices: list[int]) -> None:
            group = [texts[i] for i in indices]
            try:
                gate = self._admit(shard, len(indices))
            except AdmissionRejected as exc:
                for i in indices:
                    outcomes[i] = RemoteOutcome.from_exception(
                        texts[i], shard, exc
                    )
                return
            try:
                reply = self._roundtrip(
                    self._handles[shard],
                    {"op": "batch", "texts": group},
                    timeout,
                )
            except ShardTimeoutError as exc:
                with self._lock:
                    self._c_deadline.inc(len(indices))
                for i in indices:
                    outcomes[i] = RemoteOutcome.from_exception(
                        texts[i], shard, exc
                    )
                return
            except (WorkerCrashedError, ServingError) as exc:
                with self._lock:
                    self._c_dispatch_errors.inc(len(indices))
                for i in indices:
                    outcomes[i] = RemoteOutcome.from_exception(
                        texts[i], shard, exc
                    )
                return
            finally:
                gate.exit()
            items = reply.get("items") or []
            for i, payload in zip(indices, items):
                outcome = RemoteOutcome.from_payload(
                    texts[i], shard, payload
                )
                self._observe_outcome(outcome)
                outcomes[i] = outcome
            if len(items) < len(indices):
                # A worker that answers short is a protocol bug; the
                # unanswered tail must still be accounted for.
                with self._lock:
                    self._c_dispatch_errors.inc(len(indices) - len(items))
                for i in indices[len(items):]:
                    outcomes[i] = RemoteOutcome(
                        text=texts[i],
                        shard=shard,
                        ok=False,
                        error_type="FrameProtocolError",
                        error_message="batch reply was short",
                    )

        items = sorted(groups.items())
        if len(items) == 1:
            run(*items[0])
        else:
            futures = [
                self._pool.submit(run, shard, indices)
                for shard, indices in items
            ]
            for future in futures:
                future.result()
        return [outcome for outcome in outcomes if outcome is not None]

    def lint(self, request: dict, timeout: float | None = None) -> dict:
        """Run worker-side static analysis (a ``query`` or ``question``
        payload); routed like a translation so lint traffic shares the
        owning shard's warmed indexes."""
        self._ensure_open()
        text = str(request.get("query") or request.get("question") or "")
        shard = self.route(text)
        gate = self._admit(shard, 1)
        try:
            payload = {"op": "lint"}
            payload.update(request)
            return self._roundtrip(self._handles[shard], payload, timeout)
        finally:
            gate.exit()

    def debug_stall(
        self, shard: int, seconds: float, timeout: float | None = None
    ) -> dict:
        """Occupy one shard for ``seconds`` (needs ``spec.debug_ops``).

        Bypasses admission control on purpose: the stall pins the
        worker while real requests fill (and then overflow) the
        bounded queue — the deterministic saturation the shedding and
        deadline tests are built on.
        """
        return self._roundtrip(
            self._handles[shard],
            {"op": "stall", "seconds": seconds},
            timeout,
        )

    # -- health + stats --------------------------------------------------------

    def ping(self, shard: int, timeout: float = 2.0) -> bool:
        """Probe one worker over the channel; False on any failure."""
        try:
            reply = self._roundtrip(
                self._handles[shard], {"op": "ping"}, timeout
            )
        except ReproError:
            return False
        return bool(reply.get("ok"))

    def health(self, ping: bool = False, timeout: float = 2.0) -> dict:
        """Per-shard liveness (and optional channel probes)."""
        report: dict = {}
        for handle in self._handles:
            entry: dict = {
                "alive": handle.alive(),
                "pid": handle.pid,
                "restarts": handle.restarts,
                "pending": self._gates[handle.shard].depth,
            }
            if ping and entry["alive"]:
                entry["ping"] = (
                    "ok" if self.ping(handle.shard, timeout) else "failed"
                )
            report[handle.shard] = entry
        return report

    def healthy(self) -> bool:
        return not self._closed and all(
            handle.alive() for handle in self._handles
        )

    @property
    def shards(self) -> int:
        return len(self._handles)

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self, timeout: float = 10.0) -> ServingStats:
        """The global view: per-shard snapshots, merged total, and the
        front-end counters; the serving counter identity holds in every
        snapshot because ``requests`` is derived, never sampled.

        Each shard's view is its carry-forward baseline (dead
        predecessors' counters) plus the live worker's last probed
        snapshot — the probe here refreshes the latter (inside
        :meth:`_roundtrip`, under the handle lock, so it can never race
        a restart's fold).  The per-shard sums, and therefore the
        merged total, are **monotone non-decreasing** across worker
        crashes: a restart folds, never zeroes.
        """
        self._ensure_open()
        snapshots = []
        for handle in self._handles:
            try:
                # The reply is consumed inside _roundtrip: a successful
                # stats probe updates _last_seen under the handle lock.
                self._roundtrip(handle, {"op": "stats"}, timeout)
                alive = True
            except ReproError:
                alive = False
            with self._lock:
                shard_stats = merge_service_stats([
                    self._carry[handle.shard],
                    self._last_seen[handle.shard],
                ])
            snapshots.append(ShardSnapshot(
                shard=handle.shard,
                pid=handle.pid,
                alive=alive and handle.alive(),
                pending=self._gates[handle.shard].depth,
                restarts=handle.restarts,
                stats=shard_stats,
            ))
        with self._lock:
            shed_queue = int(self._c_shed_queue.value)
            shed_breaker = int(self._c_shed_breaker.value)
            dispatch_errors = int(self._c_dispatch_errors.value)
            deadline_expired = int(self._c_deadline.value)
            restarts = int(self._c_restarts.value)
            warmups_ok = int(self._c_warmup_ok.value)
            warmups_empty = int(self._c_warmup_empty.value)
            warmups_failed = int(self._c_warmup_failed.value)
            warmup_entries = int(self._c_warmup_entries.value)
        return ServingStats(
            shards=tuple(snapshots),
            total=merge_service_stats([s.stats for s in snapshots]),
            shed=shed_queue + shed_breaker,
            shed_queue_full=shed_queue,
            shed_breaker_open=shed_breaker,
            dispatch_errors=dispatch_errors,
            deadline_expired=deadline_expired,
            restarts=restarts,
            cache_warmups_ok=warmups_ok,
            cache_warmups_empty=warmups_empty,
            cache_warmups_failed=warmups_failed,
            cache_warmup_entries=warmup_entries,
        )

    # -- shutdown --------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Graceful, idempotent shutdown.

        Marks the manager closed (new dispatches raise), sends each
        worker a ``shutdown`` op when its channel can be acquired
        within the drain budget (in-flight requests finish first),
        joins every runner against one shared deadline, and terminates
        then kills process workers that outlive it.  Calling it again
        — or concurrently — is a no-op.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        drain_deadline = time.monotonic() + timeout
        for handle in self._handles:
            budget = max(0.0, drain_deadline - time.monotonic())
            acquired = handle.lock.acquire(timeout=budget)
            try:
                if acquired and handle.channel is not None:
                    try:
                        handle.channel.send({
                            "op": "shutdown", "id": handle.next_id(),
                        })
                    except (ReproError, OSError):
                        pass
            finally:
                if acquired:
                    handle.lock.release()
        for handle in self._handles:
            runner = handle.process
            if runner is not None:
                runner.join(max(0.0, drain_deadline - time.monotonic()))
                if (
                    not isinstance(runner, threading.Thread)
                    and runner.is_alive()
                ):
                    runner.terminate()
                    runner.join(2.0)
                    if runner.is_alive():  # pragma: no cover - stuck
                        runner.kill()
                        runner.join(2.0)
            if handle.channel is not None:
                handle.channel.close()
        for channel, *_ in self._pending_hellos.values():
            channel.close()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
