"""Cross-shard statistics: serialization, merging, and the global view.

Each worker answers a ``stats`` frame with its own
:class:`~repro.service.service.ServiceStats` snapshot (internally
consistent — taken under the worker's service lock).  The shard
manager stitches those into one :class:`ServingStats`: the per-shard
snapshots, the merged total, and the front-end-only counters (shed,
dispatch errors, deadline expiries, restarts) that no worker can know
about.

The serving-level counter identity extends the service one::

    requests == translated + served_from_cache + deduplicated
                + errors + shed

``requests`` and ``errors`` are *derived* (worker sums plus front-end
counters), never sampled independently — so the identity holds in
every snapshot by construction, provided each worker snapshot is
internally consistent and the front-end counters are read once.  A
request that timed out at the front-end but completes in the worker is
counted by the worker (as whatever outcome it reached) and tracked in
``deadline_expired`` separately.  A worker restart loses the dead
process's registry, but the manager keeps per-shard **carry-forward**
baselines (the last snapshot seen before the crash, gauge fields
zeroed via :func:`carry_baseline`) and folds them into every later
snapshot — so the merged counters are monotone non-decreasing across
restarts, as Prometheus counter semantics require; ``restarts``
records how often that happened.

Zero-traffic edges are first-class here: a fresh shard, an all-shed
interval or an empty manager must merge to a snapshot whose derived
rates (``mean_translation_ms``, ``batch_throughput_qps``, hit rates)
are ``0.0``, never a ``ZeroDivisionError`` — the merge tests pin each
of these down.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.service.cache import CacheStats
from repro.service.service import ServiceStats, StageStat

__all__ = [
    "ServingStats",
    "ShardSnapshot",
    "carry_baseline",
    "merge_service_stats",
    "service_stats_from_dict",
    "service_stats_to_dict",
]

#: ServiceStats fields merged by plain summation.
_SUM_FIELDS = (
    "requests", "translated", "served_from_cache", "deduplicated",
    "errors", "batches", "batch_questions", "batch_seconds",
    "busy_seconds", "workers", "lint_errors", "lint_warnings",
    "lint_infos", "kb_lint_errors", "kb_lint_warnings", "kb_lint_infos",
    "slow_queries", "degraded", "retries", "breaker_rejections",
    "plan_cache_hits", "plan_cache_misses", "plan_cache_invalidations",
    "plans_compiled",
)

_CACHE_FIELDS = (
    "hits", "misses", "evictions", "size", "capacity", "insertions",
    "warmed",
)

#: ServiceStats fields that are gauges, not counters: summing them
#: across a dead worker's baseline and its replacement's live snapshot
#: would double-count (two capacities for one cache, two kb-lint
#: reports for one KB).  :func:`carry_baseline` zeroes these.
_GAUGE_FIELDS = (
    "workers", "kb_lint_errors", "kb_lint_warnings", "kb_lint_infos",
)


def empty_service_stats() -> ServiceStats:
    """An all-zero snapshot (what a dead or brand-new shard reports)."""
    zeros = {name: 0 for name in _SUM_FIELDS}
    zeros["batch_seconds"] = 0.0
    zeros["busy_seconds"] = 0.0
    return ServiceStats(stages={}, cache=None, **zeros)


def service_stats_to_dict(stats: ServiceStats) -> dict:
    """A JSON-safe rendering of one snapshot (the ``stats`` frame body)."""
    out = {name: getattr(stats, name) for name in _SUM_FIELDS}
    out["stages"] = {
        name: {
            "total_seconds": stage.total_seconds,
            "count": stage.count,
            "leaf": stage.leaf,
        }
        for name, stage in stats.stages.items()
    }
    out["cache"] = (
        {name: getattr(stats.cache, name) for name in _CACHE_FIELDS}
        if stats.cache is not None else None
    )
    return out


def service_stats_from_dict(payload: dict) -> ServiceStats:
    """Rebuild a snapshot from a ``stats`` frame body.

    Missing keys default to zero, so a newer front-end reading an older
    worker's snapshot degrades gracefully instead of crashing.
    """
    kwargs = {
        name: payload.get(name, 0) for name in _SUM_FIELDS
    }
    stages = {
        name: StageStat(
            total_seconds=float(entry.get("total_seconds", 0.0)),
            count=int(entry.get("count", 0)),
            leaf=bool(entry.get("leaf", True)),
        )
        for name, entry in (payload.get("stages") or {}).items()
    }
    cache_payload = payload.get("cache")
    cache = (
        CacheStats(**{
            name: int(cache_payload.get(name, 0))
            for name in _CACHE_FIELDS
        })
        if cache_payload is not None else None
    )
    return ServiceStats(stages=stages, cache=cache, **kwargs)


def carry_baseline(stats: ServiceStats) -> ServiceStats:
    """A dead worker's snapshot, reduced to what must be carried.

    Counters (requests, outcomes, cache hits, accumulated seconds,
    stage aggregates) are the history a restart must not erase — they
    carry forward verbatim.  Gauge-like fields describe the *current*
    process, which no longer exists: the replacement worker reports its
    own cache size/capacity, fan-out width and KB-lint mirror, so the
    baseline zeroes them to keep the merged view from double-counting.
    """
    cache = stats.cache
    if cache is not None:
        cache = CacheStats(
            hits=cache.hits,
            misses=cache.misses,
            evictions=cache.evictions,
            size=0,
            capacity=0,
            insertions=cache.insertions,
            warmed=cache.warmed,
        )
    return replace(
        stats, cache=cache, **{name: 0 for name in _GAUGE_FIELDS}
    )


def merge_service_stats(parts: list[ServiceStats]) -> ServiceStats:
    """Sum per-shard snapshots into one service-level total.

    Counters and accumulated seconds add; per-stage aggregates merge by
    stage name (self-times still tile each shard's busy time, so the
    merged stage totals tile the merged ``busy_seconds``).  Cache
    counters add when *any* shard has a cache — capacity and size sum,
    which keeps ``hit_rate`` meaningful as the traffic-weighted global
    rate; with no caches anywhere the merged snapshot has ``cache=None``
    like a cache-less service.  An empty ``parts`` list merges to the
    all-zero snapshot, on which every derived rate is ``0.0`` (the
    guards in :class:`ServiceStats` and :class:`CacheStats` divide only
    behind non-zero checks — the merge tests cover each property).
    """
    totals = {name: 0 for name in _SUM_FIELDS}
    totals["batch_seconds"] = 0.0
    totals["busy_seconds"] = 0.0
    stages: dict[str, StageStat] = {}
    cache_totals = {name: 0 for name in _CACHE_FIELDS}
    any_cache = False
    for part in parts:
        for name in _SUM_FIELDS:
            totals[name] += getattr(part, name)
        for name, stage in part.stages.items():
            seen = stages.get(name)
            if seen is None:
                stages[name] = stage
            else:
                stages[name] = StageStat(
                    total_seconds=seen.total_seconds + stage.total_seconds,
                    count=seen.count + stage.count,
                    # A stage that is a leaf in one shard is a leaf in
                    # all (the pipeline shape is identical); keep the
                    # first sighting.
                    leaf=seen.leaf,
                )
        if part.cache is not None:
            any_cache = True
            for name in _CACHE_FIELDS:
                cache_totals[name] += getattr(part.cache, name)
    cache = CacheStats(**cache_totals) if any_cache else None
    return ServiceStats(stages=stages, cache=cache, **totals)


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's worker, as the manager saw it at snapshot time.

    ``stats`` is the shard's *lifetime* view: the carry-forward
    baseline of its dead predecessors plus the live worker's last
    probed snapshot.  ``alive=False`` means the probe failed (worker
    crashed or restarting); the shard still participates in the merge
    with whatever was last known, so the global identity keeps holding
    and no counter ever moves backwards.
    """

    shard: int
    pid: int | None
    alive: bool
    pending: int
    restarts: int
    stats: ServiceStats

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "pid": self.pid,
            "alive": self.alive,
            "pending": self.pending,
            "restarts": self.restarts,
            "stats": service_stats_to_dict(self.stats),
        }


@dataclass(frozen=True)
class ServingStats:
    """The global serving view: per-shard snapshots + front-end counters.

    Attributes:
        shards: one :class:`ShardSnapshot` per shard, in shard order.
        total: the merged :class:`ServiceStats` across shards.
        shed: requests rejected by admission control (all reasons).
        shed_queue_full: sheds due to a full per-shard pending queue.
        shed_breaker_open: sheds due to an open dispatch breaker.
        dispatch_errors: requests that died at the front-end with no
            worker outcome (worker crashed and the restart-retry
            failed, or the manager was closing).
        deadline_expired: requests whose front-end deadline expired
            (the worker may still have completed them; they are *not*
            double-counted as dispatch errors).
        restarts: worker processes restarted after a crash.
        cache_warmups_ok: restarts whose replacement worker was seeded
            with hot cache entries before rejoining the ring.
        cache_warmups_empty: restarts with nothing to replay (no hot
            keys owned by the shard, warm-up disabled at runtime, or
            no usable fingerprint).
        cache_warmups_failed: warm-up attempts that errored; the
            replacement serves cold, admission is never blocked.
        cache_warmup_entries: cache entries replayed into replacement
            workers, summed over all warm restarts.
    """

    shards: tuple[ShardSnapshot, ...]
    total: ServiceStats
    shed: int = 0
    shed_queue_full: int = 0
    shed_breaker_open: int = 0
    dispatch_errors: int = 0
    deadline_expired: int = 0
    restarts: int = 0
    cache_warmups_ok: int = 0
    cache_warmups_empty: int = 0
    cache_warmups_failed: int = 0
    cache_warmup_entries: int = 0

    @property
    def requests(self) -> int:
        """All requests the tier accepted responsibility for."""
        return self.total.requests + self.shed + self.dispatch_errors

    @property
    def errors(self) -> int:
        """Worker-side translation errors plus front-end dispatch ones."""
        return self.total.errors + self.dispatch_errors

    @property
    def accounted(self) -> int:
        """The outcome sum; equals :attr:`requests` in every snapshot."""
        return (
            self.total.translated + self.total.served_from_cache
            + self.total.deduplicated + self.errors + self.shed
        )

    @property
    def shed_rate(self) -> float:
        """Shed fraction of all requests (0.0 on a quiet tier)."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def alive_shards(self) -> int:
        return sum(1 for shard in self.shards if shard.alive)

    def to_dict(self) -> dict:
        """The ``GET /stats`` body: totals, identity, per-shard views."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "accounted": self.accounted,
            "identity_holds": self.requests == self.accounted,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_breaker_open": self.shed_breaker_open,
            "shed_rate": self.shed_rate,
            "dispatch_errors": self.dispatch_errors,
            "deadline_expired": self.deadline_expired,
            "restarts": self.restarts,
            "cache_warmups_ok": self.cache_warmups_ok,
            "cache_warmups_empty": self.cache_warmups_empty,
            "cache_warmups_failed": self.cache_warmups_failed,
            "cache_warmup_entries": self.cache_warmup_entries,
            "alive_shards": self.alive_shards,
            "total": service_stats_to_dict(self.total),
            "mean_translation_ms": self.total.mean_translation_ms,
            "batch_throughput_qps": self.total.batch_throughput_qps,
            "cache_hit_rate": self.total.cache_hit_rate,
            "plan_cache_hit_rate": self.total.plan_cache_hit_rate,
            "shards": [shard.to_dict() for shard in self.shards],
        }


# Sanity: every summed field name really is a ServiceStats field (guards
# against silent drift when ServiceStats grows a counter).
_KNOWN = {f.name for f in fields(ServiceStats)}
for _name in _SUM_FIELDS:
    if _name not in _KNOWN:  # pragma: no cover - import-time assertion
        raise AssertionError(f"unknown ServiceStats field {_name!r}")
