"""Multi-process sharded serving for the NL2CM translation service.

One front-end, N worker processes, consistent-hash routing::

    HTTPFrontend ── ShardManager ──(frames)── worker 0: NL2CM stack
       /translate        │                    worker 1: NL2CM stack
       /batch        HashRing over            ...
       /stats        normalize(question)      worker N-1
       /metrics

The pieces, bottom-up:

* :mod:`repro.serving.frames` — the length-prefixed JSON frame
  protocol every manager↔worker channel speaks;
* :mod:`repro.serving.hashring` — consistent-hash routing so the same
  question always hits the same shard (hot caches) and a shard change
  remaps only its own keyspace slice;
* :mod:`repro.serving.config` — :class:`WorkerSpec`, the picklable
  per-shard service recipe;
* :mod:`repro.serving.worker` — the spawn-safe worker entrypoint and
  its op loop;
* :mod:`repro.serving.stats` — cross-shard stats merging and the
  serving counter identity;
* :mod:`repro.serving.shards` — :class:`ShardManager`: dispatch,
  admission control, crash recovery;
* :mod:`repro.serving.frontend` — :class:`HTTPFrontend`: the HTTP/JSON
  face (``python -m repro --serve``).

See ``docs/serving.md`` for the architecture tour and the operational
contract (shedding, deadlines, restart semantics, the stats identity).
"""

from repro.serving.config import WorkerSpec
from repro.serving.frames import (
    MAX_FRAME_BYTES,
    FrameChannel,
    decode_frame,
    encode_frame,
)
from repro.serving.frontend import HTTPFrontend
from repro.serving.hashring import HashRing
from repro.serving.shards import RemoteOutcome, ShardManager
from repro.serving.stats import (
    ServingStats,
    ShardSnapshot,
    merge_service_stats,
    service_stats_from_dict,
    service_stats_to_dict,
)
from repro.serving.worker import serve_worker, worker_main

__all__ = [
    "FrameChannel",
    "HTTPFrontend",
    "HashRing",
    "MAX_FRAME_BYTES",
    "RemoteOutcome",
    "ServingStats",
    "ShardManager",
    "ShardSnapshot",
    "WorkerSpec",
    "decode_frame",
    "encode_frame",
    "merge_service_stats",
    "serve_worker",
    "service_stats_from_dict",
    "service_stats_to_dict",
    "worker_main",
]
