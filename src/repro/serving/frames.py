"""The worker-channel wire format: length-prefixed JSON frames.

The shard manager and its worker processes speak a deliberately boring
protocol: every message is one *frame* — a 4-byte big-endian unsigned
length prefix followed by exactly that many bytes of UTF-8 JSON, which
must decode to a JSON **object** (the op envelope).  Length-prefixed
framing over a stream socket gives the two properties the serving tier
needs and ``pickle`` over a ``multiprocessing.Pipe`` would not:

* **language-neutral introspection** — frames are readable with any
  JSON tool, so the protocol is testable byte-by-byte and debuggable
  with ``tcpdump``;
* **no code execution on receive** — a worker compromised by a bad
  input cannot smuggle objects into the front-end process the way a
  pickle payload could.

:class:`FrameChannel` wraps a connected stream socket (the shard
manager's workers dial back to a listener on loopback; tests use
``socket.socketpair``).  Receive deadlines are implemented with
``select`` *before* the header read, so a timed-out ``recv`` consumes
nothing and the stream stays aligned; only a peer that stalls
mid-frame (pathological — frames are written with one ``sendall``)
breaks the channel, and the channel then refuses further use rather
than de-sync silently.
"""

from __future__ import annotations

import json
import select
import socket
import struct

from repro.errors import ChannelClosedError, FrameProtocolError

__all__ = [
    "FrameChannel", "KNOWN_OPS", "MAX_FRAME_BYTES", "decode_frame",
    "encode_frame",
]

#: The op vocabulary of the manager↔worker envelope.  ``hello`` flows
#: worker→manager only (the readiness signal); ``cache_export`` /
#: ``cache_seed`` are the warm-restart protocol — the manager pulls a
#: surviving worker's hottest cache entries and replays them into a
#: freshly restarted one before it rejoins the ring.  Workers answer an
#: op outside this set with a typed ``FrameProtocolError`` payload
#: rather than dying, so a newer manager degrades gracefully against an
#: older worker.
KNOWN_OPS = frozenset({
    "hello", "ping", "translate", "batch", "lint", "stats",
    "cache_export", "cache_seed", "stall", "shutdown",
})

#: Hard ceiling on one frame's payload.  Big enough for a several-
#: thousand-question batch or a full stats snapshot; small enough that
#: a corrupt length prefix cannot make the reader allocate gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Safety budget for finishing a frame whose header has started to
#: arrive.  A peer that goes silent mid-frame for this long is broken,
#: not slow — the stream can no longer be trusted to be aligned.
_MID_FRAME_TIMEOUT = 30.0

_HEADER = struct.Struct("!I")


def encode_frame(obj: dict) -> bytes:
    """Serialize one message to its wire form (header + JSON payload)."""
    if not isinstance(obj, dict):
        raise FrameProtocolError(
            f"frames carry JSON objects, not {type(obj).__name__}"
        )
    payload = json.dumps(
        obj, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse one frame payload (the bytes after the length prefix)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise FrameProtocolError(f"frame payload is not JSON: {err}") from err
    if not isinstance(obj, dict):
        raise FrameProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(obj).__name__}"
        )
    return obj


class FrameChannel:
    """One end of a framed conversation over a stream socket.

    Not thread-safe by itself: the shard manager serializes access per
    worker with a handle lock, and each worker is single-threaded.
    """

    def __init__(self, sock: socket.socket):
        sock.setblocking(True)
        self._sock = sock
        self._broken = False

    def fileno(self) -> int:
        return self._sock.fileno()

    # -- sending ---------------------------------------------------------------

    def send(self, obj: dict) -> None:
        """Write one frame; raises :class:`ChannelClosedError` when the
        peer is gone (the dispatcher's crash-detection signal)."""
        self._check_usable()
        frame = encode_frame(obj)
        try:
            self._sock.sendall(frame)
        except (BrokenPipeError, ConnectionError, OSError) as err:
            self._broken = True
            raise ChannelClosedError(
                f"peer closed the channel while sending: {err}"
            ) from err

    # -- receiving -------------------------------------------------------------

    def recv(self, timeout: float | None = None) -> dict:
        """Read one frame, waiting at most ``timeout`` seconds.

        A timeout *before any byte of the frame arrived* raises
        ``TimeoutError`` and leaves the stream aligned — the caller can
        keep using the channel (this is how per-request deadlines work
        without poisoning the connection).  EOF raises
        :class:`ChannelClosedError`; a malformed header or payload
        raises :class:`FrameProtocolError` and marks the channel
        broken.
        """
        self._check_usable()
        if timeout is not None:
            ready, _, _ = select.select([self._sock], [], [], max(timeout, 0.0))
            if not ready:
                raise TimeoutError(
                    f"no frame arrived within {timeout:.3f}s"
                )
        header = self._read_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            self._broken = True
            raise FrameProtocolError(
                f"frame header announces {length} bytes, over the "
                f"{MAX_FRAME_BYTES}-byte ceiling (stream corrupt?)"
            )
        payload = self._read_exact(length)
        try:
            return decode_frame(payload)
        except FrameProtocolError:
            self._broken = True
            raise

    def _read_exact(self, n: int) -> bytes:
        """Read exactly ``n`` bytes, under the mid-frame safety budget."""
        chunks: list[bytes] = []
        remaining = n
        self._sock.settimeout(_MID_FRAME_TIMEOUT)
        try:
            while remaining:
                try:
                    chunk = self._sock.recv(min(remaining, 1 << 20))
                except (socket.timeout, TimeoutError) as err:
                    self._broken = True
                    raise FrameProtocolError(
                        f"peer stalled mid-frame for "
                        f"{_MID_FRAME_TIMEOUT:.0f}s with {remaining} of "
                        f"{n} bytes outstanding"
                    ) from err
                except (ConnectionError, OSError) as err:
                    self._broken = True
                    raise ChannelClosedError(
                        f"channel failed mid-read: {err}"
                    ) from err
                if not chunk:
                    self._broken = True
                    raise ChannelClosedError(
                        "peer closed the channel"
                        + (
                            f" mid-frame ({remaining} of {n} bytes "
                            f"outstanding)" if chunks else ""
                        )
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:  # pragma: no cover - socket already dead
                pass
        return b"".join(chunks)

    # -- lifecycle -------------------------------------------------------------

    def _check_usable(self) -> None:
        if self._broken:
            raise ChannelClosedError(
                "channel is broken (earlier protocol or I/O failure)"
            )

    def close(self) -> None:
        """Close the underlying socket; safe to call repeatedly."""
        self._broken = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close is fine
            pass
