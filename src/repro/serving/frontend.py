"""The HTTP/JSON front-end over a :class:`ShardManager`.

A stdlib ``ThreadingHTTPServer`` (one daemon accept thread, one handler
thread per connection) translating HTTP into worker-tier calls:

=======================  ====================================================
endpoint                 semantics
=======================  ====================================================
``POST /translate``      ``{"question": ...}`` → one translation; worker-
                         side failures are typed JSON errors (422 for
                         question problems, 500 for unexpected ones)
``POST /batch``          ``{"questions": [...]}`` → per-question outcomes in
                         request order plus summary counts; always 200 —
                         shed/crashed slices are typed error entries
``POST /lint``           ``{"query": ...}`` or ``{"question": ...}`` →
                         worker-side static analysis diagnostics
``GET /stats``           the merged :class:`ServingStats` view (JSON; add
                         ``?format=panel`` for the admin-panel text render)
``GET /healthz``         200 with per-shard liveness while every worker is
                         alive, 503 otherwise (load-balancer probe shape)
``GET /metrics``         Prometheus text exposition of the shared registry
                         (serving + HTTP series in one scrape)
=======================  ====================================================

Serving-layer outcomes map onto status codes the way an operator
expects: admission shed → **429** with a ``Retry-After`` header,
front-end deadline → **504**, crashed-worker dispatch failure or a
closed manager → **503**, malformed request → **400**.  Everything the
server returns is JSON except ``/metrics`` and the panel render.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    AdmissionRejected,
    ReproError,
    ServingError,
    ShardTimeoutError,
    WorkerCrashedError,
)
from repro.obs.server import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.serving.shards import RemoteOutcome, ShardManager

__all__ = ["HTTPFrontend"]

#: Request bodies above this are refused with 413 before parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Worker-reported error types that are the *question's* fault (HTTP
#: 422); anything else repro-typed is treated the same, while
#: unexpected (non-repro) errors are 500s.
_DEADLINE_ERROR_TYPES = frozenset({"DeadlineExceeded", "StageTimeout"})


def _status_for_outcome(outcome: RemoteOutcome) -> int:
    """The HTTP status of one non-``ok`` translate outcome."""
    if outcome.error_type in _DEADLINE_ERROR_TYPES:
        return 504
    if outcome.error_type == "AdmissionRejected":
        return 429
    if outcome.error_type in ("WorkerCrashedError", "ServingError"):
        return 503
    if outcome.error_type == "UnexpectedTranslationError":
        return 500
    return 422


class _Server(ThreadingHTTPServer):
    # Non-daemon handler threads + block_on_close: server_close() joins
    # in-flight handlers, which is the graceful-drain half of shutdown.
    daemon_threads = False
    block_on_close = True
    frontend: "HTTPFrontend"


class _Handler(BaseHTTPRequestHandler):
    server_version = "nl2cm-serving/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # request logging is the metrics' job, not stderr's

    def do_GET(self):  # noqa: N802 - http.server API
        self.server.frontend.dispatch(self, "GET")

    def do_POST(self):  # noqa: N802 - http.server API
        self.server.frontend.dispatch(self, "POST")


class HTTPFrontend:
    """The serving tier's HTTP face.

    Args:
        manager: the worker tier to serve.  The front-end *borrows* it:
            :meth:`close` stops the HTTP server but leaves the manager
            to its owner (the CLI closes both, in order).
        host: bind address (loopback by default).
        port: bind port; ``0`` picks a free one (see :attr:`port`).
        timeout: per-request deadline handed to the manager; ``None``
            uses the manager's default.
    """

    def __init__(
        self,
        manager: ShardManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = None,
    ):
        self.manager = manager
        self.timeout = timeout
        registry = manager.registry
        self._m_http = registry.counter(
            "serving_http_requests_total",
            "HTTP requests served by the front-end, by endpoint and "
            "status code.",
            labelnames=("endpoint", "status"),
        )
        self._m_http_seconds = registry.histogram(
            "serving_http_request_seconds",
            "Front-end request latency (admission, dispatch and worker "
            "time included), by endpoint.",
            labelnames=("endpoint",),
        )
        self._close_lock = threading.Lock()
        self._closed = False
        self._server = _Server((host, port), _Handler)
        self._server.frontend = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="serving-http-frontend",
            daemon=True,
        )
        self._thread.start()

    # -- lifecycle -------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop accepting, drain in-flight handlers, release the port.

        Idempotent; does **not** close the manager (callers own that
        ordering — HTTP first so no new work arrives, workers second).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(10.0)

    def __enter__(self) -> "HTTPFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ------------------------------------------------------

    def dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        """Route one HTTP request; all responses flow through here so
        the http metrics see every outcome, including handler bugs."""
        started = time.perf_counter()
        parsed = urlparse(handler.path)
        path = parsed.path.rstrip("/") or "/"
        endpoint = path if path in (
            "/translate", "/batch", "/lint", "/stats", "/healthz", "/metrics",
        ) else "other"
        try:
            status = self._route(handler, method, path, parsed.query)
        except (ConnectionError, BrokenPipeError):  # client went away
            status = 499
        except Exception as exc:  # defensive: a handler bug is a 500
            status = self._send_json(
                handler, 500,
                {"error": {"type": type(exc).__name__, "message": str(exc)}},
            )
        self._m_http.labels(endpoint=endpoint, status=str(status)).inc()
        self._m_http_seconds.labels(endpoint=endpoint).observe(
            time.perf_counter() - started
        )

    def _route(
        self,
        handler: BaseHTTPRequestHandler,
        method: str,
        path: str,
        query: str,
    ) -> int:
        if method == "GET":
            if path == "/stats":
                return self._get_stats(handler, query)
            if path == "/healthz":
                return self._get_healthz(handler)
            if path == "/metrics":
                return self._get_metrics(handler)
            if path in ("/translate", "/batch", "/lint"):
                return self._send_json(
                    handler, 405,
                    {"error": {
                        "type": "MethodNotAllowed",
                        "message": f"{path} takes POST",
                    }},
                )
            return self._not_found(handler)
        if path == "/translate":
            return self._post_translate(handler)
        if path == "/batch":
            return self._post_batch(handler)
        if path == "/lint":
            return self._post_lint(handler)
        if path in ("/stats", "/healthz", "/metrics"):
            return self._send_json(
                handler, 405,
                {"error": {
                    "type": "MethodNotAllowed",
                    "message": f"{path} takes GET",
                }},
            )
        return self._not_found(handler)

    def _not_found(self, handler) -> int:
        return self._send_json(
            handler, 404,
            {"error": {
                "type": "NotFound",
                "message": "try /translate, /batch, /lint, /stats, "
                           "/healthz or /metrics",
            }},
        )

    def _read_json(self, handler) -> dict:
        """The request body as a JSON object, or raise ``_BadRequest``."""
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError:
            handler.close_connection = True  # body left unread
            raise _BadRequest("Content-Length must be an integer")
        if length < 0:
            # A negative length must never reach rfile.read(): read(-5)
            # means read-to-EOF, which on a keep-alive connection blocks
            # until the client gives up (a request-smuggling/DoS shape).
            # The declared length is a lie, so the stream position is
            # unknowable — close instead of draining.
            handler.close_connection = True
            raise _BadRequest("Content-Length must be non-negative")
        if length == 0:
            # Nothing was declared, so nothing is read — the connection
            # stays aligned and reusable.
            raise _BadRequest("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            # Refuse without draining; the connection cannot be reused
            # (the client may see the response or a broken pipe,
            # depending on how far its send got — both mean "too big").
            handler.close_connection = True
            raise _BadRequest(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413
            )
        raw = handler.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise _BadRequest(f"request body is not valid JSON: {err}")
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    def _send_json(self, handler, status: int, payload: dict,
                   headers: tuple[tuple[str, str], ...] = ()) -> int:
        body = json.dumps(payload, indent=2).encode("utf-8")
        return self._send_bytes(
            handler, status, body, "application/json; charset=utf-8", headers
        )

    def _send_bytes(self, handler, status: int, body: bytes,
                    content_type: str,
                    headers: tuple[tuple[str, str], ...] = ()) -> int:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            handler.send_header(name, value)
        handler.end_headers()
        handler.wfile.write(body)
        return status

    def _send_serving_error(self, handler, exc: ReproError) -> int:
        """Map a serving-layer exception onto its HTTP shape."""
        payload = {
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
        if isinstance(exc, AdmissionRejected):
            payload["error"]["reason"] = exc.reason
            retry_after = max(1, math.ceil(exc.retry_after))
            return self._send_json(
                handler, 429, payload,
                headers=(("Retry-After", str(retry_after)),),
            )
        if isinstance(exc, ShardTimeoutError):
            return self._send_json(handler, 504, payload)
        # WorkerCrashedError, closed-manager ServingError, anything else
        # the tier could not serve through.
        return self._send_json(handler, 503, payload)

    # -- endpoints -------------------------------------------------------------

    def _post_translate(self, handler) -> int:
        try:
            body = self._read_json(handler)
            question = body.get("question") or body.get("text")
            if not isinstance(question, str) or not question.strip():
                raise _BadRequest(
                    "a non-empty 'question' string is required"
                )
        except _BadRequest as exc:
            return self._send_json(handler, exc.status, exc.payload())
        try:
            outcome = self.manager.submit(question, timeout=self.timeout)
        except (
            AdmissionRejected, ShardTimeoutError,
            WorkerCrashedError, ServingError,
        ) as exc:
            return self._send_serving_error(handler, exc)
        status = 200 if outcome.ok else _status_for_outcome(outcome)
        return self._send_json(handler, status, outcome.to_dict())

    def _post_batch(self, handler) -> int:
        try:
            body = self._read_json(handler)
            questions = body.get("questions") or body.get("texts")
            if not isinstance(questions, list) or not questions:
                raise _BadRequest(
                    "a non-empty 'questions' list is required"
                )
            if not all(isinstance(q, str) for q in questions):
                raise _BadRequest("every question must be a string")
        except _BadRequest as exc:
            return self._send_json(handler, exc.status, exc.payload())
        try:
            outcomes = self.manager.submit_batch(
                questions, timeout=self.timeout
            )
        except ServingError as exc:  # closed manager; per-item errors
            return self._send_serving_error(handler, exc)  # never raise
        ok = sum(1 for o in outcomes if o.ok)
        shed = sum(1 for o in outcomes if o.shed)
        return self._send_json(handler, 200, {
            "questions": len(outcomes),
            "ok": ok,
            "shed": shed,
            "failed": len(outcomes) - ok - shed,
            "items": [o.to_dict() for o in outcomes],
        })

    def _post_lint(self, handler) -> int:
        try:
            body = self._read_json(handler)
            if not isinstance(
                body.get("query") or body.get("question"), str
            ):
                raise _BadRequest(
                    "a 'query' or 'question' string is required"
                )
        except _BadRequest as exc:
            return self._send_json(handler, exc.status, exc.payload())
        request = {
            key: body[key] for key in ("query", "question") if key in body
        }
        try:
            reply = self.manager.lint(request, timeout=self.timeout)
        except (
            AdmissionRejected, ShardTimeoutError,
            WorkerCrashedError, ServingError,
        ) as exc:
            return self._send_serving_error(handler, exc)
        reply.pop("id", None)
        status = 200 if reply.get("ok") else 422
        return self._send_json(handler, status, reply)

    def _get_stats(self, handler, query: str) -> int:
        try:
            stats = self.manager.stats()
        except ServingError as exc:
            return self._send_serving_error(handler, exc)
        wants_panel = parse_qs(query).get("format", [""])[0] == "panel"
        if wants_panel:
            from repro.ui.admin import render_serving_stats

            body = render_serving_stats(stats).encode("utf-8")
            return self._send_bytes(
                handler, 200, body, "text/plain; charset=utf-8"
            )
        return self._send_json(handler, 200, stats.to_dict())

    def _get_healthz(self, handler) -> int:
        report = self.manager.health()
        healthy = self.manager.healthy()
        return self._send_json(
            handler,
            200 if healthy else 503,
            {
                "status": "ok" if healthy else "degraded",
                "shards": {str(k): v for k, v in report.items()},
            },
        )

    def _get_metrics(self, handler) -> int:
        body = self.manager.registry.expose().encode("utf-8")
        return self._send_bytes(
            handler, 200, body, METRICS_CONTENT_TYPE
        )


class _BadRequest(Exception):
    """An input problem caught before any worker was involved."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status

    def payload(self) -> dict:
        return {"error": {"type": "BadRequest", "message": str(self)}}
