"""Consistent-hash routing of the normalized-question keyspace.

Sharded serving only pays off if each shard's caches stay hot: the
translation LRU, the planner's plan cache and the engine's memoized
answers are all keyed (directly or transitively) by the question text,
so the router must send *the same question to the same shard every
time*, and must keep doing so when the shard set changes.  A modulo
router fails the second property — resizing from N to N+1 shards
remaps ~all keys and cold-starts every cache at once.  A consistent
hash ring remaps only ~K/N of K keys when one of N shards leaves,
which is exactly the property the rebalance tests pin down.

The ring hashes each shard onto many *virtual nodes* (``replicas``
points per shard) so the keyspace splits evenly despite SHA-1's
lumpiness at small sample sizes; lookups are a binary search over the
sorted vnode positions.  Hashing is SHA-1 over UTF-8 — deliberately
**not** Python's process-randomized ``hash()`` — so the front-end and
any future peer processes agree on the mapping.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Iterator

__all__ = ["HashRing"]


def _position(token: str) -> int:
    """A vnode's (or key's) position on the ring: 64 bits of SHA-1."""
    digest = hashlib.sha1(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over an arbitrary set of node ids.

    Args:
        nodes: initial node ids (any hashable with a stable ``str``;
            the shard manager uses shard indexes).
        replicas: virtual nodes per node.  More replicas → more even
            key distribution and smaller per-removal remap granularity,
            at the cost of a longer sorted array; 128 keeps the spread
            within a few percent of fair for single-digit shard
            counts.
    """

    def __init__(self, nodes: Iterable[Hashable] = (), replicas: int = 128):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._positions: list[int] = []       # sorted vnode positions
        self._owners: list[Hashable] = []     # owner of _positions[i]
        self._nodes: set[Hashable] = set()
        for node in nodes:
            self.add(node)

    # -- membership ------------------------------------------------------------

    def add(self, node: Hashable) -> None:
        """Add ``node``'s virtual nodes to the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            position = _position(f"{node}#{replica}")
            index = bisect.bisect(self._positions, position)
            self._positions.insert(index, position)
            self._owners.insert(index, node)

    def remove(self, node: Hashable) -> None:
        """Remove ``node``; only its own keyspace slices are remapped."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (position, owner)
            for position, owner in zip(self._positions, self._owners)
            if owner != node
        ]
        self._positions = [position for position, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._nodes)

    # -- routing ---------------------------------------------------------------

    def lookup(self, key: str) -> Hashable:
        """The node owning ``key``: the first vnode at or after the
        key's ring position, wrapping at the top."""
        if not self._positions:
            raise ValueError("cannot route on an empty ring")
        index = bisect.bisect(self._positions, _position(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> dict:
        """Keys-per-node histogram of a sample (testing/ops aid)."""
        counts: dict = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
