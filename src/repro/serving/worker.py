"""The shard worker: a spawn-safe process entrypoint and its op loop.

A worker is one process (or, in tests, one thread — the protocol cannot
tell) that dials back to the shard manager's loopback listener, builds
its *own* translator stack from the pickled
:class:`~repro.serving.config.WorkerSpec`, announces readiness with a
``hello`` frame, and then serves ops one frame at a time:

========== =======================================================
op         semantics
========== =======================================================
hello      worker → manager only: shard id + auth token + pid;
           sent *after* the service is built, so receiving it means
           the shard is ready for traffic
ping       health probe; answers ``pong`` with the worker's pid
translate  one question through the shard's caching service
batch      many questions through ``translate_batch`` (single-
           flight dedup and the LRU stay shard-local — which is why
           routing is consistent-hash in the first place)
lint       static analysis of a saved query or a question
stats      the shard's ``ServiceStats`` snapshot, JSON-encoded
cache_export  the shard's hottest cache entries (text, fingerprint,
           serialized query text), hottest-first — the donate side
           of the warm-restart protocol
cache_seed replay a peer's exported entries into this shard's cache
           (counted as ``warmed``, never as hits or insertions;
           degraded/lint-refused entries are rejected) — the receive
           side of the warm-restart protocol
stall      diagnostic sleep (only with ``spec.debug_ops``); lets
           tests occupy a shard deterministically
shutdown   acknowledge, then leave the loop (graceful drain)
========== =======================================================

Every reply echoes the request's correlation ``id``.  Errors never
escape the loop: translation failures become typed error payloads
(class name, message, rephrasing tips), and an unexpected exception is
reported as such rather than killing the worker — only a closed
channel or a ``shutdown`` op ends it.  The entrypoint must stay
import-safe under the ``spawn`` start method: no module-level state is
touched until :func:`worker_main` runs.
"""

from __future__ import annotations

import os
import socket
import time
from typing import TYPE_CHECKING

from repro.errors import ChannelClosedError, ReproError, VerificationError
from repro.serving.config import WorkerSpec
from repro.serving.frames import KNOWN_OPS, FrameChannel
from repro.serving.stats import service_stats_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import TranslationService

__all__ = ["serve_worker", "worker_main"]

#: How long a freshly spawned worker waits for the manager's listener.
_CONNECT_TIMEOUT = 60.0


def error_payload(exc: BaseException) -> dict:
    """A typed, JSON-safe rendering of one failure."""
    payload = {
        "type": type(exc).__name__,
        "message": str(exc),
        "repro": isinstance(exc, ReproError),
    }
    if isinstance(exc, VerificationError):
        payload["tips"] = list(exc.tips)
    return payload


def _translate_one(service: "TranslationService", text: str) -> dict:
    """One question's outcome payload (shared by translate and batch)."""
    cache = service.cache
    hits_before = cache.stats().hits if cache is not None else 0
    try:
        result = service.translate(text)
    except ReproError as exc:
        return {"ok": False, "error": error_payload(exc)}
    except Exception as exc:  # never kill the worker for one question
        return {"ok": False, "error": error_payload(exc)}
    # The worker handles one frame at a time, so a hits delta of one
    # can only come from this request.
    cached = (
        cache is not None and cache.stats().hits > hits_before
    )
    return {
        "ok": True,
        "query": result.query_text,
        "degraded": result.trace.degraded,
        "cached": cached,
    }


def _handle_batch(service: "TranslationService", texts: list[str]) -> dict:
    items = service.translate_batch([str(t) for t in texts])
    payloads = []
    for item in items:
        if item.ok:
            payloads.append({
                "ok": True,
                "query": item.query_text,
                "degraded": item.degraded,
                "cached": item.cached,
            })
        else:
            payloads.append({
                "ok": False, "error": error_payload(item.error),
            })
    return {"ok": True, "items": payloads}


def _handle_lint(service: "TranslationService", request: dict) -> dict:
    from repro.analysis import lint_query_source, lint_questions

    if "query" in request:
        outcome = lint_query_source(
            str(request["query"]),
            ontology=service.nl2cm.ontology,
            subject="request",
        )
    elif "question" in request:
        outcome = lint_questions(
            [str(request["question"])], service.nl2cm
        )
    else:
        return {
            "ok": False,
            "error": {
                "type": "FrameProtocolError",
                "message": "lint needs a 'query' or a 'question' field",
                "repro": True,
            },
        }
    diagnostics = [
        {
            "subject": report.subject,
            "severity": str(diagnostic.severity),
            "rule": diagnostic.rule,
            "message": diagnostic.message,
            "location": (
                str(diagnostic.location) if diagnostic.location else None
            ),
        }
        for report in outcome.reports
        for diagnostic in report.diagnostics
    ]
    return {
        "ok": True,
        "exit_code": outcome.exit_code,
        "errors": outcome.errors,
        "warnings": outcome.warnings,
        "infos": outcome.infos,
        "counts": outcome.counts(),
        "diagnostics": diagnostics,
    }


def _handle(
    request: dict, service: "TranslationService", spec: WorkerSpec
) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "op": "pong", "pid": os.getpid()}
    if op == "translate":
        return _translate_one(service, str(request.get("text", "")))
    if op == "batch":
        texts = request.get("texts")
        if not isinstance(texts, list):
            return {
                "ok": False,
                "error": {
                    "type": "FrameProtocolError",
                    "message": "batch needs a 'texts' list",
                    "repro": True,
                },
            }
        return _handle_batch(service, texts)
    if op == "lint":
        return _handle_lint(service, request)
    if op == "stats":
        return {
            "ok": True,
            "stats": service_stats_to_dict(service.stats()),
        }
    if op == "cache_export":
        try:
            n = int(request.get("n", 0))
        except (TypeError, ValueError):
            n = 0
        return {"ok": True, "entries": service.export_hot_entries(n)}
    if op == "cache_seed":
        entries = request.get("entries")
        if not isinstance(entries, list):
            return {
                "ok": False,
                "error": {
                    "type": "FrameProtocolError",
                    "message": "cache_seed needs an 'entries' list",
                    "repro": True,
                },
            }
        warmed, refused = service.seed_cache(entries)
        return {"ok": True, "warmed": warmed, "refused": refused}
    if op == "stall" and spec.debug_ops:
        time.sleep(float(request.get("seconds", 0.0)))
        return {"ok": True}
    if op == "shutdown":
        return {"ok": True, "bye": True}
    return {
        "ok": False,
        "error": {
            "type": "FrameProtocolError",
            "message": (
                f"unknown op {op!r} (known: "
                f"{', '.join(sorted(KNOWN_OPS))})"
            ),
            "repro": True,
        },
    }


def serve_worker(
    channel: FrameChannel,
    service: "TranslationService",
    spec: WorkerSpec,
) -> None:
    """The op loop: one request frame in, one reply frame out, until
    the channel closes or a ``shutdown`` op arrives."""
    while True:
        try:
            request = channel.recv()
        except (ChannelClosedError, OSError):
            break
        try:
            reply = _handle(request, service, spec)
        except Exception as exc:  # defensive: the loop must survive
            reply = {"ok": False, "error": error_payload(exc)}
        reply["id"] = request.get("id")
        try:
            channel.send(reply)
        except (ChannelClosedError, OSError):
            break
        if request.get("op") == "shutdown":
            break


def worker_main(
    host: str,
    port: int,
    token: str,
    shard: int,
    spec: WorkerSpec | None = None,
) -> None:
    """Connect back to the manager, build the stack, serve until told.

    This is the whole worker lifecycle, shared verbatim by process and
    thread workers; the ``spawn`` entrypoint below only adds child-
    process signal hygiene around it.
    """
    spec = spec or WorkerSpec()
    sock = socket.create_connection((host, port), timeout=_CONNECT_TIMEOUT)
    channel = FrameChannel(sock)
    try:
        service = spec.build_service()
        # hello after construction: receiving it means "ready".  The
        # fingerprint tells the manager which exported cache entries
        # this worker can actually use for a warm restart.
        channel.send({
            "op": "hello",
            "shard": shard,
            "token": token,
            "pid": os.getpid(),
            "fingerprint": service.cache_fingerprint(),
        })
        serve_worker(channel, service, spec)
    finally:
        channel.close()


def _process_entry(
    host: str, port: int, token: str, shard: int, spec: WorkerSpec
) -> None:  # pragma: no cover - runs only inside the child process
    """The ``multiprocessing`` target: signal hygiene + worker_main.

    SIGINT is ignored so a ^C in an interactive ``--serve`` session
    reaches only the front-end, which drains and shuts workers down
    over the protocol instead of them dying mid-request.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker_main(host, port, token, shard, spec)
