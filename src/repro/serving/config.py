"""Worker configuration: everything a shard needs to build its stack.

A :class:`WorkerSpec` is the *picklable recipe* the shard manager ships
to each worker process (as a ``multiprocessing`` start argument — it
travels once, at spawn, not per request).  The worker entrypoint calls
:meth:`WorkerSpec.build_service` after the process comes up, so every
shard owns a private :class:`~repro.core.pipeline.NL2CM` and
:class:`~repro.service.TranslationService` — its own ontology indexes,
LRU translation cache, plan cache and metrics registry.  Nothing is
shared between shards except the frame protocol; that is the point
(no GIL, no cross-process locks).

Every field is a primitive, an optional
:class:`~repro.resilience.FaultPlan` (a frozen dataclass of
primitives) or ``None``, so the spec survives the ``spawn`` start
method's pickling on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import TranslationService

from repro.resilience import FaultPlan, ResilienceConfig

__all__ = ["WorkerSpec"]


@dataclass(frozen=True)
class WorkerSpec:
    """The per-shard service recipe.

    Attributes:
        planner: WHERE-clause evaluator for the shard's translator
            (``"cost"`` or ``"greedy"``; see ``docs/performance.md``).
        lint: query-lint mode of the shard's translator.
        kb_lint: construction-time knowledge-base lint mode.
        cache_size: translation-LRU capacity; ``0`` disables caching
            (the cache-cold benchmark configuration).
        threads: thread fan-out of the shard-local ``translate_batch``.
            CPU-bound shards want ``1`` (the process tier provides the
            parallelism); shards whose interaction provider blocks on
            I/O may want more.
        retries: enables the resilience layer with this retry budget
            when not ``None`` (also enabled when ``faults`` is set).
        seed: determinism seed for retry jitter and fault injection.
        faults: optional deterministic :class:`FaultPlan` injected
            under the retry layer — chaos runs stay byte-reproducible
            because the plan is keyed by question text, not schedule.
        stage_timeout_ms: per-stage pipeline deadline inside the
            worker (independent of the front-end's per-request
            deadline).
        slow_log_ms: retain span trees of translations slower than
            this many milliseconds in the shard's slow-query log.
        debug_ops: accept diagnostic ops (``stall``) on the worker
            channel.  Off by default: a production worker must not
            sleep on demand.  The admission-control and deadline tests
            turn it on to occupy a shard deterministically.
    """

    planner: str = "cost"
    lint: str = "error"
    kb_lint: str = "warn"
    cache_size: int = 256
    threads: int = 1
    retries: int | None = None
    seed: int = 0
    faults: FaultPlan | None = None
    stage_timeout_ms: float | None = None
    slow_log_ms: float | None = None
    debug_ops: bool = False

    def __post_init__(self):
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0 (0 disables)")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")

    def resilience(self) -> ResilienceConfig | None:
        """The resilience config this spec implies, or ``None``."""
        if self.retries is None and self.faults is None:
            return None
        return ResilienceConfig(
            retries=self.retries if self.retries is not None else 3,
            seed=self.seed,
            faults=self.faults,
        )

    def build_service(self) -> "TranslationService":
        """Construct the shard's full stack (called inside the worker)."""
        from repro.core.pipeline import NL2CM
        from repro.data.ontologies import load_merged_ontology
        from repro.service.service import TranslationService

        nl2cm = NL2CM(
            ontology=load_merged_ontology(),
            planner=self.planner,
            lint=self.lint,
            kb_lint=self.kb_lint,
            stage_timeout_ms=self.stage_timeout_ms,
        )
        return TranslationService(
            nl2cm,
            workers=self.threads,
            cache=self.cache_size if self.cache_size > 0 else None,
            slow_log=self.slow_log_ms,
            resilience=self.resilience(),
        )
