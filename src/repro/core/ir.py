"""Intermediate representation shared by the query-part generators.

Both the general query generator (:mod:`repro.freya`) and the individual
triple creator (:mod:`repro.core.triples`) emit *proto-triples* whose
terms may be:

* :class:`NodeTerm` — a reference to a dependency-graph node whose final
  rendering (query variable vs. entity IRI) the Query Composition module
  decides (paper Section 2.6: "every reference to a particular term in
  the original sentence is represented by an occurrence of the same
  variable");
* a concrete RDF term (:class:`~repro.rdf.terms.IRI` /
  :class:`~repro.rdf.terms.Literal`);
* :data:`~repro.oassisql.ast.ANYTHING` — the ``[]`` wildcard.

Each proto-triple records its origin (general or individual) and the
graph nodes it was derived from, which is what lets composition delete
general triples that FREyA wrongly produced for detected IXs (paper
Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.nlp.graph import DepNode
from repro.oassisql.ast import Anything
from repro.rdf.terms import IRI, Literal

__all__ = ["NodeTerm", "ProtoTerm", "ProtoTriple"]


@dataclass(frozen=True, slots=True)
class NodeTerm:
    """A reference to a sentence token that becomes a variable or IRI.

    ``entity`` optionally pins the node to an ontology entity (set by
    the general query generator after entity linking / disambiguation);
    composition renders pinned nodes as IRIs and unpinned ones as
    variables.
    """

    node: DepNode
    entity: IRI | None = None

    @property
    def index(self) -> int:
        return self.node.index

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.entity is not None:
            return f"{self.node.text}->{self.entity.local_name}"
        return f"?{self.node.text}-{self.node.index}"


ProtoTerm = Union[NodeTerm, IRI, Literal, Anything]


@dataclass(frozen=True)
class ProtoTriple:
    """A triple whose node references are not yet resolved.

    Attributes:
        s, p, o: proto-terms.
        origin: ``"general"`` (from the query generator, goes to WHERE)
            or ``"individual"`` (from the triple creator, goes to
            SATISFYING).
        source_nodes: the graph nodes this triple was derived from —
            the overlap test for composition's deletion step.
        unit: for individual triples, the id of the IX unit the triple
            belongs to; triples of one unit share a SATISFYING subclause.
    """

    s: ProtoTerm
    p: ProtoTerm
    o: ProtoTerm
    origin: str
    source_nodes: frozenset[int] = frozenset()
    unit: int = -1

    def terms(self) -> tuple[ProtoTerm, ProtoTerm, ProtoTerm]:
        return (self.s, self.p, self.o)

    def node_terms(self) -> list[NodeTerm]:
        return [t for t in self.terms() if isinstance(t, NodeTerm)]

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.origin}] {self.s} {self.p} {self.o}"
