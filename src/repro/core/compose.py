"""Query Composition (paper Sections 2.6 and 3).

The last module of the architecture:

1. **Deletion** — drop general triples that FREyA wrongly produced for
   detected IXs (overlap with an IX's core nodes);
2. **Variable alignment** — every reference to a particular term of the
   sentence becomes an occurrence of the same variable (node references
   are resolved through coreference links, entity bindings become IRIs,
   everything else gets a fresh ``$x``-style variable, allocated in
   sentence order so the wh-target is ``$x``);
3. **Subclause creation** — individual triples of one IX unit share one
   SATISFYING subclause (the visit and its season, Figure 1 lines
   10-11);
4. **Qualifiers** — a superlative opinion becomes top-k (``ORDER BY
   DESC(SUPPORT) LIMIT k``, asking the user for k, Figure 5); other
   units get a support threshold (asking for the minimal frequency);
5. **SELECT** — by default no variable is projected out; with more than
   one variable the user may choose a projection (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ir import NodeTerm, ProtoTriple
from repro.core.ixdetect import IX
from repro.errors import CompositionError
from repro.freya.generator import GeneralQueryResult
from repro.nlp.graph import DepGraph, DepNode
from repro.oassisql.ast import (
    ANYTHING,
    Anything,
    OassisQuery,
    QueryTriple,
    SatisfyingClause,
    SelectClause,
    SupportThreshold,
    TopK,
)
from repro.rdf.terms import IRI, Literal, Variable
from repro.ui.interaction import (
    InteractionProvider,
    LimitRequest,
    ProjectionRequest,
    ThresholdRequest,
)

__all__ = ["QueryComposer", "ComposedQuery"]

# Variable names handed out in order of first appearance.
_VARIABLE_NAMES = "xyzwvutsrq"

_SUPERLATIVE_ADVERBS = {"most", "least"}
_ASCENDING_MARKERS = {"least", "bad", "worst"}


@dataclass
class ComposedQuery:
    """The composed query plus the bookkeeping the UI shows."""

    query: OassisQuery
    variable_phrases: dict[str, str]
    deleted_general: list[ProtoTriple]


class QueryComposer:
    """Combines general and individual proto-triples into OASSIS-QL."""

    def compose(
        self,
        graph: DepGraph,
        ixs: list[IX],
        individual: list[ProtoTriple],
        general: GeneralQueryResult,
        interaction: InteractionProvider,
    ) -> ComposedQuery:
        """Build and validate the final query.

        Raises:
            CompositionError: if no query parts survive composition.
        """
        kept_general, deleted = self._delete_overlaps(
            general.triples, ixs
        )

        allocator = _VariableAllocator(general)
        where = tuple(
            self._resolve(t, allocator) for t in kept_general
        )
        satisfying = self._build_satisfying(
            graph, ixs, individual, allocator, interaction
        )
        if not where and not satisfying:
            raise CompositionError(
                "no query parts could be derived from the request"
            )

        select = self._build_select(graph, allocator, interaction)
        query = OassisQuery(
            select=select, where=where, satisfying=satisfying
        )
        query.validate()
        return ComposedQuery(
            query=query,
            variable_phrases=allocator.phrases(),
            deleted_general=deleted,
        )

    # -- deletion --------------------------------------------------------------

    def _delete_overlaps(
        self, general: list[ProtoTriple], ixs: list[IX]
    ) -> tuple[list[ProtoTriple], list[ProtoTriple]]:
        """Drop general triples built from an IX's core nodes.

        Core nodes exclude the habit's object and the opinion's target:
        those nouns legitimately appear in both query parts ("places" is
        selected from the ontology *and* asked about).
        """
        core: set[int] = set()
        for ix in ixs:
            nodes = set(ix.nodes)
            if ix.object is not None:
                nodes.discard(ix.object.index)
            if ix.modified is not None:
                nodes.discard(ix.modified.index)
            for _, pobj in ix.pps:
                # PP objects are referenced, not consumed: the container
                # in "[] at $x" still needs its instanceOf triple.
                nodes.discard(pobj.index)
            core |= nodes

        kept: list[ProtoTriple] = []
        deleted: list[ProtoTriple] = []
        for triple in general:
            if triple.source_nodes & core:
                deleted.append(triple)
            else:
                kept.append(triple)
        return kept, deleted

    # -- resolution ---------------------------------------------------------------

    def _resolve(
        self, proto: ProtoTriple, allocator: "_VariableAllocator"
    ) -> QueryTriple:
        return QueryTriple(
            s=allocator.resolve(proto.s),
            p=allocator.resolve(proto.p),
            o=allocator.resolve(proto.o),
        )

    # -- SATISFYING ------------------------------------------------------------------

    def _build_satisfying(
        self,
        graph: DepGraph,
        ixs: list[IX],
        individual: list[ProtoTriple],
        allocator: "_VariableAllocator",
        interaction: InteractionProvider,
    ) -> tuple[SatisfyingClause, ...]:
        by_unit: dict[int, list[ProtoTriple]] = {}
        for triple in individual:
            by_unit.setdefault(triple.unit, []).append(triple)

        clauses: list[SatisfyingClause] = []
        for unit_id in sorted(by_unit):
            ix = ixs[unit_id]
            triples = tuple(
                self._resolve(t, allocator) for t in by_unit[unit_id]
            )
            qualifier = self._qualifier(graph, ix, interaction)
            clauses.append(
                SatisfyingClause(triples=triples, qualifier=qualifier)
            )
        return tuple(clauses)

    def _qualifier(
        self, graph: DepGraph, ix: IX, interaction: InteractionProvider
    ):
        description = self._unit_description(graph, ix)
        if ix.kind == "opinion" and self._is_superlative(graph, ix.anchor):
            k = int(interaction.ask(LimitRequest(description=description)))
            descending = not self._is_ascending(graph, ix.anchor)
            return TopK(k=k, descending=descending)
        threshold = float(
            interaction.ask(ThresholdRequest(description=description))
        )
        return SupportThreshold(threshold=threshold)

    @staticmethod
    def _unit_description(graph: DepGraph, ix: IX) -> str:
        span = ix.span_text(graph)
        if ix.kind == "opinion":
            return f'the "{span}" opinion'
        return f'the "{span}" habit'

    @staticmethod
    def _is_superlative(graph: DepGraph, anchor: DepNode) -> bool:
        if anchor.tag in ("JJS", "RBS"):
            return True
        return any(
            adv.lower in _SUPERLATIVE_ADVERBS
            for adv in graph.children(anchor, "advmod")
        )

    @staticmethod
    def _is_ascending(graph: DepGraph, anchor: DepNode) -> bool:
        if anchor.lower in _ASCENDING_MARKERS or (
            anchor.lemma in _ASCENDING_MARKERS
        ):
            return True
        return any(
            adv.lower == "least"
            for adv in graph.children(anchor, "advmod")
        )

    # -- SELECT ------------------------------------------------------------------------

    def _build_select(
        self,
        graph: DepGraph,
        allocator: "_VariableAllocator",
        interaction: InteractionProvider,
    ) -> SelectClause:
        phrases = allocator.phrases()
        if len(phrases) <= 1:
            return SelectClause(variables=None)
        request = ProjectionRequest(
            variables=tuple(sorted(phrases.items(),
                                   key=lambda kv: kv[0])),
        )
        chosen = list(interaction.ask(request))
        if set(chosen) >= set(phrases):
            return SelectClause(variables=None)
        unknown = set(chosen) - set(phrases)
        if unknown:
            raise CompositionError(
                f"projection over unknown variables: {sorted(unknown)}"
            )
        ordered = tuple(v for v in phrases if v in set(chosen))
        if not ordered:
            return SelectClause(variables=None)
        return SelectClause(variables=ordered)


class _VariableAllocator:
    """Allocates aligned variables for node references.

    Node indexes are first resolved through the general result's
    coreference links; entity-pinned nodes render as IRIs; the rest get
    stable variable names in order of first allocation.
    """

    def __init__(self, general: GeneralQueryResult):
        self._general = general
        self._by_index: dict[int, Variable] = {}
        self._phrases: dict[str, str] = {}

    def resolve(self, term):
        if isinstance(term, (IRI, Literal, Anything)):
            return term
        if isinstance(term, NodeTerm):
            if term.entity is not None:
                return term.entity
            index = self._general.resolve_index(term.index)
            entity = self._general.entity_bindings.get(index)
            if entity is not None:
                return entity
            return self._variable_for(index, term.node)
        raise CompositionError(f"cannot resolve term {term!r}")

    def _variable_for(self, index: int, node: DepNode) -> Variable:
        var = self._by_index.get(index)
        if var is None:
            position = len(self._by_index)
            if position < len(_VARIABLE_NAMES):
                name = _VARIABLE_NAMES[position]
            else:
                name = f"x{position - len(_VARIABLE_NAMES) + 1}"
            var = Variable(name)
            self._by_index[index] = var
            self._phrases[name] = node.text
        return var

    def phrases(self) -> dict[str, str]:
        """Variable name -> the sentence phrase it stands for."""
        return dict(self._phrases)
