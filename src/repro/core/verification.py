"""Question verification (paper Section 3).

Before parsing, NL2CM "checks for certain types of questions/requests
that are not supported by the system" and, when it detects one, shows a
warning "along with a link to an explanation and tips how to rephrase
the question".  The paper's examples of unsupported forms are
descriptive questions: "How to...?", "Why...?", "For what purpose...?".

The verifier is rule-based and conservative: it only rejects forms whose
answer semantics OASSIS-QL cannot express, and every rejection carries
actionable rephrasing tips (the demo's stage (iii) shows these for
"How should I store coffee?" -> "At what container should I store
coffee?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.tokenizer import split_sentences, tokenize

__all__ = ["VerificationResult", "Verifier"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of the verification step.

    ``ok`` is True when the question may proceed to translation.
    ``reason`` is a short machine-readable code (empty when ok), and
    ``tips`` the user-facing rephrasing suggestions.
    """

    ok: bool
    reason: str = ""
    message: str = ""
    tips: tuple[str, ...] = ()


# Rephrasing tips per rejection reason.
_TIPS: dict[str, tuple[str, ...]] = {
    "descriptive-how": (
        'Descriptive "How ...?" questions are not supported: their '
        "answers are free-form explanations, not data patterns.",
        'Rephrase around a concrete entity or category: instead of '
        '"How should I store coffee?" ask "At what container should I '
        'store coffee?".',
    ),
    "descriptive-why": (
        '"Why ...?" questions ask for causes, which cannot be mined as '
        "data patterns.",
        "Ask about the habits or opinions themselves: instead of "
        '"Why do people like jogging?" ask "Where do people like to '
        'jog?".',
    ),
    "descriptive-purpose": (
        '"For what purpose ...?" questions are descriptive and not '
        "supported.",
        "Ask about a concrete property, habit or opinion instead.",
    ),
    "empty": (
        "Please enter a question or request.",
    ),
    "too-short": (
        "The request is too short to translate; please write a full "
        "question.",
    ),
    "multiple-sentences": (
        "Please ask one question at a time — the translator handles a "
        "single sentence.",
    ),
    "no-content": (
        "The request contains no recognizable words; please rephrase "
        "it in plain English.",
    ),
    "too-long": (
        "The request is very long; please shorten it to a single, "
        "focused question.",
    ),
}

# Opening word sequences of descriptive questions.
_DESCRIPTIVE_OPENERS: tuple[tuple[tuple[str, ...], str], ...] = (
    (("how",), "descriptive-how"),
    (("why",), "descriptive-why"),
    (("for", "what", "purpose"), "descriptive-purpose"),
    (("what", "is", "the", "meaning"), "descriptive-purpose"),
    (("explain",), "descriptive-purpose"),
    (("describe",), "descriptive-purpose"),
)

# "How many/much" are aggregate questions, also unsupported by
# OASSIS-QL, but they get the same descriptive-how tips.
_MAX_TOKENS = 60


class Verifier:
    """The basic verification step in front of the NL parser."""

    def verify(self, text: str) -> VerificationResult:
        """Check whether ``text`` is a supported request."""
        if not text or not text.strip():
            return self._reject("empty", "The request is empty.")

        tokens = tokenize(text)
        words = [t.lower for t in tokens if t.is_word]
        if not words:
            return self._reject(
                "no-content", "The request contains no words."
            )
        if len(words) < 2:
            return self._reject(
                "too-short", "The request is a single word."
            )

        sentences = split_sentences(text)
        if len(sentences) > 1:
            return self._reject(
                "multiple-sentences",
                f"The request contains {len(sentences)} sentences.",
            )
        if len(tokens) > _MAX_TOKENS:
            return self._reject(
                "too-long",
                f"The request has {len(tokens)} tokens "
                f"(limit {_MAX_TOKENS}).",
            )

        for opener, reason in _DESCRIPTIVE_OPENERS:
            if tuple(words[: len(opener)]) == opener:
                quoted = " ".join(opener).capitalize()
                return self._reject(
                    reason,
                    f'Questions starting with "{quoted} ..." are '
                    "descriptive and not supported.",
                )

        return VerificationResult(ok=True)

    @staticmethod
    def _reject(reason: str, message: str) -> VerificationResult:
        return VerificationResult(
            ok=False, reason=reason, message=message,
            tips=_TIPS.get(reason, ()),
        )
