"""IX detection: IXFinder + IXCreator (paper Sections 2.3 and 3).

The detector is split exactly as in the paper's Figure 2:

* :class:`IXFinder` runs the declarative detection patterns over the
  dependency graph and returns raw matches ("partial IXs");
* :class:`IXCreator` completes each match into a full semantic unit
  ("completed IXs"): for a verb anchor it gathers the auxiliaries,
  negation, subject, objects and temporal modifiers that describe the
  same habit; for an adjective anchor it gathers the degree adverbs and
  the noun the opinion is about.

:class:`IXDetector` is the façade combining both, returning :class:`IX`
units ready for Individual Triple Creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from importlib import resources

from repro.data.vocabularies import VocabularyRegistry, load_vocabularies
from repro.core.ixpatterns import (
    IXPattern,
    PatternMatch,
    PatternMatcher,
    parse_patterns,
)
from repro.nlp.depparse import TEMPORAL_NOUNS
from repro.nlp.graph import DepGraph, DepNode

__all__ = ["IX", "IXFinder", "IXCreator", "IXDetector",
           "load_default_patterns"]


@lru_cache(maxsize=1)
def _default_pattern_bank() -> tuple[IXPattern, ...]:
    text = (
        resources.files("repro.data")
        .joinpath("ix_patterns.txt")
        .read_text("utf-8")
    )
    return tuple(parse_patterns(text))


def load_default_patterns() -> list[IXPattern]:
    """The default pattern set from ``repro/data/ix_patterns.txt``.

    The embedded bank is parsed once per process (patterns are
    immutable, so sharing the objects is safe); each call returns a
    fresh list, so callers may extend it without affecting others.
    """
    return list(_default_pattern_bank())


@dataclass(frozen=True)
class IX:
    """A completed Individual eXpression: one semantic unit.

    Attributes:
        anchor: the node the detection pattern anchored on (a verb for
            habit-like IXs, an adjective/adverb for opinion-like ones).
        kind: ``"habit"`` (verb anchor) or ``"opinion"`` (adjective).
        nodes: every node belonging to the unit (used for highlighting
            in the UI and for composition's overlap deletion).
        types: the individuality types that fired (lexical /
            participant / syntactic).
        patterns: names of the detection patterns that fired.
        uncertain: True if any contributing pattern was marked
            UNCERTAIN — the user is asked to confirm (Figure 4).
        subject: the unit's grammatical subject (None for gaps).
        object: the noun the habit/opinion is about, if any — for
            "places we should visit", the antecedent "places".
        pps: temporal/participant PPs of the unit as (prep, object
            head) pairs — "in the fall" becomes a fact-set triple.
        negated: True if the verb carries a ``neg`` modifier.
    """

    anchor: DepNode
    kind: str
    nodes: frozenset[int]
    types: frozenset[str]
    patterns: tuple[str, ...]
    uncertain: bool
    subject: DepNode | None = None
    object: DepNode | None = None
    pps: tuple[tuple[DepNode, DepNode], ...] = ()
    modified: DepNode | None = None
    negated: bool = False

    def span_text(self, graph: DepGraph) -> str:
        """The surface text of the unit, for UI highlighting."""
        nodes = [graph.node(i) for i in sorted(self.nodes)]
        return graph.text_span(nodes)


class IXFinder:
    """Runs the IX detection patterns over a dependency graph."""

    def __init__(
        self,
        patterns: list[IXPattern] | None = None,
        vocabularies: VocabularyRegistry | None = None,
    ):
        self.patterns = (
            list(patterns) if patterns is not None
            else load_default_patterns()
        )
        self.vocabularies = vocabularies or load_vocabularies()
        self._matcher = PatternMatcher(self.vocabularies)

    def find(self, graph: DepGraph) -> list[PatternMatch]:
        """All pattern matches ("partial IXs")."""
        return self._matcher.match_all(self.patterns, graph)


class IXCreator:
    """Completes pattern matches into full IX semantic units.

    Matches sharing an anchor node merge into one unit (the running
    example's "we should visit" fires both the participant-subject and
    the syntactic-modal pattern on the same verb).  A lexical match
    whose anchor modifies the object of a habit unit stays separate —
    opinions and habits are distinct fact-sets (Figure 1 has one
    subclause for "interesting" and one for "visit ... in fall").

    When built with an ontology, PP inclusion is knowledge-aware: a
    verb PP over a *location* entity ("visit in Buffalo") stays general
    while one over a non-location entity ("serve with coffee") joins the
    habit's fact-set.
    """

    def __init__(self, ontology=None, vocabularies=None):
        self._ontology = ontology
        self._vocabularies = vocabularies

    def create(self, graph: DepGraph, matches: list[PatternMatch]) -> list[IX]:
        by_anchor: dict[int, list[PatternMatch]] = {}
        for match in matches:
            by_anchor.setdefault(match.anchor_node.index, []).append(match)

        units: list[IX] = []
        deferred: list[tuple[DepNode, list[PatternMatch]]] = []
        for anchor_index in sorted(by_anchor):
            group = by_anchor[anchor_index]
            anchor = graph.node(anchor_index)
            if anchor.is_verb:
                units.append(self._complete_verb(graph, anchor, group))
            elif anchor.is_adjective or anchor.tag.startswith("R"):
                units.append(self._complete_lexical(graph, anchor, group))
            else:
                # Noun anchors ("my kids' favorite dishes" anchors on
                # the possessed noun) merge into the unit that talks
                # about the same noun; only standalone ones form a
                # fresh unit.
                deferred.append((anchor, group))
        for anchor, group in deferred:
            merged = self._merge_into_existing(units, anchor, group)
            if not merged:
                units.append(self._complete_lexical(graph, anchor, group))
        return units

    @staticmethod
    def _merge_into_existing(
        units: list[IX], anchor: DepNode, group: list[PatternMatch]
    ) -> bool:
        for i, unit in enumerate(units):
            related = (
                anchor.index in unit.nodes
                or (unit.modified is not None
                    and unit.modified.index == anchor.index)
                or (unit.object is not None
                    and unit.object.index == anchor.index)
                or (unit.subject is not None
                    and unit.subject.index == anchor.index)
            )
            if not related:
                continue
            extra_nodes = set()
            for match in group:
                extra_nodes |= {
                    n.index for n in match.nodes() if not n.is_root
                }
            units[i] = replace(
                unit,
                nodes=unit.nodes | frozenset(extra_nodes),
                types=unit.types | frozenset(
                    m.pattern.ix_type for m in group
                ),
                patterns=tuple(sorted(
                    set(unit.patterns) | {m.pattern.name for m in group}
                )),
                uncertain=unit.uncertain and all(
                    m.pattern.uncertain for m in group
                ),
            )
            return True
        return False

    # -- completion rules ------------------------------------------------------

    def _complete_verb(
        self, graph: DepGraph, verb: DepNode, group: list[PatternMatch]
    ) -> IX:
        nodes: set[int] = {verb.index}
        for match in group:
            nodes |= {n.index for n in match.nodes() if not n.is_root}

        subject = self._first(graph.children(verb, "nsubj"))
        negated = bool(graph.children(verb, "neg"))
        for label in ("aux", "auxpass", "neg", "prt"):
            nodes |= {n.index for n in graph.children(verb, label)}
        if subject is not None:
            nodes.add(subject.index)

        obj = self._first(graph.children(verb, "dobj"))
        if obj is None:
            # Relative-clause gap: "places we should visit" — the
            # antecedent is the verb's understood object.
            parent_edge = graph.parent_edge(verb)
            if parent_edge is not None and parent_edge.label == "rcmod":
                obj = parent_edge.head
        if obj is None:
            # Open wh-question: "Where do you visit?" — the wh adverb
            # stands for the asked-about object.
            wh = next(
                (n for n in graph.children(verb, "advmod")
                 if n.tag == "WRB" and n.lemma in ("where", "what")),
                None,
            )
            if wh is not None:
                obj = wh
                nodes.add(wh.index)
        if obj is not None:
            nodes.add(obj.index)

        pps: list[tuple[DepNode, DepNode]] = []
        for prep in graph.children(verb, "prep"):
            pobj = self._first(graph.children(prep, "pobj"))
            if pobj is None:
                continue
            if self._pp_belongs_to_unit(graph, pobj):
                pps.append((prep, pobj))
                nodes.add(prep.index)
                nodes.add(pobj.index)
                nodes |= {
                    n.index for n in graph.children(pobj, "det")
                }
        # An xcomp activity joins the unit: "go hiking".
        for xcomp in graph.children(verb, "xcomp"):
            if xcomp.tag == "VBG":
                nodes.add(xcomp.index)
                for prep in graph.children(xcomp, "prep"):
                    pobj = self._first(graph.children(prep, "pobj"))
                    if pobj is not None and self._pp_belongs_to_unit(
                        graph, pobj
                    ):
                        pps.append((prep, pobj))
                        nodes.add(prep.index)
                        nodes.add(pobj.index)

        return IX(
            anchor=verb,
            kind="habit",
            nodes=frozenset(nodes),
            types=frozenset(m.pattern.ix_type for m in group),
            patterns=tuple(sorted({m.pattern.name for m in group})),
            uncertain=all(m.pattern.uncertain for m in group),
            subject=subject,
            object=obj,
            pps=tuple(pps),
            negated=negated,
        )

    def _complete_lexical(
        self, graph: DepGraph, anchor: DepNode, group: list[PatternMatch]
    ) -> IX:
        nodes: set[int] = {anchor.index}
        for match in group:
            nodes |= {n.index for n in match.nodes() if not n.is_root}
        # Degree adverbs: "most interesting", "really good".
        for adv in graph.children(anchor, "advmod"):
            nodes.add(adv.index)

        # What is the opinion about?  amod parent ("interesting places")
        # or copular subject ("chocolate milk is good").
        modified: DepNode | None = None
        parent_edge = graph.parent_edge(anchor)
        if parent_edge is not None and parent_edge.label == "amod":
            modified = parent_edge.head
        else:
            modified = self._first(graph.children(anchor, "nsubj"))

        # Participant PPs qualify the opinion: "good for kids".
        pps: list[tuple[DepNode, DepNode]] = []
        for prep in graph.children(anchor, "prep"):
            pobj = self._first(graph.children(prep, "pobj"))
            if pobj is not None:
                pps.append((prep, pobj))
                nodes.add(prep.index)
                nodes.add(pobj.index)

        return IX(
            anchor=anchor,
            kind="opinion",
            nodes=frozenset(nodes),
            types=frozenset(m.pattern.ix_type for m in group),
            patterns=tuple(sorted({m.pattern.name for m in group})),
            uncertain=all(m.pattern.uncertain for m in group),
            modified=modified,
            pps=tuple(pps),
        )

    def _pp_belongs_to_unit(self, graph: DepGraph, pobj: DepNode) -> bool:
        """Which verb PPs join the habit's fact-set.

        Temporal PPs do ("visit ... in the fall" -> ``[] in Fall``,
        Figure 1); a wh-questioned PP does — "At what container should
        I store coffee?" asks about the container *of the storing
        habit* (``[] at $x``); a participant PP does ("with your kids");
        and, with an ontology, a PP over a non-location entity does
        ("serve with coffee").  Locative PPs over known places ("visit
        in Buffalo") stay general: the place is ontology data.
        """
        if pobj.lemma in TEMPORAL_NOUNS:
            return True
        if any(det.tag in ("WDT", "WP")
               for det in graph.children(pobj, "det")):
            return True
        if self._vocabularies is not None and (
            pobj.lemma in self._vocabularies["V_participant"]
        ):
            return True
        if self._ontology is not None:
            from repro.rdf.ontology import KB  # local: avoid cycles
            match = None
            for phrase in (pobj.lower, pobj.lemma):
                match = self._ontology.best_match(
                    phrase, kinds=("entity",), threshold=0.9
                )
                if match is not None:
                    break
            if match is not None:
                types = set(self._ontology.types_of(match.iri))
                if not types & {KB.Place, KB.City}:
                    return True
        return False

    @staticmethod
    def _first(nodes: list[DepNode]) -> DepNode | None:
        return nodes[0] if nodes else None


class IXDetector:
    """Facade: find partial IXs, then complete them into units."""

    def __init__(
        self,
        patterns: list[IXPattern] | None = None,
        vocabularies: VocabularyRegistry | None = None,
        ontology=None,
    ):
        self.finder = IXFinder(patterns, vocabularies)
        self.creator = IXCreator(
            ontology=ontology, vocabularies=self.finder.vocabularies
        )

    def detect(self, graph: DepGraph) -> list[IX]:
        """All completed IX units of ``graph``."""
        return self.creator.create(graph, self.finder.find(graph))
