"""The declarative IX detection pattern language (paper Section 2.3).

Patterns are written "in a SPARQL-like syntax, in terms of the POS tags;
the dependency graph edges; and dedicated vocabularies".  The paper's
own example pattern is::

    $x subject $y
    filter(POS($x) = "verb" && $y in V_participant)

A pattern definition in our concrete syntax adds a header line carrying
its metadata::

    PATTERN participant_subject TYPE participant ANCHOR $x
    $x subject $y
    filter(POS($x) = "verb" && $y in V_participant)

* ``TYPE`` — the individuality type: ``lexical``, ``participant`` or
  ``syntactic``;
* ``ANCHOR`` — the variable whose binding anchors the detected IX (the
  node the IXCreator completes into a full semantic unit);
* optional ``UNCERTAIN`` — ask the user to verify matches of this
  pattern (paper Section 4.1, Figure 4).

Edge lines use the dependency labels of
:data:`repro.nlp.graph.DEPENDENCY_LABELS`; ``subject`` and ``object``
are accepted as aliases for ``nsubj`` and ``dobj`` to match the paper's
surface syntax.  Filters support ``&&``, ``||``, ``!``, ``=``/``!=``
comparisons over the node functions ``POS($x)``, ``LEMMA($x)`` and
``TEXT($x)``, and vocabulary membership ``$x in V_name`` /
``LEMMA($x) in V_name``.

Patterns are *data*, not code: the default set lives in
``repro/data/ix_patterns.txt`` and an administrator can edit it without
touching the matcher — the transparency/extensibility argument the paper
makes for pattern matching over machine learning.
"""

from __future__ import annotations

import re
from functools import lru_cache
from dataclasses import dataclass, field

from repro.data.vocabularies import VocabularyRegistry
from repro.errors import PatternSyntaxError
from repro.nlp.graph import DEPENDENCY_LABELS, DepGraph, DepNode
from repro.nlp.postag_lexicon import TAGSET

__all__ = ["IXPattern", "PatternEdge", "PatternFilter", "PatternMatcher",
           "parse_patterns", "IX_TYPES", "pos_class_of_tag",
           "achievable_pos_classes"]

IX_TYPES = ("lexical", "participant", "syntactic")

_LABEL_ALIASES = {
    "subject": "nsubj",
    "object": "dobj",
    "modifier": "amod",
    "auxiliary": "aux",
}

# A special pattern-edge label matching any dependency label.
_ANY_LABEL = "*"


@dataclass(frozen=True, slots=True)
class PatternEdge:
    """One edge constraint: ``head_var --label--> dep_var``."""

    head: str
    label: str
    dependent: str


@dataclass(frozen=True)
class PatternFilter:
    """A boolean condition over the variable bindings.

    ``op``: ``and``, ``or``, ``not``, ``cmp`` (with comparator and two
    operand sub-expressions), ``in`` (function expr + vocabulary name),
    ``func`` (POS/LEMMA/TEXT of a variable) or ``const``.
    """

    op: str
    args: tuple = ()

    def variables(self) -> set[str]:
        out: set[str] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.op == "func":
                out.add(node.args[1])
            else:
                for arg in node.args:
                    if isinstance(arg, PatternFilter):
                        stack.append(arg)
        return out

    def evaluate(
        self,
        binding: dict[str, DepNode],
        vocabularies: VocabularyRegistry,
    ) -> bool | str:
        if self.op == "const":
            return self.args[0]
        if self.op == "func":
            fn, var = self.args
            node = binding[var]
            if fn == "POS":
                return _pos_class(node)
            if fn == "LEMMA":
                return node.lemma
            if fn == "TEXT":
                return node.lower
            raise PatternSyntaxError(f"unknown function {fn}()")
        if self.op == "and":
            return all(a.evaluate(binding, vocabularies) for a in self.args)
        if self.op == "or":
            return any(a.evaluate(binding, vocabularies) for a in self.args)
        if self.op == "not":
            return not self.args[0].evaluate(binding, vocabularies)
        if self.op == "cmp":
            comparator, left, right = self.args
            lv = left.evaluate(binding, vocabularies)
            rv = right.evaluate(binding, vocabularies)
            return (lv == rv) if comparator == "=" else (lv != rv)
        if self.op == "in":
            expr, vocab_name = self.args
            value = expr.evaluate(binding, vocabularies)
            return str(value) in vocabularies[vocab_name]
        raise PatternSyntaxError(f"unknown filter op {self.op!r}")


def pos_class_of_tag(tag: str) -> str:
    """Map a PTB tag to the coarse class names filters use.

    Modal auxiliaries get their own class: a pattern anchored on a
    "verb" must not fire on the bare modal ("should" is the *marker* of
    syntactic individuality, not the habit verb).
    """
    if tag == "MD":
        return "modal"
    if tag.startswith("V"):
        return "verb"
    if tag.startswith("N") or tag in ("PRP", "WP"):
        return "noun"
    if tag.startswith("J"):
        return "adjective"
    if tag.startswith("R") or tag == "WRB":
        return "adverb"
    return tag.lower()


@lru_cache(maxsize=1)
def achievable_pos_classes() -> frozenset[str]:
    """Every class ``POS($x)`` can evaluate to, given the tagger's tagset.

    A filter comparing ``POS($x)`` against anything else can never match
    — PatternLint's unreachable-pattern check.  Pure function of the
    constant tagset, so it is computed once per process.
    """
    return frozenset(pos_class_of_tag(tag) for tag in TAGSET)


def _pos_class(node: DepNode) -> str:
    return pos_class_of_tag(node.tag)


@dataclass(frozen=True)
class IXPattern:
    """A parsed IX detection pattern."""

    name: str
    ix_type: str
    anchor: str
    edges: tuple[PatternEdge, ...]
    filter: PatternFilter | None = None
    uncertain: bool = False

    def variables(self) -> set[str]:
        out: set[str] = set()
        for edge in self.edges:
            out.add(edge.head)
            out.add(edge.dependent)
        if self.filter is not None:
            out |= self.filter.variables()
        return out

    def validate(self) -> None:
        if self.ix_type not in IX_TYPES:
            raise PatternSyntaxError(
                f"pattern {self.name}: unknown TYPE {self.ix_type!r}"
            )
        if self.anchor not in self.variables():
            raise PatternSyntaxError(
                f"pattern {self.name}: ANCHOR ${self.anchor} is not used"
            )
        if not self.edges and len(self.variables()) != 1:
            raise PatternSyntaxError(
                f"pattern {self.name}: edge-free patterns must use "
                f"exactly one variable"
            )
        for edge in self.edges:
            if edge.label not in DEPENDENCY_LABELS and edge.label != _ANY_LABEL:
                raise PatternSyntaxError(
                    f"pattern {self.name}: unknown edge label "
                    f"{edge.label!r}"
                )


# ---------------------------------------------------------------------------
# Pattern text parsing
# ---------------------------------------------------------------------------

_HEADER_RE = re.compile(
    r"^PATTERN\s+(?P<name>\w+)\s+TYPE\s+(?P<type>\w+)\s+"
    r"ANCHOR\s+\$(?P<anchor>\w+)(?P<uncertain>\s+UNCERTAIN)?\s*$"
)
_EDGE_RE = re.compile(r"^\$(?P<head>\w+)\s+(?P<label>[\w*]+)\s+\$(?P<dep>\w+)\s*$")

_FILTER_TOKEN_RE = re.compile(
    r"""
    (?P<func>POS|LEMMA|TEXT)
  | (?P<var>\$\w+)
  | (?P<vocab>V_\w+)
  | (?P<string>"[^"]*")
  | (?P<kw_in>\bin\b)
  | (?P<op>&&|\|\||!=|[=!()])
  | (?P<space>\s+)
""",
    re.VERBOSE,
)


class _FilterParser:
    """Recursive-descent parser for filter expressions."""

    def __init__(self, text: str, pattern_name: str):
        self.pattern_name = pattern_name
        self.tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _FILTER_TOKEN_RE.match(text, pos)
            if m is None:
                raise PatternSyntaxError(
                    f"pattern {pattern_name}: bad filter near "
                    f"{text[pos:pos + 12]!r}"
                )
            if m.lastgroup != "space":
                self.tokens.append((m.lastgroup, m.group()))
            pos = m.end()
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        tok = self.peek()
        if tok is None:
            raise PatternSyntaxError(
                f"pattern {self.pattern_name}: unexpected end of filter"
            )
        self.pos += 1
        return tok

    def accept(self, kind: str, value: str | None = None) -> bool:
        tok = self.peek()
        if tok and tok[0] == kind and (value is None or tok[1] == value):
            self.pos += 1
            return True
        return False

    def parse(self) -> PatternFilter:
        expr = self.parse_or()
        if self.peek() is not None:
            raise PatternSyntaxError(
                f"pattern {self.pattern_name}: trailing filter tokens"
            )
        return expr

    def parse_or(self) -> PatternFilter:
        left = self.parse_and()
        while self.accept("op", "||"):
            left = PatternFilter("or", (left, self.parse_and()))
        return left

    def parse_and(self) -> PatternFilter:
        left = self.parse_unary()
        while self.accept("op", "&&"):
            left = PatternFilter("and", (left, self.parse_unary()))
        return left

    def parse_unary(self) -> PatternFilter:
        if self.accept("op", "!"):
            return PatternFilter("not", (self.parse_unary(),))
        if self.accept("op", "("):
            inner = self.parse_or()
            if not self.accept("op", ")"):
                raise PatternSyntaxError(
                    f"pattern {self.pattern_name}: missing ')'"
                )
            return self.parse_postfix(inner)
        return self.parse_postfix(self.parse_primary())

    def parse_postfix(self, left: PatternFilter) -> PatternFilter:
        tok = self.peek()
        if tok and tok[0] == "op" and tok[1] in ("=", "!="):
            comparator = self.next()[1]
            right = self.parse_primary()
            return PatternFilter("cmp", (comparator, left, right))
        if tok and tok[0] == "kw_in":
            self.next()
            kind, vocab = self.next()
            if kind != "vocab":
                raise PatternSyntaxError(
                    f"pattern {self.pattern_name}: expected vocabulary "
                    f"after 'in', got {vocab!r}"
                )
            return PatternFilter("in", (left, vocab))
        return left

    def parse_primary(self) -> PatternFilter:
        kind, value = self.next()
        if kind == "func":
            if not self.accept("op", "("):
                raise PatternSyntaxError(
                    f"pattern {self.pattern_name}: expected '(' after "
                    f"{value}"
                )
            var_kind, var = self.next()
            if var_kind != "var":
                raise PatternSyntaxError(
                    f"pattern {self.pattern_name}: {value}() needs a "
                    f"variable"
                )
            if not self.accept("op", ")"):
                raise PatternSyntaxError(
                    f"pattern {self.pattern_name}: missing ')' after "
                    f"{value}()"
                )
            return PatternFilter("func", (value, var[1:]))
        if kind == "var":
            # Bare "$y in V_x" sugar: the node's lemma is tested.
            return PatternFilter("func", ("LEMMA", value[1:]))
        if kind == "string":
            return PatternFilter("const", (value[1:-1],))
        raise PatternSyntaxError(
            f"pattern {self.pattern_name}: unexpected filter token "
            f"{value!r}"
        )


def parse_patterns(text: str) -> list[IXPattern]:
    """Parse a pattern definition file into validated patterns.

    Blank lines separate patterns; ``#`` starts a comment line.
    """
    patterns: list[IXPattern] = []
    blocks: list[list[str]] = [[]]
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("#"):
            continue
        if not line:
            if blocks[-1]:
                blocks.append([])
            continue
        blocks[-1].append(line)
    if not blocks[-1]:
        blocks.pop()

    for block in blocks:
        header = _HEADER_RE.match(block[0])
        if header is None:
            raise PatternSyntaxError(
                f"bad pattern header: {block[0]!r}"
            )
        name = header.group("name")
        edges: list[PatternEdge] = []
        filter_expr: PatternFilter | None = None
        for line in block[1:]:
            if line.lower().startswith("filter"):
                body = line[len("filter"):].strip()
                if not (body.startswith("(") and body.endswith(")")):
                    raise PatternSyntaxError(
                        f"pattern {name}: filter must be parenthesised"
                    )
                if filter_expr is not None:
                    raise PatternSyntaxError(
                        f"pattern {name}: multiple filter lines"
                    )
                filter_expr = _FilterParser(body[1:-1], name).parse()
                continue
            edge = _EDGE_RE.match(line)
            if edge is None:
                raise PatternSyntaxError(
                    f"pattern {name}: bad edge line {line!r}"
                )
            label = edge.group("label")
            label = _LABEL_ALIASES.get(label, label)
            edges.append(
                PatternEdge(edge.group("head"), label, edge.group("dep"))
            )
        pattern = IXPattern(
            name=name,
            ix_type=header.group("type"),
            anchor=header.group("anchor"),
            edges=tuple(edges),
            filter=filter_expr,
            uncertain=bool(header.group("uncertain")),
        )
        pattern.validate()
        patterns.append(pattern)
    return patterns


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PatternMatch:
    """One successful match: the pattern and its variable bindings."""

    pattern: IXPattern
    binding: dict[str, DepNode]

    @property
    def anchor_node(self) -> DepNode:
        return self.binding[self.pattern.anchor]

    def nodes(self) -> set[DepNode]:
        return set(self.binding.values())


class PatternMatcher:
    """Matches IX patterns against dependency graphs.

    Matching a pattern means finding every assignment of its variables
    to graph nodes such that each pattern edge maps to a graph edge with
    the required label and the filter evaluates to true — subgraph
    matching restricted to connected patterns, which the paper's
    patterns always are.
    """

    def __init__(self, vocabularies: VocabularyRegistry):
        self._vocabularies = vocabularies

    def match(
        self, pattern: IXPattern, graph: DepGraph
    ) -> list[PatternMatch]:
        """All matches of ``pattern`` in ``graph``."""
        matches: list[PatternMatch] = []
        variables = sorted(pattern.variables())

        if not pattern.edges:
            # Node-only pattern: try every node as the single variable.
            if len(variables) != 1:
                raise PatternSyntaxError(
                    f"pattern {pattern.name}: edge-free patterns must use "
                    f"exactly one variable"
                )
            var = variables[0]
            for node in graph.nodes():
                binding = {var: node}
                if self._filter_ok(pattern, binding):
                    matches.append(PatternMatch(pattern, binding))
            return matches

        def backtrack(edge_idx: int, binding: dict[str, DepNode]) -> None:
            if edge_idx == len(pattern.edges):
                if self._filter_ok(pattern, binding):
                    matches.append(PatternMatch(pattern, dict(binding)))
                return
            edge = pattern.edges[edge_idx]
            for graph_edge in graph.edges():
                if edge.label != _ANY_LABEL and (
                    graph_edge.label != edge.label
                ):
                    continue
                head, dep = graph_edge.head, graph_edge.dependent
                if head.is_root:
                    continue
                bound_head = binding.get(edge.head)
                bound_dep = binding.get(edge.dependent)
                if bound_head is not None and bound_head.index != head.index:
                    continue
                if bound_dep is not None and bound_dep.index != dep.index:
                    continue
                added = []
                if bound_head is None:
                    binding[edge.head] = head
                    added.append(edge.head)
                if bound_dep is None:
                    binding[edge.dependent] = dep
                    added.append(edge.dependent)
                backtrack(edge_idx + 1, binding)
                for var in added:
                    del binding[var]

        backtrack(0, {})
        return matches

    def match_all(
        self, patterns: list[IXPattern], graph: DepGraph
    ) -> list[PatternMatch]:
        """All matches of all patterns, in pattern order."""
        out: list[PatternMatch] = []
        for pattern in patterns:
            out.extend(self.match(pattern, graph))
        return out

    def _filter_ok(
        self, pattern: IXPattern, binding: dict[str, DepNode]
    ) -> bool:
        if pattern.filter is None:
            return True
        return bool(pattern.filter.evaluate(binding, self._vocabularies))
