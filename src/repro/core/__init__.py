"""NL2CM core: the paper's primary contribution.

The translation framework (paper Figure 2, top to bottom):

* :mod:`repro.core.verification` — reject unsupported question forms;
* :mod:`repro.core.ixpatterns` — the declarative IX detection pattern
  language (SPARQL-like patterns over dependency graphs);
* :mod:`repro.core.ixdetect` — IXFinder + IXCreator;
* :mod:`repro.core.triples` — Individual Triple Creation;
* :mod:`repro.core.compose` — Query Composition;
* :mod:`repro.core.pipeline` — the NL2CM translator orchestrating all of
  the above together with the general query generator
  (:mod:`repro.freya`) and user interaction (:mod:`repro.ui`).

Attribute access is lazy (PEP 562) so that sibling packages
(:mod:`repro.freya` imports :mod:`repro.core.ir`) can be imported in any
order without cycles.
"""

from importlib import import_module

__all__ = [
    "IXPattern",
    "PatternMatcher",
    "parse_patterns",
    "IX",
    "IXFinder",
    "IXCreator",
    "IXDetector",
    "Verifier",
    "VerificationResult",
    "IndividualTripleCreator",
    "QueryComposer",
    "NL2CM",
    "TranslationResult",
    "TranslationTrace",
]

_LOCATIONS = {
    "IXPattern": "repro.core.ixpatterns",
    "PatternMatcher": "repro.core.ixpatterns",
    "parse_patterns": "repro.core.ixpatterns",
    "IX": "repro.core.ixdetect",
    "IXFinder": "repro.core.ixdetect",
    "IXCreator": "repro.core.ixdetect",
    "IXDetector": "repro.core.ixdetect",
    "Verifier": "repro.core.verification",
    "VerificationResult": "repro.core.verification",
    "IndividualTripleCreator": "repro.core.triples",
    "QueryComposer": "repro.core.compose",
    "NL2CM": "repro.core.pipeline",
    "TranslationResult": "repro.core.pipeline",
    "TranslationTrace": "repro.core.pipeline",
}


def __getattr__(name: str):
    module_name = _LOCATIONS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__():
    return sorted(__all__)
