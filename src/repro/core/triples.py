"""Individual Triple Creation (paper Sections 2.5 and 3).

Maps completed IX units to OASSIS-QL proto-triples via grammatical
patterns — not via ontology alignment, "since these parts do not
correspond to an ontology":

* a **habit** unit ("we should visit <places>") becomes
  ``[] <verb> <object>`` — the individual participant is projected out
  as ``[]`` "which is necessary for aggregating the answers of
  different crowd members about the same habit", and the modal
  auxiliary is dropped ("'should' does not appear in the query",
  footnote 2).  Temporal PPs of the unit add ``[] <prep> <object>``
  triples to the same fact-set (Figure 1 lines 10-11);
* an **opinion** unit ("the most interesting <places>") becomes
  ``<target> hasLabel "<opinion>"`` (Figure 1 line 6), where the label
  collects the opinion lemma plus any participant qualifier
  ("good for kids").
"""

from __future__ import annotations

from repro.core.ir import NodeTerm, ProtoTriple
from repro.core.ixdetect import IX
from repro.nlp.graph import DepGraph, DepNode
from repro.oassisql.ast import ANYTHING
from repro.rdf.ontology import KB
from repro.rdf.terms import Literal

__all__ = ["IndividualTripleCreator"]


class IndividualTripleCreator:
    """Turns IX units into proto-triples for the SATISFYING clause."""

    def __init__(self, vocabularies=None):
        from repro.data.vocabularies import load_vocabularies
        self._vocabularies = vocabularies or load_vocabularies()

    def create(self, graph: DepGraph, ixs: list[IX]) -> list[ProtoTriple]:
        """Proto-triples for all units; ``unit`` ids index into ``ixs``."""
        triples: list[ProtoTriple] = []
        for unit_id, ix in enumerate(ixs):
            if ix.kind == "habit":
                triples.extend(self._habit_triples(graph, ix, unit_id))
            else:
                triples.extend(self._opinion_triples(graph, ix, unit_id))
        return triples

    # -- habits -----------------------------------------------------------------

    def _habit_triples(
        self, graph: DepGraph, ix: IX, unit_id: int
    ) -> list[ProtoTriple]:
        predicate = KB[self._habit_predicate(graph, ix)]

        obj = self._object_term(ix)
        triples = [ProtoTriple(
            s=ANYTHING,
            p=predicate,
            o=obj,
            origin="individual",
            source_nodes=ix.nodes,
            unit=unit_id,
        )]
        for prep, pobj in ix.pps:
            if pobj.lemma in self._vocabularies["V_participant"]:
                # Participant context ("with your kids") is projected
                # out like the subject — no triple, the habit is asked
                # of each member directly.
                continue
            triples.append(ProtoTriple(
                s=ANYTHING,
                p=KB[prep.lemma],
                o=NodeTerm(pobj),
                origin="individual",
                source_nodes=frozenset({prep.index, pobj.index}),
                unit=unit_id,
            ))
        return triples

    @staticmethod
    def _habit_predicate(graph: DepGraph, ix: IX) -> str:
        """The fact-set's verb: "go hiking" mines the hiking habit."""
        verb = ix.anchor
        if verb.lemma == "go":
            for xcomp in graph.children(verb, "xcomp"):
                if xcomp.tag == "VBG":
                    return xcomp.lemma
        return verb.lemma

    @staticmethod
    def _object_term(ix: IX):
        if ix.object is None:
            return ANYTHING
        if ix.object.tag == "PRP":
            # A pronominal object is another projected participant.
            return ANYTHING
        return NodeTerm(ix.object)

    # -- opinions ----------------------------------------------------------------

    def _opinion_triples(
        self, graph: DepGraph, ix: IX, unit_id: int
    ) -> list[ProtoTriple]:
        label = self._opinion_label(ix)
        target = (
            NodeTerm(ix.modified) if ix.modified is not None else ANYTHING
        )
        return [ProtoTriple(
            s=target,
            p=KB.hasLabel,
            o=Literal(label),
            origin="individual",
            source_nodes=ix.nodes,
            unit=unit_id,
        )]

    @staticmethod
    def _opinion_label(ix: IX) -> str:
        """The mined label: opinion lemma + participant qualifiers.

        "most interesting" -> "interesting" (the superlative moves into
        the support qualifier); "good for kids" keeps its PP.
        """
        parts = [ix.anchor.lemma]
        for prep, pobj in ix.pps:
            parts.append(prep.lower)
            parts.append(pobj.lower)
        return " ".join(parts)
