"""The NL2CM translator: orchestration of the full pipeline (Figure 2).

The stages run top-down exactly as the architecture figure draws them:

1. verification;
2. NL parsing (POS tags + dependency graph);
3. IX detection (IXFinder -> user verification of uncertain IXs ->
   IXCreator);
4. general query generation (FREyA stand-in, may ask disambiguation);
5. individual triple creation;
6. query composition (may ask LIMIT/THRESHOLD/projection);
7. query lint (static analysis of the composed query; see
   :mod:`repro.analysis`).

Every stage deposits its intermediate output into a
:class:`TranslationTrace` — the admin-mode monitor of the demo
(Section 4.2) prints these to give "a peek under the hood".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.querylint import QueryLint
from repro.core.compose import ComposedQuery, QueryComposer
from repro.core.ixdetect import IX, IXCreator, IXFinder
from repro.core.ixpatterns import IXPattern
from repro.core.triples import IndividualTripleCreator
from repro.core.verification import VerificationResult, Verifier
from repro.data.ontologies import load_merged_ontology
from repro.data.vocabularies import VocabularyRegistry
from repro.errors import QueryLintError, VerificationError
from repro.freya.generator import FeedbackStore, GeneralQueryGenerator
from repro.nlp.depparse import DependencyParser
from repro.nlp.graph import DepGraph
from repro.oassisql.ast import OassisQuery
from repro.oassisql.printer import print_oassisql
from repro.rdf.ontology import Ontology
from repro.ui.interaction import (
    AutoInteraction,
    InteractionProvider,
    VerifyIXRequest,
)

__all__ = ["NL2CM", "TranslationResult", "TranslationTrace"]


@dataclass
class TraceEntry:
    """One admin-mode record: stage name, artifact, elapsed seconds."""

    stage: str
    artifact: Any
    elapsed: float

    def render(self) -> str:
        """Human-readable rendering for the admin monitor."""
        body = (
            self.artifact if isinstance(self.artifact, str)
            else repr(self.artifact)
        )
        return f"== {self.stage} ({self.elapsed * 1000:.1f} ms) ==\n{body}"


@dataclass
class TranslationTrace:
    """Ordered intermediate outputs passed between the modules."""

    entries: list[TraceEntry] = field(default_factory=list)

    def add(self, stage: str, artifact: Any, elapsed: float) -> None:
        self.entries.append(TraceEntry(stage, artifact, elapsed))

    def stages(self) -> list[str]:
        return [e.stage for e in self.entries]

    def render(self) -> str:
        return "\n\n".join(e.render() for e in self.entries)

    #: Entries whose elapsed time is already included in another entry
    #: ("ix-detection" aggregates its finder/creator sub-steps).
    SUBSUMED_STAGES = frozenset({"ix-finder", "ix-creator"})

    def timings(self) -> dict[str, float]:
        """Stage -> elapsed seconds (for the latency experiments)."""
        return {e.stage: e.elapsed for e in self.entries}

    def total_seconds(self) -> float:
        """Wall-clock total without double-counting aggregated stages."""
        return sum(
            e.elapsed for e in self.entries
            if e.stage not in self.SUBSUMED_STAGES
        )


@dataclass
class TranslationResult:
    """Everything a translation produced."""

    text: str
    query: OassisQuery
    query_text: str
    graph: DepGraph
    ixs: list[IX]
    composed: ComposedQuery
    trace: TranslationTrace
    #: The QueryLint report of the composed query (None when the
    #: translator was built with ``lint="off"``).
    lint: AnalysisReport | None = None

    @property
    def variable_phrases(self) -> dict[str, str]:
        """Which sentence phrase each query variable stands for."""
        return self.composed.variable_phrases


class NL2CM:
    """The NL-to-crowd-mining translator.

    Args:
        ontology: the general-knowledge ontology; defaults to the merged
            LinkedGeoData/DBpedia/food snapshots, the demo configuration.
        interaction: default answer provider; :class:`AutoInteraction`
            (administrator defaults, no user) if omitted.  Can be
            overridden per call.
        patterns: IX detection patterns; the packaged defaults if
            omitted.
        vocabularies: vocabulary registry for the patterns.
        feedback: FREyA-style disambiguation feedback store, shared
            across translations.
        lint: what to do with the post-composition QueryLint stage:
            ``"error"`` (default) raises :class:`QueryLintError` when the
            composed query has ERROR-level diagnostics, ``"warn"`` keeps
            the report on the result without raising, ``"off"`` skips
            the stage entirely.
    """

    #: Legal values of the ``lint`` constructor argument.
    LINT_MODES = ("error", "warn", "off")

    def __init__(
        self,
        ontology: Ontology | None = None,
        interaction: InteractionProvider | None = None,
        patterns: list[IXPattern] | None = None,
        vocabularies: VocabularyRegistry | None = None,
        feedback: FeedbackStore | None = None,
        lint: str = "error",
    ):
        if lint not in self.LINT_MODES:
            raise ValueError(
                f"lint must be one of {self.LINT_MODES}, got {lint!r}"
            )
        self.lint_mode = lint
        self.ontology = ontology or load_merged_ontology()
        self.interaction = interaction or AutoInteraction()
        self.verifier = Verifier()
        self.parser = DependencyParser()
        self.finder = IXFinder(patterns, vocabularies)
        self.creator = IXCreator(
            ontology=self.ontology,
            vocabularies=self.finder.vocabularies,
        )
        self.generator = GeneralQueryGenerator(
            self.ontology, feedback or FeedbackStore()
        )
        self.triple_creator = IndividualTripleCreator(
            vocabularies=self.finder.vocabularies
        )
        self.composer = QueryComposer()
        self.linter = QueryLint(ontology=self.ontology)

    # -- public API ------------------------------------------------------------

    def verify(self, text: str) -> VerificationResult:
        """Run only the verification step (used by the UI upfront)."""
        return self.verifier.verify(text)

    def translate(
        self,
        text: str,
        interaction: InteractionProvider | None = None,
    ) -> TranslationResult:
        """Translate an NL request into a well-formed OASSIS-QL query.

        Raises:
            VerificationError: for unsupported question forms (carries
                the rephrasing tips).
            TranslationError: when no query can be composed.
            QueryLintError: when the composed query has ERROR-level
                lint diagnostics and the translator was built with
                ``lint="error"`` (the default).  The raised error
                carries the full :class:`AnalysisReport`.
        """
        provider = interaction or self.interaction
        trace = TranslationTrace()

        verification = self._timed(
            trace, "verification", lambda: self.verifier.verify(text)
        )
        if not verification.ok:
            raise VerificationError(
                verification.message, tips=verification.tips
            )

        graph = self._timed(
            trace, "nl-parsing", lambda: self.parser.parse(text)
        )
        trace.entries[-1].artifact = graph.pretty()

        matches = self._timed(
            trace, "ix-finder", lambda: self.finder.find(graph)
        )
        finder_elapsed = trace.entries[-1].elapsed
        ixs = self._timed(
            trace, "ix-creator", lambda: self.creator.create(graph, matches)
        )
        creator_elapsed = trace.entries[-1].elapsed
        verify_start = time.perf_counter()
        ixs = self._verify_uncertain(graph, ixs, provider)
        verify_elapsed = time.perf_counter() - verify_start
        # The ix-detection entry summarizes the whole stage, so its
        # elapsed aggregates the finder, creator and user-verification
        # sub-steps (the first two also appear as their own entries).
        trace.add(
            "ix-detection",
            "\n".join(
                f"{ix.kind}[{','.join(sorted(ix.types))}] "
                f"{ix.span_text(graph)!r}"
                for ix in ixs
            ) or "(no individual expressions)",
            finder_elapsed + creator_elapsed + verify_elapsed,
        )

        general = self._timed(
            trace, "general-query-generator",
            lambda: self.generator.generate(graph, provider),
        )
        trace.entries[-1].artifact = "\n".join(
            str(t) for t in general.triples
        ) or "(no general triples)"

        individual = self._timed(
            trace, "individual-triple-creation",
            lambda: self.triple_creator.create(graph, ixs),
        )
        trace.entries[-1].artifact = "\n".join(
            str(t) for t in individual
        ) or "(no individual triples)"

        composed = self._timed(
            trace, "query-composition",
            lambda: self.composer.compose(
                graph, ixs, individual, general, provider
            ),
        )
        lint_report: AnalysisReport | None = None
        if self.lint_mode != "off":
            lint_report = self._timed(
                trace, "query-lint",
                lambda: self.linter.lint(composed.query),
            )
            trace.entries[-1].artifact = (
                lint_report.render() if lint_report.diagnostics
                else "(no diagnostics)"
            )
            if self.lint_mode == "error" and lint_report.has_errors:
                raise QueryLintError(lint_report)

        print_start = time.perf_counter()
        query_text = print_oassisql(composed.query)
        trace.add(
            "final-query", query_text, time.perf_counter() - print_start
        )

        return TranslationResult(
            text=text,
            query=composed.query,
            query_text=query_text,
            graph=graph,
            ixs=ixs,
            composed=composed,
            trace=trace,
            lint=lint_report,
        )

    # -- internals ----------------------------------------------------------------

    def _verify_uncertain(
        self,
        graph: DepGraph,
        ixs: list[IX],
        provider: InteractionProvider,
    ) -> list[IX]:
        """Ask the user to confirm IXs found by uncertain patterns."""
        uncertain = [ix for ix in ixs if ix.uncertain]
        if not uncertain:
            return ixs
        request = VerifyIXRequest(
            spans=tuple(ix.span_text(graph) for ix in uncertain),
            sentence=graph.sentence,
        )
        answers = list(provider.ask(request))
        rejected = {
            id(ix) for ix, keep in zip(uncertain, answers) if not keep
        }
        return [ix for ix in ixs if id(ix) not in rejected]

    @staticmethod
    def _timed(trace: TranslationTrace, stage: str, thunk):
        start = time.perf_counter()
        result = thunk()
        trace.add(stage, result, time.perf_counter() - start)
        return result
