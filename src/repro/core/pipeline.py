"""The NL2CM translator: orchestration of the full pipeline (Figure 2).

The stages run top-down exactly as the architecture figure draws them:

1. verification;
2. NL parsing (POS tags + dependency graph);
3. IX detection (IXFinder -> user verification of uncertain IXs ->
   IXCreator);
4. general query generation (FREyA stand-in, may ask disambiguation);
5. individual triple creation;
6. query composition (may ask LIMIT/THRESHOLD/projection);
7. query lint (static analysis of the composed query; see
   :mod:`repro.analysis`).

Every stage runs inside a span of a :class:`TranslationTrace` — a true
parent/child span tree (see :mod:`repro.obs.tracing`) that the
admin-mode monitor of the demo (Section 4.2) prints to give "a peek
under the hood", and that the serving layer aggregates into metrics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.kblint import OntologyLint
from repro.analysis.patternlint import PATTERN_RULES, PatternLint
from repro.analysis.registry import RuleRegistry
from repro.analysis.querylint import QueryLint
from repro.core.compose import ComposedQuery, QueryComposer
from repro.core.ixdetect import IX, IXCreator, IXFinder
from repro.core.ixpatterns import IXPattern
from repro.core.triples import IndividualTripleCreator
from repro.core.verification import VerificationResult, Verifier
from repro.data.ontologies import load_merged_ontology
from repro.data.vocabularies import VocabularyRegistry
from repro.errors import (
    InteractionProtocolError,
    KBLintError,
    QueryLintError,
    VerificationError,
)
from repro.obs.tracing import Span, SpanRecorder
from repro.resilience.policy import Deadline
from repro.freya.generator import FeedbackStore, GeneralQueryGenerator
from repro.nlp.depparse import DependencyParser
from repro.nlp.graph import DepGraph
from repro.oassisql.ast import OassisQuery
from repro.oassisql.printer import print_oassisql
from repro.rdf.ontology import Ontology
from repro.rdf.planner import QueryPlanner
from repro.ui.interaction import (
    AutoInteraction,
    InteractionProvider,
    VerifyIXRequest,
)

__all__ = ["NL2CM", "TranslationResult", "TranslationTrace"]


@lru_cache(maxsize=1)
def _default_ontology_lint() -> OntologyLint:
    """The default-configured OntologyLint every translator shares.

    The pipeline never mutates lint configuration, so one instance (and
    one rule registry) serves every construction; callers that want
    custom configuration build their own analyzers.
    """
    return OntologyLint()


@lru_cache(maxsize=1)
def _default_pattern_registry() -> RuleRegistry:
    """Default pattern-rule registry shared by every translator."""
    return RuleRegistry(PATTERN_RULES)


#: Name of the per-request root span that wraps the whole pipeline.
ROOT_SPAN = "translate"


class TranslationTrace(SpanRecorder):
    """One translation's span tree (the admin-mode trace).

    A :class:`~repro.obs.tracing.SpanRecorder` whose root span,
    ``"translate"``, covers the whole pipeline; each Figure-2 stage is
    a child, and ``ix-detection`` parents its ``ix-finder`` /
    ``ix-creator`` / ``ix-verification`` sub-steps.  Because a parent's
    duration *covers* its children (monotonic start/end, not a sum),
    nothing is ever double-counted: there is no subsumption list to
    maintain, and summing the **leaf** spans can never exceed the root.
    """

    #: Interactions answered by the resilience fallback during this
    #: translation (set by the serving layer; empty when resilience is
    #: off or nothing failed).  Each entry is a
    #: :class:`~repro.resilience.DegradationEvent`.
    degraded_events: tuple = ()

    @property
    def degraded(self) -> bool:
        """True when any interaction was answered by the fallback."""
        return bool(self.degraded_events)

    def stages(self) -> list[str]:
        """Span names in start order (the root span included)."""
        return [s.name for s in self.spans]

    def render(self) -> str:
        """Stage blocks, indented by tree depth, in start order."""
        return "\n\n".join(
            s.render(depth=self._depth(s)) for s in self.spans
        )

    def timings(self) -> dict[str, float]:
        """Stage name -> elapsed seconds, **last span wins** per name.

        Stage names are unique in the pipeline's tree, so the caveat
        only bites callers who reuse a name; those should key by span
        id via :meth:`timings_by_span` instead.  Parent spans appear
        with their covering duration — do not sum this dict (use
        :meth:`leaf_timings` or :meth:`total_seconds`).
        """
        return {s.name: s.elapsed for s in self.spans}

    def timings_by_span(self) -> dict[int, tuple[str, float]]:
        """Span id -> (name, elapsed); duplicate-name safe."""
        return {s.span_id: (s.name, s.elapsed) for s in self.spans}

    def leaf_timings(self) -> dict[str, float]:
        """Per-stage seconds summed over **leaf** spans only.

        Leaves tile the tree without overlap, so
        ``sum(leaf_timings().values()) <= total_seconds()`` holds by
        construction.
        """
        out: dict[str, float] = {}
        for span in self.leaves():
            out[span.name] = out.get(span.name, 0.0) + span.elapsed
        return out

    def total_seconds(self) -> float:
        """True wall-clock total: the root span's duration."""
        root = self.root
        if root is not None:
            return root.elapsed
        # Compatibility with hand-built traces that never opened a
        # root: top-level spans are disjoint, so their sum is the wall.
        return sum(
            s.elapsed for s in self.spans if s.parent_id is None
        )


@dataclass
class TranslationResult:
    """Everything a translation produced."""

    text: str
    query: OassisQuery
    query_text: str
    graph: DepGraph
    ixs: list[IX]
    composed: ComposedQuery
    trace: TranslationTrace
    #: The QueryLint report of the composed query (None when the
    #: translator was built with ``lint="off"``).
    lint: AnalysisReport | None = None

    @property
    def variable_phrases(self) -> dict[str, str]:
        """Which sentence phrase each query variable stands for."""
        return self.composed.variable_phrases


class NL2CM:
    """The NL-to-crowd-mining translator.

    Args:
        ontology: the general-knowledge ontology; defaults to the merged
            LinkedGeoData/DBpedia/food snapshots, the demo configuration.
        interaction: default answer provider; :class:`AutoInteraction`
            (administrator defaults, no user) if omitted.  Can be
            overridden per call.
        patterns: IX detection patterns; the packaged defaults if
            omitted.
        vocabularies: vocabulary registry for the patterns.
        feedback: FREyA-style disambiguation feedback store, shared
            across translations.
        lint: what to do with the post-composition QueryLint stage:
            ``"error"`` (default) raises :class:`QueryLintError` when the
            composed query has ERROR-level diagnostics, ``"warn"`` keeps
            the report on the result without raising, ``"off"`` skips
            the stage entirely.
        kb_lint: construction-time validation of the knowledge
            artifacts this translator will trust — OntologyLint over
            the ontology plus PatternLint over the pattern bank and
            vocabularies.  ``"warn"`` (default) keeps the merged report
            on :attr:`kb_lint_report`; ``"error"`` additionally raises
            :class:`~repro.errors.KBLintError` when the report has
            ERROR-level diagnostics (fail-fast, before the first
            translation can go wrong); ``"off"`` skips the check
            (``kb_lint_report`` stays ``None``).  Repeated
            constructions over the same cached ontology reuse the
            memoized OntologyLint analysis.
        planner: BGP evaluator for ontology queries made on behalf of
            this translator (e.g. the OASSIS engine the demo builds for
            the translated query): ``"cost"`` (default) creates a
            dedicated :class:`~repro.rdf.planner.QueryPlanner` — cached,
            statistics-ordered, compiled plans, with per-translator
            cache counters — ``"greedy"`` keeps the seed per-call
            greedy join for A/B comparison.
        tagger: the POS tagger behind the dependency parser:
            ``"rules"`` (default) keeps the deterministic rule/lexicon
            tagger — translation output is byte-identical to earlier
            releases — while ``"learned"`` swaps in the shared averaged
            perceptron trained on the builtin packs' gold corpora
            (:func:`~repro.nlp.learned.default_learned_tagger`), for
            A/B comparison via the accuracy harness.
        stage_timeout_ms: per-stage time budget.  Each stage span gets a
            :class:`~repro.resilience.Deadline`; a stage that exceeds it
            raises :class:`~repro.errors.DeadlineExceeded` (a typed
            ``ReproError``) naming the stage.  The check is cooperative
            — a synchronous stage cannot be interrupted mid-flight, so
            the deadline fires when the stage's span closes.  The
            aggregate ``ix-detection`` span shares the same budget (it
            covers its three sub-steps).  ``None`` (default) disables
            the checks entirely, keeping them off the hot path.
    """

    #: Legal values of the ``lint`` constructor argument.
    LINT_MODES = ("error", "warn", "off")

    #: Legal values of the ``kb_lint`` constructor argument.
    KB_LINT_MODES = ("error", "warn", "off")

    #: Legal values of the ``planner`` constructor argument.
    PLANNER_MODES = ("cost", "greedy")

    #: Legal values of the ``tagger`` constructor argument.
    TAGGER_MODES = ("rules", "learned")

    def __init__(
        self,
        ontology: Ontology | None = None,
        interaction: InteractionProvider | None = None,
        patterns: list[IXPattern] | None = None,
        vocabularies: VocabularyRegistry | None = None,
        feedback: FeedbackStore | None = None,
        lint: str = "error",
        kb_lint: str = "warn",
        planner: str = "cost",
        tagger: str = "rules",
        stage_timeout_ms: float | None = None,
    ):
        if lint not in self.LINT_MODES:
            raise ValueError(
                f"lint must be one of {self.LINT_MODES}, got {lint!r}"
            )
        if kb_lint not in self.KB_LINT_MODES:
            raise ValueError(
                f"kb_lint must be one of {self.KB_LINT_MODES}, "
                f"got {kb_lint!r}"
            )
        if planner not in self.PLANNER_MODES:
            raise ValueError(
                f"planner must be one of {self.PLANNER_MODES}, "
                f"got {planner!r}"
            )
        if tagger not in self.TAGGER_MODES:
            raise ValueError(
                f"tagger must be one of {self.TAGGER_MODES}, "
                f"got {tagger!r}"
            )
        if stage_timeout_ms is not None and stage_timeout_ms < 0:
            raise ValueError("stage_timeout_ms must be non-negative")
        self.lint_mode = lint
        self.planner_mode = planner
        # A dedicated planner (not the process-wide default) so this
        # translator's plan-cache counters are its own — the service
        # layer surfaces them per instance.
        self.planner = QueryPlanner() if planner == "cost" else None
        self.stage_timeout = (
            stage_timeout_ms / 1000.0 if stage_timeout_ms is not None
            else None
        )
        self.ontology = ontology or load_merged_ontology()
        self.interaction = interaction or AutoInteraction()
        self.verifier = Verifier()
        self.tagger_mode = tagger
        if tagger == "learned":
            # Imported lazily: training (cached per process) pulls in
            # the scenario-pack loader, which this module must not
            # depend on at import time.
            from repro.nlp.learned import default_learned_tagger

            self.parser = DependencyParser(
                tagger=default_learned_tagger()
            )
        else:
            self.parser = DependencyParser()
        self.finder = IXFinder(patterns, vocabularies)
        self.creator = IXCreator(
            ontology=self.ontology,
            vocabularies=self.finder.vocabularies,
        )
        self.generator = GeneralQueryGenerator(
            self.ontology, feedback or FeedbackStore()
        )
        self.triple_creator = IndividualTripleCreator(
            vocabularies=self.finder.vocabularies
        )
        self.composer = QueryComposer()
        self.linter = QueryLint(ontology=self.ontology)
        self.kb_lint_mode = kb_lint
        #: Merged ontology + pattern-bank report (None with "off").
        self.kb_lint_report: AnalysisReport | None = None
        if kb_lint != "off":
            self.kb_lint_report = self._lint_knowledge_artifacts()
            if kb_lint == "error" and self.kb_lint_report.has_errors:
                raise KBLintError(self.kb_lint_report)

    def _lint_knowledge_artifacts(self) -> AnalysisReport:
        """OntologyLint + PatternLint over this translator's artifacts.

        One merged report: the ontology diagnostics first (memoized per
        cached store, so repeated constructions pay once per process),
        then the pattern bank checked against the finder's resolved
        vocabulary registry.
        """
        report = _default_ontology_lint().lint(
            self.ontology, subject="knowledge base"
        )
        report.extend(
            PatternLint(
                vocabularies=self.finder.vocabularies,
                registry=_default_pattern_registry(),
            ).lint(self.finder.patterns, subject="knowledge base")
        )
        return report

    # -- public API ------------------------------------------------------------

    def verify(self, text: str) -> VerificationResult:
        """Run only the verification step (used by the UI upfront)."""
        return self.verifier.verify(text)

    @contextmanager
    def _stage(self, trace: TranslationTrace, name: str) -> Iterator[Span]:
        """A stage span with an optional per-stage deadline attached.

        When a stage timeout is configured, a fresh
        :class:`~repro.resilience.Deadline` rides on the span
        (``span.deadline``) so the trace carries the budget, and is
        checked as the span closes — the cooperative variant of a
        timeout for a synchronous stage.

        Raises:
            DeadlineExceeded: when the stage overran its budget.
        """
        if self.stage_timeout is None:
            with trace.span(name) as span:
                yield span
            return
        with trace.span(name) as span:
            span.deadline = Deadline(
                self.stage_timeout, clock=time.perf_counter
            )
            yield span
        span.deadline.check(name)

    def translate(
        self,
        text: str,
        interaction: InteractionProvider | None = None,
    ) -> TranslationResult:
        """Translate an NL request into a well-formed OASSIS-QL query.

        Raises:
            VerificationError: for unsupported question forms (carries
                the rephrasing tips).
            TranslationError: when no query can be composed.
            QueryLintError: when the composed query has ERROR-level
                lint diagnostics and the translator was built with
                ``lint="error"`` (the default).  The raised error
                carries the full :class:`AnalysisReport`.
        """
        provider = interaction or self.interaction
        trace = TranslationTrace()

        with trace.span(ROOT_SPAN) as root:
            root.artifact = text

            with self._stage(trace, "verification") as span:
                verification = self.verifier.verify(text)
                span.artifact = verification
            if not verification.ok:
                raise VerificationError(
                    verification.message, tips=verification.tips
                )

            with self._stage(trace, "nl-parsing") as span:
                graph = self.parser.parse(text)
                span.artifact = graph.pretty()

            # The ix-detection span *covers* its finder, creator and
            # user-verification children — parent/child spans replace
            # the old "aggregated entry + subsumption list" accounting.
            with self._stage(trace, "ix-detection") as detection:
                with self._stage(trace, "ix-finder") as span:
                    matches = self.finder.find(graph)
                    span.artifact = matches
                with self._stage(trace, "ix-creator") as span:
                    ixs = self.creator.create(graph, matches)
                    span.artifact = ixs
                with self._stage(trace, "ix-verification") as span:
                    kept = self._verify_uncertain(graph, ixs, provider)
                    span.artifact = (
                        f"{len(ixs) - len(kept)} uncertain IX(s) "
                        f"rejected by the user"
                        if len(kept) != len(ixs)
                        else "(all IXs kept)"
                    )
                    ixs = kept
                detection.artifact = "\n".join(
                    f"{ix.kind}[{','.join(sorted(ix.types))}] "
                    f"{ix.span_text(graph)!r}"
                    for ix in ixs
                ) or "(no individual expressions)"

            with self._stage(trace, "general-query-generator") as span:
                general = self.generator.generate(graph, provider)
                span.artifact = "\n".join(
                    str(t) for t in general.triples
                ) or "(no general triples)"

            with self._stage(trace, "individual-triple-creation") as span:
                individual = self.triple_creator.create(graph, ixs)
                span.artifact = "\n".join(
                    str(t) for t in individual
                ) or "(no individual triples)"

            with self._stage(trace, "query-composition") as span:
                composed = self.composer.compose(
                    graph, ixs, individual, general, provider
                )
                span.artifact = composed

            lint_report: AnalysisReport | None = None
            if self.lint_mode != "off":
                with self._stage(trace, "query-lint") as span:
                    lint_report = self.linter.lint(composed.query)
                    span.artifact = (
                        lint_report.render() if lint_report.diagnostics
                        else "(no diagnostics)"
                    )
                if self.lint_mode == "error" and lint_report.has_errors:
                    raise QueryLintError(lint_report)

            with self._stage(trace, "final-query") as span:
                query_text = print_oassisql(composed.query)
                span.artifact = query_text

        return TranslationResult(
            text=text,
            query=composed.query,
            query_text=query_text,
            graph=graph,
            ixs=ixs,
            composed=composed,
            trace=trace,
            lint=lint_report,
        )

    # -- internals ----------------------------------------------------------------

    def _verify_uncertain(
        self,
        graph: DepGraph,
        ixs: list[IX],
        provider: InteractionProvider,
    ) -> list[IX]:
        """Ask the user to confirm IXs found by uncertain patterns.

        Raises:
            InteractionProtocolError: when the provider answers with
                the wrong number of booleans.  Silently ``zip``-ing
                would leave unanswered IXs unconfirmed — a truncated
                answer is a provider bug and must surface as one.
        """
        uncertain = [ix for ix in ixs if ix.uncertain]
        if not uncertain:
            return ixs
        request = VerifyIXRequest(
            spans=tuple(ix.span_text(graph) for ix in uncertain),
            sentence=graph.sentence,
        )
        answers = list(provider.ask(request))
        if len(answers) != len(uncertain):
            raise InteractionProtocolError(
                f"IX verification needs {len(uncertain)} answer(s) for "
                f"spans {list(request.spans)}, but the provider "
                f"returned {len(answers)}"
            )
        rejected = {
            id(ix) for ix, keep in zip(uncertain, answers) if not keep
        }
        return [ix for ix in ixs if id(ix) not in rejected]
