"""End-user session: translate, edit, submit, track (paper Figure 6).

"The UI of NL2CM allows manually editing the output query.  For
convenience, the design of NL2CM allows connecting it directly to
OASSIS ... This further enables the user to submit the query via the
NL2CM UI to be executed with the crowd, track the progress of the
evaluation process" (Section 3).

:class:`NL2CMSession` is that connection: it owns a translator and an
engine, keeps a history of asked questions, lets the user replace the
generated query text before submission, and reports per-execution
progress (crowd tasks issued, bindings found).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import NL2CM, TranslationResult
from repro.errors import OassisQLError, ReproError
from repro.oassis.engine import OassisEngine, QueryResult
from repro.oassisql import OassisQuery, parse_oassisql, print_oassisql
from repro.ui.interaction import InteractionProvider

__all__ = ["NL2CMSession", "SessionEntry"]


@dataclass
class SessionEntry:
    """One question's lifecycle within a session."""

    question: str
    translation: TranslationResult
    query: OassisQuery
    edited: bool = False
    execution: QueryResult | None = None

    @property
    def query_text(self) -> str:
        return print_oassisql(self.query)

    @property
    def executed(self) -> bool:
        return self.execution is not None


class NL2CMSession:
    """A user session over the translator and the OASSIS engine.

    Args:
        nl2cm: the translator (a default one is built if omitted).
        engine: the OASSIS engine to submit queries to; without one,
            :meth:`submit` raises — translation-only sessions are fine.
    """

    def __init__(
        self,
        nl2cm: NL2CM | None = None,
        engine: OassisEngine | None = None,
    ):
        self.nl2cm = nl2cm or NL2CM()
        self.engine = engine
        self.history: list[SessionEntry] = []

    # -- the Figure 3 -> Figure 6 flow -------------------------------------------

    def ask(
        self,
        question: str,
        interaction: InteractionProvider | None = None,
    ) -> SessionEntry:
        """Translate a question and append it to the session history.

        Raises:
            VerificationError: for unsupported forms (with tips).
            TranslationError: when no query can be composed.
        """
        translation = self.nl2cm.translate(question, interaction)
        entry = SessionEntry(
            question=question,
            translation=translation,
            query=translation.query,
        )
        self.history.append(entry)
        return entry

    def edit(self, entry: SessionEntry, query_text: str) -> SessionEntry:
        """Replace an entry's query with manually edited text.

        The text is parsed and validated before it replaces the
        generated query, so the UI can reject a broken edit in place.

        Raises:
            OassisQLError: if the edited text is not a valid query.
        """
        entry.query = parse_oassisql(query_text)
        entry.edited = True
        entry.execution = None
        return entry

    def submit(self, entry: SessionEntry) -> QueryResult:
        """Execute an entry's query with the crowd via OASSIS.

        Raises:
            ReproError: if the session has no engine attached.
        """
        if self.engine is None:
            raise ReproError(
                "this session is not connected to an OASSIS engine"
            )
        entry.execution = self.engine.evaluate(entry.query)
        return entry.execution

    # -- progress tracking ----------------------------------------------------------

    def progress(self, entry: SessionEntry) -> dict[str, object]:
        """Progress summary for the OASSIS tracking screen."""
        if entry.execution is None:
            return {"status": "not submitted", "tasks": 0, "results": 0}
        return {
            "status": "completed",
            "tasks": entry.execution.tasks_used,
            "results": len(entry.execution.accepted),
            "candidates": entry.execution.where_bindings,
        }

    def transcript(self) -> list[str]:
        """A printable summary of the session, newest last."""
        lines: list[str] = []
        for i, entry in enumerate(self.history, 1):
            status = self.progress(entry)["status"]
            edited = " (edited)" if entry.edited else ""
            lines.append(
                f"{i}. {entry.question!r} -> "
                f"{len(entry.query.satisfying)} mined pattern(s)"
                f"{edited}, {status}"
            )
        return lines
