"""Typed interaction requests and answer providers (paper Section 4.1).

Every optional interaction point of the translation pipeline is a
request object with a sensible default, so the system "may be configured
to always skip certain interaction points, or skip them when there is no
uncertainty".  Providers turn requests into answers; the pipeline
records every exchange in its trace for the admin-mode display.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import InteractionRequired, InvalidAnswerError
from repro.rdf.ontology import EntityMatch

__all__ = [
    "VerifyIXRequest", "DisambiguationRequest", "LimitRequest",
    "ThresholdRequest", "ProjectionRequest", "InteractionRequest",
    "InteractionProvider", "AutoInteraction", "ScriptedInteraction",
    "ConsoleInteraction",
]


@dataclass(frozen=True)
class VerifyIXRequest:
    """Figure 4: confirm which uncertain IXs are really individual.

    ``spans`` are the highlighted phrases.  The answer is a list of
    booleans, one per span; the default accepts all.
    """

    spans: tuple[str, ...]
    sentence: str = ""

    def default(self) -> list[bool]:
        return [True] * len(self.spans)

    def prompt(self) -> str:
        listed = "; ".join(f"[{i}] {s}" for i, s in enumerate(self.spans))
        return (
            "Should the crowd be asked about these parts? "
            f"{listed} (y/n per part)"
        )


@dataclass(frozen=True)
class DisambiguationRequest:
    """FREyA's clarification dialogue: which entity did you mean?

    The answer is an index into ``candidates``; default 0 (top-ranked).
    """

    phrase: str
    candidates: tuple[EntityMatch, ...]
    sentence: str = ""

    def default(self) -> int:
        return 0

    def prompt(self) -> str:
        listed = "; ".join(
            f"[{i}] {c.label}" for i, c in enumerate(self.candidates)
        )
        return f'Which "{self.phrase}" did you mean? {listed}'


@dataclass(frozen=True)
class LimitRequest:
    """Figure 5: the k of a top-k support selection."""

    description: str
    default_value: int = 5

    def default(self) -> int:
        return self.default_value

    def prompt(self) -> str:
        return (
            f"How many results do you want for {self.description}? "
            f"(default {self.default_value})"
        )


@dataclass(frozen=True)
class ThresholdRequest:
    """Figure 5 (lower half): minimal frequency of a mined habit."""

    description: str
    default_value: float = 0.1

    def default(self) -> float:
        return self.default_value

    def prompt(self) -> str:
        return (
            f"What is the minimal frequency for {self.description}? "
            f"(0-1, default {self.default_value})"
        )


@dataclass(frozen=True)
class ProjectionRequest:
    """Section 4.1's last point: which terms should return instances?

    ``variables`` pairs each query variable with the phrase it stands
    for.  The answer is the list of variable names to keep; the default
    keeps all (the SELECT clause "does not project out any variables").
    """

    variables: tuple[tuple[str, str], ...]

    def default(self) -> list[str]:
        return [name for name, _ in self.variables]

    def prompt(self) -> str:
        listed = "; ".join(f"${v} ({p})" for v, p in self.variables)
        return f"For which terms do you want instances? {listed}"


InteractionRequest = (
    VerifyIXRequest | DisambiguationRequest | LimitRequest
    | ThresholdRequest | ProjectionRequest
)


@runtime_checkable
class InteractionProvider(Protocol):
    """Anything that can answer interaction requests."""

    def ask(self, request: InteractionRequest) -> Any:
        """Return the answer for ``request`` (type depends on request)."""
        ...  # pragma: no cover


class AutoInteraction:
    """Answers every request with its default — zero user effort.

    Administrator defaults for LIMIT/THRESHOLD can be overridden, which
    is the paper's "default values that are pre-configured at the system
    administrator level".
    """

    def __init__(self, default_limit: int = 5,
                 default_threshold: float = 0.1):
        self.default_limit = default_limit
        self.default_threshold = default_threshold

    def cache_fingerprint(self) -> str:
        """Stable identity for the translation cache.

        Two translations under providers with equal fingerprints answer
        every interaction identically, so their results are
        interchangeable.  Stateful providers (scripted, console) define
        no fingerprint and therefore bypass the cache.
        """
        return (
            f"auto:limit={self.default_limit}"
            f":threshold={self.default_threshold}"
        )

    def ask(self, request: InteractionRequest) -> Any:
        if isinstance(request, LimitRequest):
            return self.default_limit
        if isinstance(request, ThresholdRequest):
            return self.default_threshold
        return request.default()


class ScriptedInteraction:
    """Replays a fixed list of answers, in request order.

    Used by tests and the scripted demo.  When the script runs out,
    either falls back to defaults (``strict=False``, the default) or
    raises :class:`~repro.errors.InteractionRequired`.
    """

    def __init__(self, answers: list[Any], strict: bool = False):
        self._answers = list(answers)
        self._strict = strict
        self.transcript: list[tuple[InteractionRequest, Any]] = []
        # One lock makes pop-answer + append-transcript atomic, so a
        # script shared across batch workers hands each answer to
        # exactly one request and the transcript stays consistent with
        # the answers actually given.
        self._lock = threading.Lock()

    def ask(self, request: InteractionRequest) -> Any:
        with self._lock:
            if self._answers:
                answer = self._answers.pop(0)
            elif self._strict:
                raise InteractionRequired(
                    f"script exhausted at request: {request.prompt()}"
                )
            else:
                answer = AutoInteraction().ask(request)
            self.transcript.append((request, answer))
        return answer


class ConsoleInteraction:
    """Interactive prompts on stdin/stdout, for the runnable examples.

    Garbage input never crashes a translation: an answer that does not
    parse raises the typed :class:`~repro.errors.InvalidAnswerError`
    internally, and :meth:`ask` re-prompts up to ``max_attempts`` times
    before falling back to the request's default — the same graceful
    path an empty answer takes.

    Args:
        max_attempts: parse attempts before giving up on the user.
        input_fn / print_fn: injectable I/O, for tests.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        input_fn: Callable[[str], str] = input,
        print_fn: Callable[[str], None] = print,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self._input = input_fn
        self._print = print_fn

    def ask(self, request: InteractionRequest) -> Any:
        self._print(request.prompt())
        for attempt in range(self.max_attempts):
            raw = self._input("> ").strip()
            if not raw:
                break
            try:
                return self._parse(request, raw)
            except InvalidAnswerError as err:
                remaining = self.max_attempts - attempt - 1
                if remaining:
                    self._print(
                        f"Sorry, {err}; try again or press Enter "
                        f"for the default."
                    )
                else:
                    self._print(f"Sorry, {err}; using the default.")
        return AutoInteraction().ask(request)

    @staticmethod
    def _parse(request: InteractionRequest, raw: str) -> Any:
        if isinstance(request, VerifyIXRequest):
            flags = [c in "yY1t" for c in raw.replace(" ", "")]
            flags += [True] * (len(request.spans) - len(flags))
            return flags[: len(request.spans)]
        if isinstance(request, DisambiguationRequest):
            index = _parse_int(raw, "a candidate index")
            if not 0 <= index < len(request.candidates):
                raise InvalidAnswerError(
                    f"candidate index {index} out of range"
                )
            return index
        if isinstance(request, LimitRequest):
            value = _parse_int(raw, "a result limit")
            if value <= 0:
                raise InvalidAnswerError("limit must be positive")
            return value
        if isinstance(request, ThresholdRequest):
            value = _parse_float(raw, "a frequency threshold")
            if not 0 <= value <= 1:
                raise InvalidAnswerError("threshold must be in [0, 1]")
            return value
        if isinstance(request, ProjectionRequest):
            return [v.strip().lstrip("$") for v in raw.split(",")]
        raise TypeError(f"unknown request type {type(request).__name__}")


def _parse_int(raw: str, what: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise InvalidAnswerError(
            f"{raw!r} is not a whole number ({what} is expected)"
        ) from None


def _parse_float(raw: str, what: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise InvalidAnswerError(
            f"{raw!r} is not a number ({what} is expected)"
        ) from None
