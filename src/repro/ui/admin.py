"""Admin-monitor rendering of the serving-layer statistics.

The demo's admin mode (Section 4.2) gives "a peek under the hood" of a
single translation; :func:`render_service_stats` is the same peek for
the serving layer — request counters, cache effectiveness and per-stage
latency aggregates of a :class:`~repro.service.service.ServiceStats`
snapshot, as a plain-text panel the CLI and examples can print.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import AnalysisReport
    from repro.obs.metrics import MetricsRegistry
    from repro.rdf.planner import PlanExplain
    from repro.service.service import ServiceStats
    from repro.serving.stats import ServingStats

__all__ = [
    "render_analysis_report", "render_metrics", "render_plan",
    "render_service_stats", "render_serving_stats",
]

# Pipeline order, parents before their children; unknown stages follow
# alphabetically and pipeline-overhead closes the table.
_STAGE_ORDER = (
    "verification", "nl-parsing", "ix-detection", "ix-finder",
    "ix-creator", "ix-verification", "general-query-generator",
    "individual-triple-creation", "query-composition", "query-lint",
    "final-query", "pipeline-overhead",
)


def _rows_to_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def render_service_stats(stats: "ServiceStats") -> str:
    """A plain-text admin panel for a service stats snapshot."""
    lines = ["== translation service =="]
    lines.append(
        f"requests: {stats.requests}  "
        f"translated: {stats.translated}  "
        f"from cache: {stats.served_from_cache}  "
        f"deduplicated: {stats.deduplicated}  "
        f"errors: {stats.errors}"
    )
    lines.append(
        f"workers: {stats.workers}  "
        f"batches: {stats.batches}  "
        f"batch throughput: {stats.batch_throughput_qps:.1f} q/s  "
        f"mean translation: {stats.mean_translation_ms:.1f} ms"
    )
    if stats.cache is not None:
        c = stats.cache
        warmed = f"warmed: {c.warmed}  " if c.warmed else ""
        lines.append(
            f"cache: {c.size}/{c.capacity} entries  "
            f"hits: {c.hits}  misses: {c.misses}  "
            f"evictions: {c.evictions}  "
            f"{warmed}"
            f"hit rate: {c.hit_rate:.1%}"
        )
    else:
        lines.append("cache: disabled")

    lines.append(
        f"lint diagnostics: {stats.lint_errors} error(s)  "
        f"{stats.lint_warnings} warning(s)  "
        f"{stats.lint_infos} info(s)"
    )
    if stats.kb_lint_errors or stats.kb_lint_warnings or stats.kb_lint_infos:
        lines.append(
            f"kb lint: {stats.kb_lint_errors} error(s)  "
            f"{stats.kb_lint_warnings} warning(s)  "
            f"{stats.kb_lint_infos} info(s)"
        )
    if stats.slow_queries:
        lines.append(f"slow queries: {stats.slow_queries}")
    if stats.degraded or stats.retries or stats.breaker_rejections:
        lines.append(
            f"resilience: {stats.degraded} degraded  "
            f"{stats.retries} retrie(s)  "
            f"{stats.breaker_rejections} breaker rejection(s)"
        )
    if stats.plans_compiled or stats.plan_cache_hits:
        lines.append(
            f"query plans: {stats.plans_compiled} compiled  "
            f"cache hits: {stats.plan_cache_hits}  "
            f"misses: {stats.plan_cache_misses}  "
            f"invalidated: {stats.plan_cache_invalidations}  "
            f"hit rate: {stats.plan_cache_hit_rate:.1%}"
        )

    if stats.stages:
        ordered = [s for s in _STAGE_ORDER if s in stats.stages]
        ordered += sorted(set(stats.stages) - set(ordered))
        rows = [
            [stage,
             "leaf" if stats.stages[stage].leaf else "self",
             f"{stats.stages[stage].mean_ms:.2f}",
             str(stats.stages[stage].count)]
            for stage in ordered
        ]
        lines.append("")
        lines.append(_rows_to_table(
            ["stage", "kind", "mean ms", "n"], rows
        ))
    return "\n".join(lines)


def render_serving_stats(stats: "ServingStats") -> str:
    """The sharded-serving admin panel: the tier-level counters and
    identity check, one row per shard, then the merged service panel.

    This is what ``GET /stats?format=panel`` returns and what the CLI's
    ``--serve`` mode prints on shutdown.
    """
    lines = ["== sharded serving =="]
    identity = "holds" if stats.requests == stats.accounted else (
        f"VIOLATED ({stats.accounted} accounted)"
    )
    lines.append(
        f"requests: {stats.requests}  "
        f"errors: {stats.errors}  "
        f"shed: {stats.shed} "
        f"(queue {stats.shed_queue_full} / "
        f"breaker {stats.shed_breaker_open})  "
        f"identity: {identity}"
    )
    lines.append(
        f"shards: {stats.alive_shards}/{len(stats.shards)} alive  "
        f"restarts: {stats.restarts}  "
        f"dispatch errors: {stats.dispatch_errors}  "
        f"deadlines expired: {stats.deadline_expired}  "
        f"shed rate: {stats.shed_rate:.1%}"
    )
    warmups = (
        stats.cache_warmups_ok + stats.cache_warmups_empty
        + stats.cache_warmups_failed
    )
    if warmups:
        lines.append(
            f"cache warm-ups: {stats.cache_warmups_ok} ok / "
            f"{stats.cache_warmups_empty} empty / "
            f"{stats.cache_warmups_failed} failed  "
            f"entries replayed: {stats.cache_warmup_entries}"
        )
    if stats.shards:
        rows = [
            [
                str(shard.shard),
                str(shard.pid) if shard.pid is not None else "-",
                "up" if shard.alive else "DOWN",
                str(shard.pending),
                str(shard.restarts),
                str(shard.stats.requests),
                str(shard.stats.served_from_cache),
                str(shard.stats.errors),
            ]
            for shard in stats.shards
        ]
        lines.append("")
        lines.append(_rows_to_table(
            ["shard", "pid", "state", "pending", "restarts",
             "requests", "cached", "errors"],
            rows,
        ))
    lines.append("")
    lines.append(render_service_stats(stats.total))
    return "\n".join(lines)


def render_plan(explain: "PlanExplain") -> str:
    """The admin-panel plan view of one explained BGP evaluation.

    Shows the chosen join order, the planner's estimated cardinality
    next to the rows each step actually produced, and whether the
    request hit the plan cache — the query-planning sibling of the
    per-translation "peek under the hood".
    """
    return explain.render()


def render_metrics(registry: "MetricsRegistry") -> str:
    """A live metrics panel straight off a registry.

    One table per instrument kind: counters (per labeled series),
    gauges, and histograms with count / mean / estimated p50 and p95 —
    the admin-mode view of exactly what ``/metrics`` exposes.
    """
    counters: list[list[str]] = []
    gauges: list[list[str]] = []
    histograms: list[list[str]] = []
    for family in registry:
        if family.kind == "gauge" and family._callback is not None:
            family.labels()  # materialize, as expose() does
        for labels, child in family.children():
            series = family.name
            if labels:
                series += "{" + ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
            if family.kind == "counter":
                counters.append([series, f"{child.value:g}"])
            elif family.kind == "gauge":
                gauges.append([series, f"{child.value:g}"])
            elif family.kind == "histogram":
                count = child.count
                mean = child.sum / count if count else 0.0
                histograms.append([
                    series,
                    str(count),
                    f"{mean * 1000:.2f}",
                    f"{child.quantile(0.5) * 1000:.2f}",
                    f"{child.quantile(0.95) * 1000:.2f}",
                ])
    lines = ["== metrics =="]
    if counters:
        lines.append(_rows_to_table(["counter", "value"], counters))
    if gauges:
        lines.append("")
        lines.append(_rows_to_table(["gauge", "value"], gauges))
    if histograms:
        lines.append("")
        lines.append(_rows_to_table(
            ["histogram", "n", "mean ms", "p50 ms", "p95 ms"],
            histograms,
        ))
    if len(lines) == 1:
        lines.append("(no series recorded yet)")
    return "\n".join(lines)


def render_analysis_report(report: "AnalysisReport") -> str:
    """A plain-text admin panel for a static-analysis report.

    One table row per diagnostic (severity, rule, location, message),
    then the summary line — the tabular sibling of
    :meth:`~repro.analysis.diagnostics.AnalysisReport.render`.
    """
    lines = [f"== lint: {report.subject} =="]
    if report.diagnostics:
        rows = [
            [
                str(d.severity),
                d.rule,
                str(d.location) if d.location else "-",
                d.message,
            ]
            for d in report.diagnostics
        ]
        lines.append(_rows_to_table(
            ["severity", "rule", "location", "message"], rows
        ))
    lines.append(report.summary())
    return "\n".join(lines)
