"""User-interaction layer: the paper's UI, minus the browser.

NL2CM's web UI (Figures 3-6) drives four optional interaction points:
IX verification, entity disambiguation, LIMIT/THRESHOLD selection and
variable projection.  This package models each point as a typed request
and lets callers plug in a provider:

* :class:`AutoInteraction` — administrator defaults, no user (the
  "always skip" configuration of Section 4.1);
* :class:`ScriptedInteraction` — pre-recorded answers, for tests and the
  scripted demo;
* :class:`ConsoleInteraction` — interactive terminal prompts, for the
  runnable examples.

:class:`NL2CMSession` adds the Figure 6 flow: manual query editing and
direct submission to the OASSIS engine.

Attribute access is lazy (PEP 562): the session module imports the
pipeline, which imports the interaction module — laziness breaks the
cycle regardless of import order.
"""

from importlib import import_module

__all__ = [
    "AutoInteraction",
    "ConsoleInteraction",
    "DisambiguationRequest",
    "InteractionProvider",
    "LimitRequest",
    "NL2CMSession",
    "ProjectionRequest",
    "ScriptedInteraction",
    "SessionEntry",
    "ThresholdRequest",
    "VerifyIXRequest",
    "render_analysis_report",
    "render_service_stats",
]

_LOCATIONS = {
    "AutoInteraction": "repro.ui.interaction",
    "ConsoleInteraction": "repro.ui.interaction",
    "DisambiguationRequest": "repro.ui.interaction",
    "InteractionProvider": "repro.ui.interaction",
    "LimitRequest": "repro.ui.interaction",
    "ProjectionRequest": "repro.ui.interaction",
    "ScriptedInteraction": "repro.ui.interaction",
    "ThresholdRequest": "repro.ui.interaction",
    "VerifyIXRequest": "repro.ui.interaction",
    "NL2CMSession": "repro.ui.session",
    "SessionEntry": "repro.ui.session",
    "render_analysis_report": "repro.ui.admin",
    "render_service_stats": "repro.ui.admin",
}


def __getattr__(name: str):
    module_name = _LOCATIONS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.ui' has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__():
    return sorted(__all__)
