"""Deterministic typed-dependency parser for English questions.

This module replaces the Stanford Parser (paper Section 2.2) for the
register NL2CM targets: forum-style questions and requests.  It is a
transparent rule cascade rather than a statistical parser — in the same
spirit as the paper's preference for declarative, inspectable components:

1. **Chunking** — group tokens into base noun phrases (with internal
   ``det``/``amod``/``nn``/``num``/``poss`` edges), verb groups (main verb
   plus ``aux``/``auxpass``/``neg``), adjective phrases and loose tokens.
2. **Apposition merge** — proper-noun chunks separated by commas
   ("Forest Hotel, Buffalo") join into one entity-bearing NP via
   ``appos`` edges, which is what lets the entity linker see the full
   mention span.
3. **Clause assembly** — find the main predicate and attach subjects,
   objects, wh-phrases, prepositional phrases, relative clauses and
   conjunctions, handling the question constructions of the domain:
   copular wh-questions ("What are the best places ..."), subject-aux
   inversion ("What camera should I buy?"), yes/no questions
   ("Is chocolate milk good for kids?"), adverbial wh-questions
   ("Where do you go hiking?") and imperatives ("Recommend a hotel ...").

The output is a :class:`repro.nlp.graph.DepGraph` whose labels follow the
Stanford typed-dependencies naming (see ``DEPENDENCY_LABELS``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParsingError
from repro.nlp.graph import DepGraph, DepNode
from repro.nlp.lemma import Lemmatizer
from repro.nlp.postag import PosTagger, TaggedToken
from repro.nlp.tokenizer import Tokenizer

__all__ = ["DependencyParser", "parse", "TEMPORAL_NOUNS"]

# Nouns that denote times/seasons; PPs whose object is temporal attach to
# the clause verb rather than the preceding noun ("visit Buffalo in the
# fall" -> prep(visit, in)).  Also consumed by the IX detector: a
# temporal PP on an individual verb joins the habit's fact-set.
_TEMPORAL_NOUNS = {
    "fall", "autumn", "winter", "spring", "summer", "morning", "evening",
    "afternoon", "night", "noon", "midnight", "weekend", "weekday", "day",
    "week", "month", "year", "season", "holiday", "vacation", "christmas",
    "easter", "january", "february", "march", "april", "may", "june",
    "july", "august", "september", "october", "november", "december",
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
    "sunday", "today", "tomorrow", "yesterday", "hour", "minute",
    # Meals behave temporally in habit PPs: "eat X for breakfast".
    "breakfast", "lunch", "dinner", "brunch",
}

#: Public view of the temporal-noun set.
TEMPORAL_NOUNS = frozenset(_TEMPORAL_NOUNS)

_COPULA_LEMMAS = {"be"}
_AUX_LEMMAS = {"be", "have", "do", "will", "can", "may", "must", "shall",
               "should", "ought", "need", "not"}

_SUBJECT_TAGS = ("NN", "NNS", "NNP", "NNPS", "PRP", "WP", "WDT", "CD", "DT")


@dataclass
class _Chunk:
    """A contiguous span grouped by the chunker.

    ``kind`` is one of ``NP`` (noun phrase), ``VG`` (verb group), ``ADJP``
    (predicative adjective phrase), ``PREP`` (preposition or TO), ``ADV``
    (loose adverb), ``CC``, ``PUNCT`` or ``OTHER``.  ``head`` is the
    chunk's head node; ``nodes`` all member nodes in order.
    """

    kind: str
    head: DepNode
    nodes: list[DepNode] = field(default_factory=list)
    # For VG: whether the main verb is a bare copula ("is", "are").
    is_copula: bool = False
    # For NP: whether the phrase is/starts with a wh-word.
    is_wh: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {' '.join(n.text for n in self.nodes)}>"


class DependencyParser:
    """Rule-cascade dependency parser producing Stanford-style graphs.

    The parser owns its tokenizer, tagger and lemmatizer; pass custom
    instances to extend the lexicon with domain terms::

        parser = DependencyParser(tagger=PosTagger(extra_lexicon={...}))
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        tagger: PosTagger | None = None,
        lemmatizer: Lemmatizer | None = None,
    ):
        self._tokenizer = tokenizer or Tokenizer()
        self._tagger = tagger or PosTagger()
        self._lemmatizer = lemmatizer or Lemmatizer()

    # -- public API ------------------------------------------------------------

    def parse(self, text: str) -> DepGraph:
        """Parse ``text`` (one sentence) into a dependency graph.

        Raises:
            ParsingError: if no predicate or head could be identified.
        """
        tokens = self._tokenizer.tokenize(text)
        tagged = self._tagger.tag(tokens)
        return self.parse_tagged(tagged, sentence=text)

    def parse_tagged(
        self, tagged: list[TaggedToken], sentence: str = ""
    ) -> DepGraph:
        """Parse pre-tagged tokens (useful for tagger experiments)."""
        graph = DepGraph(sentence or " ".join(t.text for t in tagged))
        nodes = []
        for tt in tagged:
            node = DepNode(
                index=tt.token.index,
                text=tt.token.text,
                lemma=self._lemmatizer.lemmatize(tt.token.text, tt.tag),
                tag=tt.tag,
                start=tt.token.start,
                end=tt.token.end,
            )
            graph.add_node(node)
            nodes.append(node)

        chunks = self._chunk(graph, nodes)
        chunks = self._merge_appositions(graph, chunks)
        self._assemble(graph, chunks)
        self._attach_stranded(graph, nodes)
        return graph

    # -- stage 1: chunking -------------------------------------------------------

    def _chunk(self, graph: DepGraph, nodes: list[DepNode]) -> list[_Chunk]:
        chunks: list[_Chunk] = []
        i = 0
        n = len(nodes)
        while i < n:
            node = nodes[i]
            tag = node.tag
            if tag in ("PRP", "EX"):
                chunks.append(_Chunk("NP", node, [node]))
                i += 1
            elif tag in ("WP", "WP$") or (
                tag == "WDT" and not self._starts_np(nodes, i + 1)
            ):
                chunk = _Chunk("NP", node, [node])
                chunk.is_wh = True
                chunks.append(chunk)
                i += 1
            elif tag == "WRB":
                chunks.append(_Chunk("ADV", node, [node]))
                i += 1
            elif self._starts_np(nodes, i):
                chunk, i = self._read_np(graph, nodes, i)
                chunks.append(chunk)
            elif tag == "MD" or tag.startswith("V"):
                chunk, i = self._read_verb_group(graph, nodes, i)
                chunks.append(chunk)
            elif tag in ("IN", "TO"):
                chunks.append(_Chunk("PREP", node, [node]))
                i += 1
            elif tag.startswith("J"):
                chunk, i = self._read_adjp(graph, nodes, i)
                chunks.append(chunk)
            elif tag in ("RB", "RBR", "RBS", "RP"):
                chunks.append(_Chunk("ADV", node, [node]))
                i += 1
            elif tag == "CC":
                chunks.append(_Chunk("CC", node, [node]))
                i += 1
            elif tag in (",", ".", ":", "``", "''", "-LRB-", "-RRB-"):
                chunks.append(_Chunk("PUNCT", node, [node]))
                i += 1
            else:
                chunks.append(_Chunk("OTHER", node, [node]))
                i += 1
        return chunks

    @staticmethod
    def _starts_np(nodes: list[DepNode], i: int) -> bool:
        """True if an NP can start at position ``i``."""
        if i >= len(nodes):
            return False
        tag = nodes[i].tag
        if tag in ("DT", "PDT", "PRP$", "CD", "WDT", "WP$") or tag.startswith(
            "NN"
        ):
            return True
        # Adjective-initial NP: adjective(s) followed by a noun.
        if tag.startswith("J") or tag in ("VBG", "VBN", "RBS"):
            j = i
            while j < len(nodes) and (
                nodes[j].tag.startswith("J")
                or nodes[j].tag in ("VBG", "VBN", "RB", "RBS", "CD")
            ):
                j += 1
            return j < len(nodes) and nodes[j].tag.startswith("NN")
        return False

    def _read_np(
        self, graph: DepGraph, nodes: list[DepNode], i: int
    ) -> tuple[_Chunk, int]:
        """Read one base NP starting at ``i``; emit its internal edges."""
        start = i
        n = len(nodes)
        members: list[DepNode] = []
        predet = det = None
        is_wh = False

        if i < n and nodes[i].tag == "PDT":
            predet = nodes[i]
            members.append(nodes[i])
            i += 1
        if i < n and nodes[i].tag in ("DT", "PRP$", "WDT", "WP$"):
            det = nodes[i]
            if nodes[i].tag in ("WDT", "WP$"):
                is_wh = True
            members.append(nodes[i])
            i += 1

        modifiers: list[DepNode] = []
        while i < n and (
            nodes[i].tag.startswith("J")
            or nodes[i].tag in ("VBG", "VBN", "CD", "RBS", "RB")
        ):
            # An adverb inside an NP must be followed by an adjective
            # ("the most interesting places", "a really good camera").
            if nodes[i].tag in ("RBS", "RB") and not (
                i + 1 < n and nodes[i + 1].tag.startswith("J")
            ):
                break
            modifiers.append(nodes[i])
            members.append(nodes[i])
            i += 1

        noun_run: list[DepNode] = []
        while i < n and (nodes[i].tag.startswith("NN") or (
            nodes[i].tag == "POS"
        )):
            is_clitic = nodes[i].tag == "POS"
            noun_run.append(nodes[i])
            members.append(nodes[i])
            i += 1
            if is_clitic:
                # Adjectives may follow a possessive clitic:
                # "my kids' favorite dishes".
                while i < n and (
                    nodes[i].tag.startswith("J")
                    or nodes[i].tag in ("VBG", "VBN", "CD")
                ):
                    modifiers.append(nodes[i])
                    members.append(nodes[i])
                    i += 1

        if not noun_run:
            # Determiner-only NP ("that") or a dangling modifier run.
            if det is not None and not modifiers:
                chunk = _Chunk("NP", det, members)
                chunk.is_wh = is_wh
                return chunk, i
            if modifiers:
                head = modifiers[-1]
                chunk = _Chunk("ADJP", head, members)
                for mod in modifiers[:-1]:
                    label = "advmod" if mod.tag.startswith("R") else "amod"
                    graph.add_edge(head, mod, label)
                if det is not None:
                    graph.add_edge(head, det, "det")
                return chunk, i
            raise ParsingError(
                f"chunker expected a noun phrase at token {start}"
            )

        head, possessor = self._np_head(graph, noun_run)
        if predet is not None:
            graph.add_edge(head, predet, "predet")
        if det is not None:
            label = "poss" if det.tag in ("PRP$", "WP$") else "det"
            target = possessor if possessor is not None else head
            graph.add_edge(target, det, label)
        self._attach_np_modifiers(graph, head, modifiers)

        chunk = _Chunk("NP", head, members)
        chunk.is_wh = is_wh
        return chunk, i

    def _np_head(
        self, graph: DepGraph, noun_run: list[DepNode]
    ) -> tuple[DepNode, DepNode | None]:
        """Pick the NP head and attach compound/possessive edges.

        The head is the last noun; earlier nouns are ``nn`` compounds.  A
        ``POS`` clitic splits the run into possessor + possessed.
        """
        pos_index = next(
            (k for k, nd in enumerate(noun_run) if nd.tag == "POS"), None
        )
        if pos_index is not None and 0 < pos_index < len(noun_run) - 1:
            possessor_run = noun_run[:pos_index]
            clitic = noun_run[pos_index]
            possessed_run = noun_run[pos_index + 1:]
            possessor = possessor_run[-1]
            for other in possessor_run[:-1]:
                graph.add_edge(possessor, other, "nn")
            head = possessed_run[-1]
            for other in possessed_run[:-1]:
                graph.add_edge(head, other, "nn")
            graph.add_edge(head, possessor, "poss")
            graph.add_edge(possessor, clitic, "possessive")
            return head, possessor

        real_nouns = [nd for nd in noun_run if nd.tag != "POS"]
        head = real_nouns[-1]
        for other in real_nouns[:-1]:
            graph.add_edge(head, other, "nn")
        return head, None

    def _attach_np_modifiers(
        self, graph: DepGraph, head: DepNode, modifiers: list[DepNode]
    ) -> None:
        """Attach adjective/number/adverb modifiers inside an NP."""
        k = 0
        while k < len(modifiers):
            mod = modifiers[k]
            if mod.tag in ("RBS", "RB") and k + 1 < len(modifiers):
                # "most interesting" -> advmod(interesting, most)
                graph.add_edge(modifiers[k + 1], mod, "advmod")
                k += 1
                continue
            if mod.tag == "CD":
                graph.add_edge(head, mod, "num")
            elif mod.tag.startswith("R"):
                graph.add_edge(head, mod, "advmod")
            else:
                graph.add_edge(head, mod, "amod")
            k += 1

    def _read_verb_group(
        self, graph: DepGraph, nodes: list[DepNode], i: int
    ) -> tuple[_Chunk, int]:
        """Read modal/aux chain + adverbs + main verb starting at ``i``."""
        n = len(nodes)
        members: list[DepNode] = []
        auxes: list[DepNode] = []
        negs: list[DepNode] = []
        advs: list[DepNode] = []
        main: DepNode | None = None

        while i < n:
            node = nodes[i]
            tag = node.tag
            if tag == "MD":
                auxes.append(node)
                members.append(node)
                i += 1
            elif tag.startswith("V"):
                # A verb is an auxiliary if another verb follows it within
                # the group (allowing adverbs/negation between).
                j = i + 1
                while j < n and nodes[j].tag in ("RB", "RBR"):
                    j += 1
                if (
                    node.lemma in _AUX_LEMMAS
                    and j < n
                    and nodes[j].tag.startswith("V")
                ):
                    auxes.append(node)
                    members.append(node)
                    i += 1
                else:
                    main = node
                    members.append(node)
                    i += 1
                    break
            elif tag in ("RB", "RBR") and members:
                if node.lemma == "not":
                    negs.append(node)
                else:
                    advs.append(node)
                members.append(node)
                i += 1
            else:
                break

        if main is None:
            if not auxes:
                raise ParsingError(f"verb group without a verb at token {i}")
            main = auxes.pop()  # bare copula/aux is the predicate

        is_passive = bool(
            auxes
            and main.tag == "VBN"
            and any(a.lemma == "be" for a in auxes)
        )
        for aux in auxes:
            label = "auxpass" if (is_passive and aux.lemma == "be") else "aux"
            graph.add_edge(main, aux, label)
        for neg in negs:
            graph.add_edge(main, neg, "neg")
        for adv in advs:
            graph.add_edge(main, adv, "advmod")

        chunk = _Chunk("VG", main, members)
        chunk.is_copula = (
            main.lemma in _COPULA_LEMMAS and main.tag != "VBN"
        )
        # Particle: "pick up", "eat out".
        if i < n and nodes[i].tag == "RP":
            graph.add_edge(main, nodes[i], "prt")
            chunk.nodes.append(nodes[i])
            i += 1
        return chunk, i

    def _read_adjp(
        self, graph: DepGraph, nodes: list[DepNode], i: int
    ) -> tuple[_Chunk, int]:
        """Read a predicative adjective phrase ("good", "very popular")."""
        members = [nodes[i]]
        head = nodes[i]
        i += 1
        while i < len(nodes) and nodes[i].tag.startswith("J"):
            graph.add_edge(nodes[i], head, "amod")
            head = nodes[i]
            members.append(nodes[i])
            i += 1
        return _Chunk("ADJP", head, members), i

    # -- stage 2: apposition merge -------------------------------------------------

    def _merge_appositions(
        self, graph: DepGraph, chunks: list[_Chunk]
    ) -> list[_Chunk]:
        """Join ``NNP-NP , NNP-NP`` sequences into one NP with ``appos``.

        This keeps entity mentions such as "Forest Hotel, Buffalo" in a
        single phrase so that downstream entity linking sees the whole
        span.  The merge only fires when both sides are proper-noun
        headed, to avoid swallowing a following clause subject
        ("..., we should visit ...").
        """
        out: list[_Chunk] = []
        i = 0
        while i < len(chunks):
            chunk = chunks[i]
            if chunk.kind == "NP" and chunk.head.is_proper_noun:
                while (
                    i + 2 < len(chunks)
                    and chunks[i + 1].kind == "PUNCT"
                    and chunks[i + 1].head.text == ","
                    and chunks[i + 2].kind == "NP"
                    and chunks[i + 2].head.is_proper_noun
                ):
                    comma = chunks[i + 1]
                    tail = chunks[i + 2]
                    graph.add_edge(chunk.head, tail.head, "appos")
                    graph.add_edge(chunk.head, comma.head, "punct")
                    chunk.nodes.extend(comma.nodes)
                    chunk.nodes.extend(tail.nodes)
                    i += 2
            out.append(chunk)
            i += 1
        return out

    # -- stage 3: clause assembly ----------------------------------------------------

    def _assemble(self, graph: DepGraph, chunks: list[_Chunk]) -> None:
        # Punctuation chunks stay in the stream: a comma is the cue for
        # non-restrictive relative-clause attachment.  Every attachment
        # loop skips PUNCT; stranded punctuation is attached at the end.
        if all(c.kind == "PUNCT" for c in chunks):
            raise ParsingError("sentence has no content chunks")

        root = self._build_main_clause(graph, chunks)
        if root is None:
            raise ParsingError(
                f"could not find a predicate in: {graph.sentence!r}"
            )
        graph.add_edge(graph.root_node, root, "root")

    def _build_main_clause(
        self, graph: DepGraph, chunks: list[_Chunk]
    ) -> DepNode | None:
        """Build the main clause; returns the sentence head node."""
        vg_positions = [k for k, c in enumerate(chunks) if c.kind == "VG"]
        if not vg_positions:
            # Verbless fragment ("Best pizza in town?") — head = first NP.
            return self._assemble_fragment(graph, chunks)

        first_vg = vg_positions[0]
        vg = chunks[first_vg]

        # --- copular question/statement: "... be NP/ADJP ..." -------------
        if vg.is_copula:
            return self._assemble_copular(graph, chunks, first_vg)

        # --- subject-aux inversion: "What camera should I buy?",
        #     "Where do you hike?", "Do you like sushi?" -------------------
        if self._is_inversion(chunks, first_vg):
            return self._assemble_inversion(graph, chunks, first_vg)

        # --- plain clause (declarative, wh-subject question, imperative) --
        return self._assemble_plain(graph, chunks, first_vg)

    def _assemble_fragment(
        self, graph: DepGraph, chunks: list[_Chunk]
    ) -> DepNode | None:
        nps = [c for c in chunks if c.kind in ("NP", "ADJP")]
        if not nps:
            return None
        head = nps[0].head
        pos = chunks.index(nps[0])
        self._attach_trailing(graph, chunks, pos + 1, head, head)
        for chunk in chunks[:pos]:
            if chunk.kind == "ADV":
                graph.add_edge(head, chunk.head, "advmod")
        return head

    def _assemble_copular(
        self, graph: DepGraph, chunks: list[_Chunk], vg_pos: int
    ) -> DepNode | None:
        """Copular clauses.

        * "What are the most interesting places ..." — root is the
          predicate NP head; the wh-word is ``attr``; the copula ``cop``.
        * "Is chocolate milk good for kids?" — root is the predicate
          (ADJP or second NP); the NP after the copula is the subject.
        * "Buffalo is a city" — root is the predicate NP; first NP subject.
        """
        cop = chunks[vg_pos].head
        pre = chunks[:vg_pos]
        post = chunks[vg_pos + 1:]

        self._attach_pre_pps(graph, pre)

        # Only a bare wh-pronoun ("What are ...") is the attr; a
        # wh-determined NP ("Which museums are ...") is the subject.
        wh = next(
            (c for c in pre if c.kind == "NP" and c.is_wh
             and c.head.tag == "WP"),
            None,
        )
        wh_adv = next((c for c in pre if c.kind == "ADV"
                       and c.head.tag == "WRB"), None)
        pre_np = next(
            (c for c in pre if c.kind == "NP" and c is not wh), None
        )
        post_np_pos = next(
            (k for k, c in enumerate(post) if c.kind in ("NP", "ADJP")), None
        )

        if wh is not None and post_np_pos is not None:
            # "What are the places..." — predicate NP is the root.
            pred = post[post_np_pos].head
            graph.add_edge(pred, cop, "cop")
            graph.add_edge(pred, wh.head, "attr")
            if pre_np is not None:
                graph.add_edge(pred, pre_np.head, "nsubj")
            self._attach_trailing(
                graph, post, post_np_pos + 1, pred, pred
            )
            return pred

        if post_np_pos is not None:
            post_nps = [c for c in post if c.kind in ("NP", "ADJP")]
            if pre_np is not None:
                # Declarative copular: "Buffalo is a city."
                pred = post_nps[0].head
                graph.add_edge(pred, cop, "cop")
                graph.add_edge(pred, pre_np.head, "nsubj")
                self._attach_trailing(
                    graph, post, post_np_pos + 1, pred, pred
                )
                if wh_adv is not None:
                    graph.add_edge(pred, wh_adv.head, "advmod")
                return pred
            if len(post_nps) >= 2:
                # Yes/no copular question: "Is chocolate milk good ...?"
                subj = post_nps[0].head
                pred = post_nps[1].head
                graph.add_edge(pred, cop, "cop")
                graph.add_edge(pred, subj, "nsubj")
                pred_pos = post.index(post_nps[1])
                self._attach_trailing(graph, post, pred_pos + 1, pred, pred)
                return pred
            # "Where is the nearest pharmacy?"
            pred = post_nps[0].head
            graph.add_edge(pred, cop, "cop")
            if wh_adv is not None:
                graph.add_edge(pred, wh_adv.head, "advmod")
            pred_pos = post.index(post_nps[0])
            self._attach_trailing(graph, post, pred_pos + 1, pred, pred)
            return pred

        # Bare copula with nothing after — treat copula itself as head.
        if pre_np is not None:
            graph.add_edge(cop, pre_np.head, "nsubj")
        if wh is not None:
            graph.add_edge(cop, wh.head, "attr")
        return cop

    @staticmethod
    def _attach_pre_pps(graph: DepGraph, pre: list[_Chunk]) -> None:
        """Attach "NP PREP NP" PPs before the copula.

        "Which museums [in Paris] are ..." — the PP modifies the subject
        NP; both PP chunks are consumed so later assembly sees only the
        subject.
        """
        i = 0
        while i < len(pre):
            chunk = pre[i]
            if (
                chunk.kind == "PREP"
                and i > 0
                and pre[i - 1].kind == "NP"
                and i + 1 < len(pre)
                and pre[i + 1].kind == "NP"
            ):
                host = pre[i - 1].head
                prep = chunk.head
                pobj_chunk = pre[i + 1]
                graph.add_edge(host, prep, "prep")
                graph.add_edge(prep, pobj_chunk.head, "pobj")
                # Fold the PP into the host NP chunk.
                pre[i - 1].nodes.extend(chunk.nodes)
                pre[i - 1].nodes.extend(pobj_chunk.nodes)
                del pre[i:i + 2]
                continue
            i += 1

    @staticmethod
    def _is_inversion(chunks: list[_Chunk], vg_pos: int) -> bool:
        """Subject-aux inversion: an aux-only VG followed by NP + VG."""
        vg = chunks[vg_pos]
        head = vg.head
        if not (head.tag == "MD" or head.lemma in ("do", "have", "be")):
            return False
        rest = chunks[vg_pos + 1:]
        np_pos = next(
            (k for k, c in enumerate(rest) if c.kind == "NP"), None
        )
        if np_pos is None:
            return False
        return any(c.kind == "VG" for c in rest[np_pos + 1:])

    def _assemble_inversion(
        self, graph: DepGraph, chunks: list[_Chunk], aux_pos: int
    ) -> DepNode | None:
        """"What camera should I buy?" / "Where do you go hiking?"."""
        aux_chunk = chunks[aux_pos]
        rest = chunks[aux_pos + 1:]
        subj_pos = next(k for k, c in enumerate(rest) if c.kind == "NP")
        subj = rest[subj_pos].head
        vg_pos = next(
            k for k, c in enumerate(rest[subj_pos + 1:], subj_pos + 1)
            if c.kind == "VG"
        )
        main = rest[vg_pos].head

        graph.add_edge(main, aux_chunk.head, "aux")
        graph.add_edge(main, subj, "nsubj")

        # Pre-aux material: a fronted NP is the displaced object of the
        # main verb ("What type of camera should I buy" -> dobj(buy, type))
        # unless a fronted preposition governs it ("At what container
        # should I store coffee" -> prep(store, At), pobj(At, container)).
        fronted = self._scan_pre(graph, chunks[:aux_pos], main)
        if fronted is not None:
            graph.add_edge(main, fronted, "dobj")

        self._attach_trailing(graph, rest, vg_pos + 1, main, main)
        return main

    def _assemble_plain(
        self, graph: DepGraph, chunks: list[_Chunk], vg_pos: int
    ) -> DepNode | None:
        """Declaratives, wh-subject questions and imperatives."""
        main = chunks[vg_pos].head
        pre = chunks[:vg_pos]

        antecedent = self._np_relative_antecedent(pre)
        if antecedent is not None:
            # NP NP VG fragment: "the places we visit (in the fall)".
            # The first NP is the phrase head; the clause modifies it.
            subj_chunk = pre[-1]
            rest_pre = [c for c in pre if c is not subj_chunk]
            head = self._scan_pre(graph, rest_pre, antecedent)
            graph.add_edge(antecedent, main, "rcmod")
            graph.add_edge(main, subj_chunk.head, "nsubj")
            self._consume_clause(
                graph, chunks, vg_pos + 1, main, subj_chunk.head
            )
            return antecedent

        subj = self._scan_pre(graph, pre, main)
        if subj is not None:
            graph.add_edge(main, subj, "nsubj")
        self._attach_trailing(graph, chunks, vg_pos + 1, main, main)
        return main

    @staticmethod
    def _np_relative_antecedent(pre: list[_Chunk]) -> DepNode | None:
        """Detect an "NP ... NP VG" reduced-relative fragment head.

        Returns the antecedent head when the pre-verbal chunks end with
        two adjacent free NPs (neither a preposition object), the second
        being a plausible clause subject — as in "the places we visit".
        """
        if not pre or pre[-1].kind != "NP":
            return None
        frees: list[_Chunk] = []
        prev_kind: str | None = None
        for chunk in pre:
            if chunk.kind == "NP" and prev_kind not in ("PREP", "CC"):
                frees.append(chunk)
            if chunk.kind != "PUNCT":
                prev_kind = chunk.kind
        if len(frees) < 2 or pre[-1] is not frees[-1]:
            return None
        subject = frees[-1].head
        antecedent = frees[-2].head
        if subject.tag not in ("PRP", "NN", "NNS", "NNP", "NNPS"):
            return None
        if not antecedent.is_noun or antecedent.tag == "PRP" or (
            antecedent.lemma in _TEMPORAL_NOUNS
        ):
            return None
        return antecedent

    def _scan_pre(
        self, graph: DepGraph, pre: list[_Chunk], main: DepNode
    ) -> DepNode | None:
        """Attach pre-verbal material; return the free nominal head.

        The returned head is the first NP not consumed as a preposition
        object — the subject in a plain clause, the fronted object under
        inversion.  PPs attach to the preceding nominal when there is
        one ("Which hotel [in Vegas] ...") and to the main predicate when
        fronted ("[At] what container should I ...").  WRB adverbs and
        loose adverbs become ``advmod`` of the predicate.
        """
        free: DepNode | None = None
        anchor: DepNode | None = None
        pending_prep: DepNode | None = None
        conj_anchor: DepNode | None = None
        for chunk in pre:
            if chunk.kind == "PREP":
                pending_prep = chunk.head
            elif chunk.kind in ("NP", "ADJP"):
                if pending_prep is not None:
                    site = anchor if anchor is not None else main
                    graph.add_edge(site, pending_prep, "prep")
                    graph.add_edge(pending_prep, chunk.head, "pobj")
                    pending_prep = None
                    anchor = chunk.head
                elif conj_anchor is not None:
                    # "My friends and I ..." -> conj(friends, I)
                    graph.add_edge(conj_anchor, chunk.head, "conj")
                    conj_anchor = None
                else:
                    if free is None:
                        free = chunk.head
                    else:
                        graph.add_edge(main, chunk.head, "dep")
                    anchor = chunk.head
            elif chunk.kind == "ADV":
                graph.add_edge(main, chunk.head, "advmod")
            elif chunk.kind == "CC" and anchor is not None:
                graph.add_edge(anchor, chunk.head, "cc")
                conj_anchor = anchor
            elif chunk.kind == "VG":
                graph.add_edge(main, chunk.head, "dep")
        if pending_prep is not None:
            graph.add_edge(main, pending_prep, "prep")
        return free

    # -- trailing material: objects, PPs, relative clauses, conjunction ----------

    def _attach_trailing(
        self,
        graph: DepGraph,
        chunks: list[_Chunk],
        start: int,
        verb: DepNode,
        last_nominal: DepNode,
    ) -> None:
        """Attach everything after the predicate head.

        ``verb`` is the governing predicate; ``last_nominal`` tracks the
        most recent noun head for PP attachment and relative clauses.
        """
        i = start
        got_dobj = verb.is_verb and bool(graph.children(verb, "dobj"))
        pending_prep: DepNode | None = None
        n = len(chunks)

        while i < n:
            chunk = chunks[i]
            kind = chunk.kind

            if kind == "PREP":
                if chunk.head.tag == "TO" and i + 1 < n and (
                    chunks[i + 1].kind == "VG"
                ):
                    # to-infinitive: "want to visit ..." -> xcomp
                    inf = chunks[i + 1].head
                    graph.add_edge(verb, inf, "xcomp")
                    graph.add_edge(inf, chunk.head, "aux")
                    i = self._consume_clause(
                        graph, chunks, i + 2, inf, subject=None
                    )
                    continue
                pending_prep = chunk.head
                attach_to = self._pp_attachment_site(
                    graph, verb, last_nominal, chunk.head, chunks, i
                )
                graph.add_edge(attach_to, chunk.head, "prep")
                i += 1
                continue

            if kind in ("NP", "ADJP"):
                head = chunk.head
                if pending_prep is not None:
                    graph.add_edge(pending_prep, head, "pobj")
                    pending_prep = None
                    last_nominal = head
                elif not got_dobj and verb.is_verb and not chunk.is_wh:
                    graph.add_edge(verb, head, "dobj")
                    got_dobj = True
                    last_nominal = head
                else:
                    # Possible relative clause subject: "places we should
                    # visit" — NP followed by VG.  A comma before the NP
                    # signals attachment to the clause head rather than
                    # the nearest nominal ("places near X, we should
                    # visit" modifies "places", not "X").
                    if i + 1 < n and chunks[i + 1].kind == "VG":
                        antecedent = last_nominal
                        if (
                            i > start
                            and chunks[i - 1].kind == "PUNCT"
                            and chunks[i - 1].head.text == ","
                            and not verb.is_verb
                        ):
                            antecedent = verb
                        i = self._attach_relative_clause(
                            graph, chunks, i, antecedent
                        )
                        continue
                    graph.add_edge(verb, head, "dep")
                    last_nominal = head
                i += 1
                continue

            if kind == "VG":
                # Relative clause without an overt subject NP before it
                # ("places recommended by locals") or a stray clause.
                i = self._attach_relative_clause(
                    graph, chunks, i, last_nominal, subjectless=True
                )
                continue

            if kind == "CC":
                i = self._attach_conjunct(
                    graph, chunks, i, verb, last_nominal, pending_prep
                )
                pending_prep = None
                continue

            if kind == "ADV":
                graph.add_edge(verb, chunk.head, "advmod")
                i += 1
                continue

            if kind == "PUNCT":
                i += 1
                continue

            graph.add_edge(verb, chunk.head, "dep")
            i += 1

    def _pp_attachment_site(
        self,
        graph: DepGraph,
        verb: DepNode,
        last_nominal: DepNode,
        prep: DepNode,
        chunks: list[_Chunk],
        prep_pos: int,
    ) -> DepNode:
        """Choose noun vs. verb attachment for a PP.

        Rule: attach to the immediately preceding nominal, unless the
        preposition's object is temporal ("in the fall"), in which case
        the clause predicate governs it.
        """
        obj_head = None
        for chunk in chunks[prep_pos + 1:]:
            if chunk.kind in ("NP", "ADJP"):
                obj_head = chunk.head
                break
            if chunk.kind != "ADV":
                break
        if obj_head is not None and obj_head.lemma in _TEMPORAL_NOUNS:
            return verb
        if last_nominal is not None and not last_nominal.is_root and (
            last_nominal.index != verb.index
        ):
            prev = chunks[prep_pos - 1] if prep_pos > 0 else None
            if prev is not None and prev.kind in ("NP", "ADJP") and (
                prev.head.index == last_nominal.index
                or last_nominal.index in {m.index for m in prev.nodes}
            ):
                return last_nominal
        return verb

    def _attach_relative_clause(
        self,
        graph: DepGraph,
        chunks: list[_Chunk],
        i: int,
        antecedent: DepNode,
        subjectless: bool = False,
    ) -> int:
        """Attach "NP VG ..." or "VG ..." after a nominal as ``rcmod``."""
        if subjectless:
            subject = None
            vg_pos = i
        else:
            subject = chunks[i].head
            vg_pos = i + 1
        verb = chunks[vg_pos].head
        if antecedent.is_root:
            raise ParsingError(
                "relative clause with no antecedent in "
                f"{graph.sentence!r}"
            )
        # After a verb ("enjoy visiting museums") the embedded clause is a
        # complement, not a relative clause.
        label = "xcomp" if antecedent.is_verb else "rcmod"
        graph.add_edge(antecedent, verb, label)
        if subject is not None:
            graph.add_edge(verb, subject, "nsubj")
        return self._consume_clause(
            graph, chunks, vg_pos + 1, verb, subject
        )

    def _consume_clause(
        self,
        graph: DepGraph,
        chunks: list[_Chunk],
        start: int,
        verb: DepNode,
        subject: DepNode | None,
    ) -> int:
        """Attach objects/PPs of an embedded clause; return next index."""
        i = start
        n = len(chunks)
        pending_prep: DepNode | None = None
        got_dobj = False
        last_nominal = verb
        while i < n:
            chunk = chunks[i]
            if chunk.kind == "PREP":
                pending_prep = chunk.head
                site = self._pp_attachment_site(
                    graph, verb, last_nominal, chunk.head, chunks, i
                )
                graph.add_edge(site, chunk.head, "prep")
                i += 1
            elif chunk.kind in ("NP", "ADJP"):
                if pending_prep is not None:
                    graph.add_edge(pending_prep, chunk.head, "pobj")
                    pending_prep = None
                elif not got_dobj:
                    graph.add_edge(verb, chunk.head, "dobj")
                    got_dobj = True
                else:
                    graph.add_edge(verb, chunk.head, "dep")
                last_nominal = chunk.head
                i += 1
            elif chunk.kind == "ADV":
                graph.add_edge(verb, chunk.head, "advmod")
                i += 1
            elif chunk.kind == "PUNCT":
                i += 1
            elif chunk.kind == "CC":
                i = self._attach_conjunct(
                    graph, chunks, i, verb, last_nominal, pending_prep
                )
                pending_prep = None
            else:
                break
        return i

    def _attach_conjunct(
        self,
        graph: DepGraph,
        chunks: list[_Chunk],
        cc_pos: int,
        verb: DepNode,
        last_nominal: DepNode,
        pending_prep: DepNode | None,
    ) -> int:
        """Attach "CC X" as a conjunct of the preceding same-kind item."""
        cc = chunks[cc_pos].head
        if cc_pos + 1 >= len(chunks):
            graph.add_edge(verb, cc, "cc")
            return cc_pos + 1
        nxt = chunks[cc_pos + 1]
        if nxt.kind in ("NP", "ADJP") and not last_nominal.is_root and (
            last_nominal.index != verb.index
        ):
            graph.add_edge(last_nominal, cc, "cc")
            graph.add_edge(last_nominal, nxt.head, "conj")
        elif nxt.kind == "VG":
            graph.add_edge(verb, cc, "cc")
            graph.add_edge(verb, nxt.head, "conj")
        else:
            graph.add_edge(verb, cc, "cc")
            graph.add_edge(verb, nxt.head, "dep")
        return cc_pos + 2

    # -- cleanup -------------------------------------------------------------------

    def _attach_stranded(
        self, graph: DepGraph, nodes: list[DepNode]
    ) -> None:
        """Attach any node the cascade missed to the sentence head.

        Punctuation gets ``punct``; anything else ``dep``.  This keeps
        the output a connected tree regardless of construction gaps.
        """
        head = graph.head
        if head is None:
            raise ParsingError(f"no root found for {graph.sentence!r}")
        for node in nodes:
            if graph.parent_edge(node) is None:
                label = "punct" if not node.is_word else "dep"
                graph.add_edge(head, node, label)


_DEFAULT = DependencyParser()


def parse(text: str) -> DepGraph:
    """Parse with a shared default :class:`DependencyParser`."""
    return _DEFAULT.parse(text)
