"""Natural-language substrate: tokenizer, tagger, lemmatizer, parser.

This package replaces the Stanford Parser used by the paper (substitution
S1-S5 in DESIGN.md).  It exposes the same artifacts the NL2CM pipeline
consumes: Penn-Treebank POS tags and a typed dependency graph.

Typical use::

    from repro.nlp import parse

    graph = parse("What are the most interesting places near Forest Hotel?")
    for edge in graph.edges():
        print(edge.head.text, edge.label, edge.dependent.text)
"""

from repro.nlp.tokenizer import Token, Tokenizer, tokenize
from repro.nlp.lemma import Lemmatizer, lemmatize
from repro.nlp.postag import PosTagger, TaggedToken, tag
from repro.nlp.learned import PerceptronTagger, train_from_gold
from repro.nlp.graph import DepEdge, DepGraph, DepNode
from repro.nlp.depparse import DependencyParser, parse

__all__ = [
    "Token",
    "Tokenizer",
    "tokenize",
    "Lemmatizer",
    "lemmatize",
    "PosTagger",
    "TaggedToken",
    "tag",
    "PerceptronTagger",
    "train_from_gold",
    "DepEdge",
    "DepGraph",
    "DepNode",
    "DependencyParser",
    "parse",
]
