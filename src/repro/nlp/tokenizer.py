"""Word and sentence tokenization in the Penn-Treebank style.

The tokenizer is the first stage of the NL parsing pipeline (paper
Section 2.2).  It produces :class:`Token` objects that carry their
character offsets into the original text, so later stages (and the UI,
which highlights detected individual expressions in the user's question)
can map every node of the dependency graph back to the exact span the
user typed.

Conventions follow the Penn Treebank so that the POS tagger's lexicon
applies directly:

* punctuation is split into its own tokens (``places,`` -> ``places`` ``,``);
* contractions are split at the clitic boundary (``don't`` -> ``do`` ``n't``,
  ``we're`` -> ``we`` ``'re``, ``hotel's`` -> ``hotel`` ``'s``);
* abbreviations with internal periods (``N.Y.``, ``U.S.``) stay whole;
* hyphenated words (``thrill-ride``) stay whole.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import TokenizationError

__all__ = ["Token", "Tokenizer", "tokenize", "split_sentences"]


@dataclass(frozen=True, slots=True)
class Token:
    """A single token with character offsets into the source text.

    Attributes:
        text: the token surface form, exactly as it appears in the source
            (except for split contractions, where the clitic keeps its
            apostrophe: ``n't``, ``'re``, ``'s``).
        start: offset of the first character in the original text.
        end: offset one past the last character.
        index: zero-based position of the token in its sentence.
    """

    text: str
    start: int
    end: int
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text

    @property
    def lower(self) -> str:
        """The lower-cased surface form."""
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        """True if the token contains at least one letter or digit."""
        return any(ch.isalnum() for ch in self.text)


# Clitics that are split off the host word, longest first.
_CLITICS = ("n't", "'re", "'ve", "'ll", "'d", "'s", "'m")

# Abbreviations that keep a trailing period attached.
_ABBREVIATIONS = {
    "mr.", "mrs.", "ms.", "dr.", "prof.", "st.", "mt.", "etc.", "e.g.",
    "i.e.", "vs.", "jr.", "sr.", "inc.", "ltd.", "co.", "ave.", "blvd.",
    "no.", "ft.", "oz.", "lb.", "approx.",
}

# A word made only of single letters each followed by a period: N.Y., U.S.A.
_INITIALISM_RE = re.compile(r"^(?:[A-Za-z]\.)+$")

# Primary split: runs of non-space characters.
_WHITESPACE_RE = re.compile(r"\S+")

# Characters always split off the edges of a chunk.
_EDGE_PUNCT = "\"'()[]{}<>«»“”‘’`,;:!?"

_NUMBER_RE = re.compile(r"^\d+(?:[.,]\d+)*$")

_SENTENCE_END_RE = re.compile(r"([.!?]+)(\s+|$)")


class Tokenizer:
    """Penn-Treebank-style word tokenizer with offset tracking.

    The tokenizer is stateless and reusable; :func:`tokenize` wraps a
    module-level instance for convenience.
    """

    def tokenize(self, text: str) -> list[Token]:
        """Tokenize ``text`` into a list of :class:`Token`.

        Raises:
            TokenizationError: if ``text`` is not a string or is empty
                after stripping whitespace.
        """
        if not isinstance(text, str):
            raise TokenizationError(
                f"expected str, got {type(text).__name__}"
            )
        if not text.strip():
            raise TokenizationError("cannot tokenize empty text")

        tokens: list[Token] = []
        for match in _WHITESPACE_RE.finditer(text):
            self._split_chunk(match.group(), match.start(), tokens)
        # Re-index after all splits.
        return [
            Token(tok.text, tok.start, tok.end, i)
            for i, tok in enumerate(tokens)
        ]

    # -- internals ---------------------------------------------------------

    def _split_chunk(self, chunk: str, offset: int, out: list[Token]) -> None:
        """Split one whitespace-delimited chunk into tokens."""
        # Peel leading punctuation.
        start = 0
        end = len(chunk)
        lead: list[tuple[str, int]] = []
        trail: list[tuple[str, int]] = []
        while start < end and chunk[start] in _EDGE_PUNCT:
            lead.append((chunk[start], offset + start))
            start += 1
        # Peel trailing punctuation (but respect abbreviations for '.').
        while end > start and (
            chunk[end - 1] in _EDGE_PUNCT or chunk[end - 1] == "."
        ):
            core = chunk[start:end]
            if chunk[end - 1] == "." and self._keeps_period(core):
                break
            trail.append((chunk[end - 1], offset + end - 1))
            end -= 1

        for text, pos in lead:
            out.append(Token(text, pos, pos + 1, -1))

        core = chunk[start:end]
        if core:
            self._split_core(core, offset + start, out)

        for text, pos in reversed(trail):
            out.append(Token(text, pos, pos + 1, -1))

    def _keeps_period(self, word: str) -> bool:
        """True if ``word`` (ending in '.') keeps its trailing period."""
        return (
            word.lower() in _ABBREVIATIONS
            or _INITIALISM_RE.match(word) is not None
        )

    def _split_core(self, core: str, offset: int, out: list[Token]) -> None:
        """Split clitics off a punctuation-free core word."""
        lower = core.lower()
        for clitic in _CLITICS:
            if lower.endswith(clitic) and len(core) > len(clitic):
                cut = len(core) - len(clitic)
                host = core[:cut]
                # "n't" needs a real host verb ("do", "ca", "wo"...).
                if clitic == "n't" and not host[-1].isalpha():
                    continue
                out.append(Token(host, offset, offset + cut, -1))
                out.append(
                    Token(core[cut:], offset + cut, offset + len(core), -1)
                )
                return
        out.append(Token(core, offset, offset + len(core), -1))


def split_sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on ``.``, ``!`` and ``?``.

    Abbreviation periods (``Dr.``, ``N.Y.``) do not end a sentence.  The
    returned strings preserve their original spelling but are stripped of
    surrounding whitespace.
    """
    if not text.strip():
        return []
    sentences: list[str] = []
    start = 0
    for match in _SENTENCE_END_RE.finditer(text):
        candidate = text[start:match.end(1)]
        last_word = candidate.rsplit(None, 1)[-1] if candidate.split() else ""
        if last_word.lower() in _ABBREVIATIONS or (
            _INITIALISM_RE.match(last_word)
        ):
            continue
        sentence = candidate.strip()
        if sentence:
            sentences.append(sentence)
        start = match.end()
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences


_DEFAULT = Tokenizer()


def tokenize(text: str) -> list[Token]:
    """Tokenize with a shared default :class:`Tokenizer`."""
    return _DEFAULT.tokenize(text)
