"""Trainable statistical POS tagger: a greedy averaged perceptron.

The rule tagger (:class:`~repro.nlp.postag.PosTagger`) is hand-tuned to
the demo domains; this module provides the trainable alternative the
ROADMAP's scenario-diversity item calls for.  The design is the classic
greedy averaged perceptron (Collins 2002): left-to-right decoding with
the two previous predicted tags as history, contextual word/suffix/shape
features, and weight averaging over every update for stability on the
small gold corpora that scenario packs carry.

Everything is stdlib-only and deterministic: training shuffles with a
seeded ``random.Random``, feature iteration follows dict insertion
order (itself fixed by the seeded shuffle), and prediction breaks score
ties by tag name — so two processes training on the same corpus with
the same seed produce byte-identical taggers.

The class satisfies the same interface as ``PosTagger`` (``tag`` over
``list[Token] | str``, plus ``known``), so it drops into
:class:`~repro.nlp.depparse.DependencyParser` and is selectable with
``NL2CM(tagger="learned")``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from functools import lru_cache
from random import Random
from typing import Iterable, Sequence

from repro.errors import TaggingError
from repro.nlp.postag import TaggedToken
from repro.nlp.postag_lexicon import TAGSET
from repro.nlp.tokenizer import Token, tokenize

__all__ = [
    "PerceptronTagger", "train_from_gold", "default_learned_tagger",
]

# Words that occur at least this often with a single tag at least this
# fraction of the time bypass the perceptron entirely.
_TAGDICT_MIN_COUNT = 3
_TAGDICT_MIN_RATIO = 0.97

_START = ("-START-", "-START2-")
_END = ("-END-", "-END2-")


def _normalize(word: str) -> str:
    """Collapse sparse surface forms the way the feature set expects."""
    if word.isdigit():
        return "!DIGIT"
    if any(ch.isdigit() for ch in word) and any(
        ch in ".,:" for ch in word
    ):
        return "!NUM"
    return word.lower()


class PerceptronTagger:
    """Greedy averaged-perceptron POS tagger (stdlib-only, seeded).

    Args:
        seed: seed for the per-epoch training shuffle.
        epochs: training passes over the corpus.
    """

    def __init__(self, seed: int = 0, epochs: int = 8):
        self.seed = seed
        self.epochs = epochs
        # feature -> tag -> weight (averaged after training).
        self._weights: dict[str, dict[str, float]] = {}
        self._tagdict: dict[str, str] = {}
        self._classes: tuple[str, ...] = ()
        self._known: frozenset[str] = frozenset()
        self._trained = False

    # -- public API ----------------------------------------------------------

    def train(
        self, sentences: Iterable[Sequence[tuple[str, str]]]
    ) -> None:
        """Train from ``(word, tag)`` sequences; replaces any old model.

        Raises:
            TaggingError: on an empty corpus or a tag outside
                :data:`TAGSET` (gold files are validated upstream, but a
                hand-built corpus must fail loudly too).
        """
        data = [list(sentence) for sentence in sentences]
        data = [s for s in data if s]
        if not data:
            raise TaggingError("cannot train on an empty corpus")
        tags_seen: set[str] = set()
        for sentence in data:
            for word, tag in sentence:
                if tag not in TAGSET:
                    raise TaggingError(
                        f"gold tag {tag!r} for {word!r} is outside "
                        f"the tag set"
                    )
                tags_seen.add(tag)
        self._classes = tuple(sorted(tags_seen))
        self._known = frozenset(
            _normalize(word) for s in data for word, _ in s
        )
        self._build_tagdict(data)

        weights: dict[str, dict[str, float]] = {}
        totals: dict[tuple[str, str], float] = defaultdict(float)
        stamps: dict[tuple[str, str], int] = defaultdict(int)
        instances = 0
        rng = Random(self.seed)

        for _ in range(self.epochs):
            rng.shuffle(data)
            for sentence in data:
                context = self._context([w for w, _ in sentence])
                prev, prev2 = _START
                for i, (word, gold) in enumerate(sentence):
                    instances += 1
                    guess = self._tagdict.get(_normalize(word))
                    if guess is None:
                        feats = self._features(
                            i, word, context, prev, prev2
                        )
                        guess = self._predict(weights, feats)
                        if guess != gold:
                            for feat in feats:
                                table = weights.setdefault(feat, {})
                                for tag, delta in (
                                    (gold, 1.0), (guess, -1.0)
                                ):
                                    key = (feat, tag)
                                    totals[key] += (
                                        instances - stamps[key]
                                    ) * table.get(tag, 0.0)
                                    stamps[key] = instances
                                    table[tag] = (
                                        table.get(tag, 0.0) + delta
                                    )
                    prev2, prev = prev, guess

        # Average: each weight counts for the updates it survived.
        for feat, table in weights.items():
            for tag in table:
                key = (feat, tag)
                total = totals[key] + (
                    instances - stamps[key]
                ) * table[tag]
                table[tag] = total / instances
        self._weights = weights
        self._trained = True

    def tag(self, tokens: list[Token] | str) -> list[TaggedToken]:
        """Tag a token list (or raw text, which is tokenized first).

        Raises:
            TaggingError: on empty input or an untrained tagger.
        """
        if not self._trained:
            raise TaggingError(
                "the perceptron tagger must be trained before tagging"
            )
        if isinstance(tokens, str):
            tokens = tokenize(tokens)
        if not tokens:
            raise TaggingError("cannot tag an empty token list")
        context = self._context([t.text for t in tokens])
        tagged: list[TaggedToken] = []
        prev, prev2 = _START
        for i, token in enumerate(tokens):
            tag = self._tagdict.get(_normalize(token.text))
            if tag is None:
                feats = self._features(
                    i, token.text, context, prev, prev2
                )
                tag = self._predict(self._weights, feats)
            tagged.append(TaggedToken(token, tag))
            prev2, prev = prev, tag
        return tagged

    def known(self, word: str) -> bool:
        """True when ``word`` was seen during training."""
        return _normalize(word) in self._known

    # -- internals -----------------------------------------------------------

    def _build_tagdict(
        self, data: list[list[tuple[str, str]]]
    ) -> None:
        counts: dict[str, Counter[str]] = defaultdict(Counter)
        for sentence in data:
            for word, tag in sentence:
                counts[_normalize(word)][tag] += 1
        self._tagdict = {}
        for word, tags in counts.items():
            total = sum(tags.values())
            tag, count = tags.most_common(1)[0]
            if total >= _TAGDICT_MIN_COUNT and (
                count / total >= _TAGDICT_MIN_RATIO
            ):
                self._tagdict[word] = tag

    @staticmethod
    def _context(words: list[str]) -> list[str]:
        return (
            list(_START)
            + [_normalize(w) for w in words]
            + list(_END)
        )

    @staticmethod
    def _features(
        i: int,
        word: str,
        context: list[str],
        prev: str,
        prev2: str,
    ) -> list[str]:
        """The feature set, in a fixed order (determinism depends on it)."""
        c = i + len(_START)  # index into the padded context
        norm = context[c]
        feats = [
            "bias",
            f"suf={norm[-3:]}",
            f"pre={norm[0]}",
            f"w={norm}",
            f"t-1={prev}",
            f"t-2={prev2}",
            f"t-1t-2={prev}+{prev2}",
            f"t-1w={prev}+{norm}",
            f"w-1={context[c - 1]}",
            f"suf-1={context[c - 1][-3:]}",
            f"w-2={context[c - 2]}",
            f"w+1={context[c + 1]}",
            f"suf+1={context[c + 1][-3:]}",
            f"w+2={context[c + 2]}",
        ]
        if word[:1].isupper():
            feats.append("shape=title" if i else "shape=initial-cap")
        if any(ch.isdigit() for ch in word):
            feats.append("shape=digit")
        if "-" in word:
            feats.append("shape=hyphen")
        return feats

    def _predict(
        self, weights: dict[str, dict[str, float]], feats: list[str]
    ) -> str:
        scores: dict[str, float] = defaultdict(float)
        for feat in feats:
            table = weights.get(feat)
            if table is None:
                continue
            for tag, weight in table.items():
                scores[tag] += weight
        # Tie-break by tag name so decoding never depends on dict order.
        return max(self._classes, key=lambda t: (scores[t], t))


def train_from_gold(
    sentences: Iterable, seed: int = 0, epochs: int = 8
) -> PerceptronTagger:
    """Train a tagger from :class:`~repro.data.goldnlp.GoldSentence`s."""
    tagger = PerceptronTagger(seed=seed, epochs=epochs)
    tagger.train(
        [
            [(tok.form, tok.tag) for tok in sentence.tokens]
            for sentence in sentences
        ]
    )
    return tagger


@lru_cache(maxsize=1)
def default_learned_tagger() -> PerceptronTagger:
    """The shared learned tagger, trained on every builtin pack's gold.

    Training is deterministic (seed 0) and cached per process, so
    ``NL2CM(tagger="learned")`` constructions after the first are free.
    """
    from repro.data.scenario import load_builtin_packs

    sentences = []
    seen: set[str] = set()
    for pack in load_builtin_packs():
        for sentence in pack.gold_nlp:
            key = sentence.id or sentence.text
            if key in seen:
                continue
            seen.add(key)
            sentences.append(sentence)
    return train_from_gold(sentences)
