"""Typed dependency graph model.

The dependency graph is the central data structure of NL2CM (paper
Section 2.2): the IX detector matches declarative patterns against it,
the general query generator aligns its nodes with ontology terms, and the
individual triple creator maps its subgraphs to OASSIS-QL triples.

Nodes carry the token, lemma and POS tag; edges carry a typed grammatical
relation (a Stanford-dependencies-style label set, see
:data:`DEPENDENCY_LABELS`).  The graph is a tree rooted at the main
predicate plus an artificial ``ROOT`` node, matching the output shape of
the Stanford Parser that the paper instruments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from repro.errors import ParsingError

__all__ = ["DepNode", "DepEdge", "DepGraph", "DEPENDENCY_LABELS"]

#: The typed-dependency label set produced by :mod:`repro.nlp.depparse`.
#: A subset of the Stanford dependencies relevant to question parsing.
DEPENDENCY_LABELS = frozenset({
    "root",      # head of the sentence
    "nsubj",     # nominal subject
    "nsubjpass", # passive nominal subject
    "dobj",      # direct object
    "iobj",      # indirect object
    "attr",      # attribute (wh-complement of a copula)
    "cop",       # copula verb
    "aux",       # auxiliary (incl. modal)
    "auxpass",   # passive auxiliary
    "det",       # determiner
    "predet",    # predeterminer
    "amod",      # adjectival modifier
    "advmod",    # adverbial modifier
    "nn",        # noun compound modifier
    "num",       # numeric modifier
    "poss",      # possession modifier
    "possessive",# possessive clitic 's
    "prep",      # prepositional modifier (head -> preposition)
    "pobj",      # object of a preposition
    "pcomp",     # clausal complement of a preposition
    "mark",      # subordinating conjunction marker
    "rcmod",     # relative clause modifier
    "appos",     # appositional modifier ("Forest Hotel, Buffalo")
    "ccomp",     # clausal complement with its own subject
    "xcomp",     # open clausal complement
    "conj",      # conjunct
    "cc",        # coordination
    "neg",       # negation modifier
    "prt",       # verb particle
    "expl",      # expletive "there"
    "dep",       # unclassified dependency
    "punct",     # punctuation
})


@dataclass(frozen=True, slots=True)
class DepNode:
    """A node of the dependency graph — one token with its annotations.

    ``index`` is the token's position in the sentence; the artificial root
    node has index ``-1``.  Nodes are identified by index, so two nodes
    with equal indices in one graph are the same node.
    """

    index: int
    text: str
    lemma: str
    tag: str
    start: int = 0
    end: int = 0

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_root(self) -> bool:
        return self.index == -1

    @property
    def is_word(self) -> bool:
        """True if the token contains at least one letter or digit."""
        return any(ch.isalnum() for ch in self.text)

    @property
    def is_verb(self) -> bool:
        return self.tag.startswith("V") or self.tag == "MD"

    @property
    def is_noun(self) -> bool:
        return self.tag.startswith("N") or self.tag in ("PRP", "WP")

    @property
    def is_proper_noun(self) -> bool:
        return self.tag in ("NNP", "NNPS")

    @property
    def is_adjective(self) -> bool:
        return self.tag.startswith("J")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.text}-{self.index}"


@dataclass(frozen=True, slots=True)
class DepEdge:
    """A typed dependency: ``label(head, dependent)``."""

    head: DepNode
    dependent: DepNode
    label: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.label}({self.head}, {self.dependent})"


ROOT = DepNode(index=-1, text="ROOT", lemma="ROOT", tag="ROOT")


class DepGraph:
    """A dependency tree with an artificial ROOT node.

    The graph is built once by the parser and is immutable from the
    outside: consumers traverse it via :meth:`children`, :meth:`parent`,
    :meth:`subtree` and :meth:`edges`.
    """

    def __init__(self, sentence: str = ""):
        self.sentence = sentence
        self._nodes: dict[int, DepNode] = {-1: ROOT}
        self._edges: list[DepEdge] = []
        self._children: dict[int, list[DepEdge]] = {}
        self._parent: dict[int, DepEdge] = {}

    # -- construction (used by the parser) ------------------------------------

    def add_node(self, node: DepNode) -> None:
        if node.index in self._nodes:
            raise ParsingError(f"duplicate node index {node.index}")
        self._nodes[node.index] = node

    def add_edge(self, head: DepNode, dependent: DepNode, label: str) -> None:
        if label not in DEPENDENCY_LABELS:
            raise ParsingError(f"unknown dependency label {label!r}")
        if head.index not in self._nodes or dependent.index not in self._nodes:
            raise ParsingError("edge endpoints must be added as nodes first")
        if dependent.index in self._parent:
            raise ParsingError(
                f"node {dependent} already has a head; the graph is a tree"
            )
        if dependent.is_root:
            raise ParsingError("ROOT cannot be a dependent")
        edge = DepEdge(head, dependent, label)
        self._edges.append(edge)
        self._children.setdefault(head.index, []).append(edge)
        self._parent[dependent.index] = edge

    # -- read access -----------------------------------------------------------

    @property
    def root_node(self) -> DepNode:
        """The artificial ROOT node."""
        return ROOT

    @property
    def head(self) -> DepNode | None:
        """The sentence head (the dependent of the ``root`` edge)."""
        for edge in self._children.get(-1, []):
            if edge.label == "root":
                return edge.dependent
        return None

    def nodes(self, include_root: bool = False) -> list[DepNode]:
        """All token nodes in sentence order."""
        nodes = sorted(
            (n for n in self._nodes.values() if include_root or not n.is_root),
            key=lambda n: n.index,
        )
        return nodes

    def node(self, index: int) -> DepNode:
        """The node at token position ``index``.

        Raises:
            KeyError: if there is no node with that index.
        """
        return self._nodes[index]

    def edges(self) -> list[DepEdge]:
        """All edges, in insertion order (excluding none)."""
        return list(self._edges)

    def children(self, node: DepNode, label: str | None = None) -> list[DepNode]:
        """Dependents of ``node``, optionally restricted to one label."""
        edges = self._children.get(node.index, [])
        return [
            e.dependent for e in edges if label is None or e.label == label
        ]

    def child_edges(self, node: DepNode) -> list[DepEdge]:
        """Outgoing edges of ``node``."""
        return list(self._children.get(node.index, []))

    def parent_edge(self, node: DepNode) -> DepEdge | None:
        """The incoming edge of ``node`` (None for ROOT / detached nodes)."""
        return self._parent.get(node.index)

    def parent(self, node: DepNode) -> DepNode | None:
        """The head of ``node`` (None for ROOT)."""
        edge = self._parent.get(node.index)
        return edge.head if edge else None

    def label_between(self, head: DepNode, dependent: DepNode) -> str | None:
        """The label of the edge ``head -> dependent``, if any."""
        for edge in self._children.get(head.index, []):
            if edge.dependent.index == dependent.index:
                return edge.label
        return None

    def subtree(self, node: DepNode) -> list[DepNode]:
        """``node`` and all its descendants, in sentence order."""
        seen: list[DepNode] = []
        stack = [node]
        while stack:
            cur = stack.pop()
            seen.append(cur)
            stack.extend(self.children(cur))
        return sorted(seen, key=lambda n: n.index)

    def path(self, a: DepNode, b: DepNode) -> list[DepNode] | None:
        """The undirected tree path from ``a`` to ``b`` (inclusive)."""
        ancestors_a = self._ancestor_chain(a)
        index_in_a = {n.index: i for i, n in enumerate(ancestors_a)}
        chain_b: list[DepNode] = []
        cur: DepNode | None = b
        while cur is not None:
            if cur.index in index_in_a:
                up = ancestors_a[: index_in_a[cur.index] + 1]
                return up + list(reversed(chain_b))
            chain_b.append(cur)
            cur = self.parent(cur)
        return None

    def _ancestor_chain(self, node: DepNode) -> list[DepNode]:
        chain = [node]
        cur = self.parent(node)
        while cur is not None:
            chain.append(cur)
            cur = self.parent(cur)
        return chain

    def text_span(self, nodes: list[DepNode]) -> str:
        """The surface text covered by ``nodes``, in sentence order."""
        ordered = sorted(
            (n for n in nodes if not n.is_root), key=lambda n: n.index
        )
        return " ".join(n.text for n in ordered)

    def to_networkx(self) -> nx.DiGraph:
        """Export as a ``networkx.DiGraph`` (node key = token index)."""
        graph = nx.DiGraph(sentence=self.sentence)
        for node in self.nodes(include_root=True):
            graph.add_node(
                node.index, text=node.text, lemma=node.lemma, tag=node.tag
            )
        for edge in self._edges:
            graph.add_edge(
                edge.head.index, edge.dependent.index, label=edge.label
            )
        return graph

    def __iter__(self) -> Iterator[DepNode]:
        return iter(self.nodes())

    def __len__(self) -> int:
        return len(self._nodes) - 1  # exclude ROOT

    def __contains__(self, node: DepNode) -> bool:
        return node.index in self._nodes

    def pretty(self) -> str:
        """A readable multi-line rendering, for the admin mode screen."""
        lines = [f"sentence: {self.sentence}"]
        for edge in sorted(
            self._edges, key=lambda e: (e.head.index, e.dependent.index)
        ):
            lines.append(
                f"  {edge.label}({edge.head.text}-{edge.head.index}, "
                f"{edge.dependent.text}-{edge.dependent.index})"
            )
        return "\n".join(lines)
