"""Rule-based English lemmatizer.

The IX detector (paper Section 2.3) looks tokens up in dedicated
vocabularies — the opinion lexicon, participant and modal vocabularies,
and a habit-verb list.  Those vocabularies store lemmas, so the detector
needs the lemma of every node in the dependency graph: "visited" and
"visits" must both hit the vocabulary entry "visit".

The lemmatizer is POS-aware: given a Penn-Treebank tag it applies the
right paradigm (verb inflection vs. noun plural vs. adjective degree).
Irregular forms come from embedded tables; regular forms from suffix
rules with consonant-doubling and ``-ies``/``-es`` handling.
"""

from __future__ import annotations

__all__ = ["Lemmatizer", "lemmatize"]

# Irregular verb forms -> lemma.  Keyed by inflected form.
_IRREGULAR_VERBS = {
    "am": "be", "is": "be", "are": "be", "was": "be", "were": "be",
    "been": "be", "being": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "goes": "go", "went": "go", "gone": "go",
    "ate": "eat", "eaten": "eat",
    "drank": "drink", "drunk": "drink",
    "bought": "buy", "brought": "bring", "thought": "think",
    "caught": "catch", "taught": "teach", "sought": "seek",
    "made": "make", "said": "say", "paid": "pay", "laid": "lay",
    "took": "take", "taken": "take",
    "gave": "give", "given": "give",
    "saw": "see", "seen": "see",
    "came": "come", "become": "become", "became": "become",
    "got": "get", "gotten": "get",
    "knew": "know", "known": "know",
    "grew": "grow", "grown": "grow",
    "threw": "throw", "thrown": "throw",
    "flew": "fly", "flown": "fly",
    "drove": "drive", "driven": "drive",
    "rode": "ride", "ridden": "ride",
    "wrote": "write", "written": "write",
    "spoke": "speak", "spoken": "speak",
    "broke": "break", "broken": "break",
    "chose": "choose", "chosen": "choose",
    "wore": "wear", "worn": "wear",
    "tore": "tear", "torn": "tear",
    "swam": "swim", "swum": "swim",
    "ran": "run", "run": "run",
    "sang": "sing", "sung": "sing",
    "began": "begin", "begun": "begin",
    "found": "find", "felt": "feel", "kept": "keep", "left": "leave",
    "meant": "mean", "met": "meet", "sent": "send", "spent": "spend",
    "built": "build", "lent": "lend", "bent": "bend",
    "lost": "lose", "told": "tell", "sold": "sell", "held": "hold",
    "stood": "stand", "understood": "understand",
    "heard": "hear", "led": "lead", "read": "read", "fed": "feed",
    "slept": "sleep", "swept": "sweep", "wept": "weep",
    "sat": "sit", "set": "set", "put": "put", "cut": "cut", "hit": "hit",
    "let": "let", "shut": "shut", "cost": "cost", "hurt": "hurt",
    "quit": "quit", "spread": "spread", "bet": "bet",
    "won": "win", "shone": "shine", "shot": "shoot",
    "stuck": "stick", "struck": "strike",
    "dug": "dig", "hung": "hang", "spun": "spin",
    "fought": "fight", "lit": "light",
    "slid": "slide", "hid": "hide", "hidden": "hide",
    "bit": "bite", "bitten": "bite",
    "fell": "fall", "fallen": "fall",
    "rose": "rise", "risen": "rise",
    "woke": "wake", "woken": "wake",
    "froze": "freeze", "frozen": "freeze",
    "stole": "steal", "stolen": "steal",
    "forgot": "forget", "forgotten": "forget",
    "wound": "wind", "ground": "grind", "bound": "bind",
    "drew": "draw", "drawn": "draw",
    "blew": "blow", "blown": "blow",
    "lay": "lie", "lain": "lie",
}

# Modal auxiliaries are their own lemmas except contracted forms.
_MODALS = {
    "ca": "can", "wo": "will", "sha": "shall", "'ll": "will", "'d": "would",
    "can": "can", "could": "can", "may": "may", "might": "may",
    "must": "must", "shall": "shall", "should": "should",
    "will": "will", "would": "will", "ought": "ought", "need": "need",
}

# Clitic forms of be/have.
_CLITIC_LEMMAS = {"'s": "be", "'re": "be", "'m": "be", "'ve": "have",
                  "n't": "not"}

_IRREGULAR_NOUNS = {
    "children": "child", "people": "person", "men": "man", "women": "woman",
    "feet": "foot", "teeth": "tooth", "geese": "goose", "mice": "mouse",
    "lives": "life", "wives": "wife", "knives": "knife", "leaves": "leaf",
    "shelves": "shelf", "loaves": "loaf", "halves": "half",
    "wolves": "wolf", "calves": "calf", "thieves": "thief",
    "oxen": "ox", "data": "datum", "criteria": "criterion",
    "phenomena": "phenomenon", "analyses": "analysis", "bases": "basis",
    "crises": "crisis", "theses": "thesis", "diagnoses": "diagnosis",
    "cacti": "cactus", "fungi": "fungus", "nuclei": "nucleus",
    "syllabi": "syllabus", "alumni": "alumnus",
    "indices": "index", "appendices": "appendix", "matrices": "matrix",
    "vertices": "vertex",
    "buses": "bus", "bonuses": "bonus", "viruses": "virus",
    "campuses": "campus", "statuses": "status", "gases": "gas",
}

# Plural forms that look regular but whose stem ends in a sound requiring
# the 'e' to stay after stripping '-es'.
_ES_KEEP_E_ENDINGS = ("ss", "sh", "ch", "x", "z", "o")

_IRREGULAR_ADJECTIVES = {
    "better": "good", "best": "good",
    "worse": "bad", "worst": "bad",
    "more": "much", "most": "much",
    "less": "little", "least": "little",
    "further": "far", "furthest": "far",
    "farther": "far", "farthest": "far",
    "elder": "old", "eldest": "old",
}

_PRONOUN_LEMMAS = {
    "me": "i", "my": "i", "mine": "i", "myself": "i",
    "we": "we", "us": "we", "our": "we", "ours": "we", "ourselves": "we",
    "you": "you", "your": "you", "yours": "you", "yourself": "you",
    "yourselves": "you",
    "he": "he", "him": "he", "his": "he", "himself": "he",
    "she": "she", "her": "she", "hers": "she", "herself": "she",
    "it": "it", "its": "it", "itself": "it",
    "they": "they", "them": "they", "their": "they", "theirs": "they",
    "themselves": "they",
    "i": "i",
}

_VOWELS = set("aeiou")

# Stems the final-'e' heuristic must leave alone ("visited" -> "visit",
# not "visite").  Mostly -it/-us/-at words with no silent 'e'.
_NO_FINAL_E = {
    "visit", "edit", "limit", "exhibit", "benefit", "profit", "orbit",
    "audit", "credit", "deposit", "inherit", "inhibit", "prohibit",
    "exit", "vomit", "merit", "spirit", "summit", "habit", "recruit",
    "suit", "await", "wait", "eat", "beat", "treat", "heat", "cheat",
    "repeat", "seat", "defeat", "great", "sweat", "focus", "bias",
    "canvas", "big", "talk", "walk", "work", "look", "cook", "book",
    "pick", "kick", "check", "thank", "think", "drink", "ask", "risk",
    "park", "bark", "mark", "remark", "link", "rank", "blink", "wink",
    "attack", "back", "pack", "track", "stick", "lock", "rock", "knock",
    "mock", "block", "click", "lick", "tick", "milk", "long",
    "belong", "sing", "bring", "hang", "ring", "bang", "gang",
}


def _strip_doubling(stem: str) -> str:
    """Undo consonant doubling: ``stopp`` -> ``stop``, ``sitt`` -> ``sit``."""
    if (
        len(stem) >= 3
        and stem[-1] == stem[-2]
        and stem[-1] not in _VOWELS
        and stem[-1] not in "sz"  # 'hiss', 'buzz' keep the double letter
        and stem[-3] in _VOWELS
    ):
        return stem[:-1]
    return stem


class Lemmatizer:
    """POS-aware English lemmatizer built from tables and suffix rules."""

    def lemmatize(self, word: str, pos: str | None = None) -> str:
        """Return the lemma of ``word``.

        Args:
            word: the surface form (any case; output is lower-case).
            pos: an optional Penn-Treebank tag.  When given, only the
                matching paradigm is applied; when omitted, verb, noun and
                adjective paradigms are tried in that order.
        """
        lower = word.lower()
        if pos is None:
            return (
                _IRREGULAR_VERBS.get(lower)
                or _MODALS.get(lower)
                or _CLITIC_LEMMAS.get(lower)
                or _IRREGULAR_NOUNS.get(lower)
                or _IRREGULAR_ADJECTIVES.get(lower)
                or _PRONOUN_LEMMAS.get(lower)
                or self._regular(lower)
            )
        if pos == "MD":
            return _MODALS.get(lower, lower)
        if pos.startswith("V"):
            return self._verb(lower)
        if pos in ("NNS", "NNPS"):
            return self._noun_plural(lower)
        if pos in ("JJR", "JJS", "RBR", "RBS"):
            return self._adjective(lower)
        if pos.startswith("PRP") or pos == "WP":
            return _PRONOUN_LEMMAS.get(lower, lower)
        return _CLITIC_LEMMAS.get(lower, lower)

    # -- paradigms ----------------------------------------------------------

    def _verb(self, word: str) -> str:
        if word in _CLITIC_LEMMAS:
            return _CLITIC_LEMMAS[word]
        if word in _IRREGULAR_VERBS:
            return _IRREGULAR_VERBS[word]
        if word.endswith("ies") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith("es") and len(word) > 3:
            stem = word[:-2]
            if stem.endswith(_ES_KEEP_E_ENDINGS):
                return stem
            return word[:-1]  # 'makes' -> 'make'
        if word.endswith("s") and len(word) > 2 and not word.endswith("ss"):
            return word[:-1]
        if word.endswith("ied") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith("ed") and len(word) > 3:
            stem = word[:-2]
            undoubled = _strip_doubling(stem)
            if undoubled != stem:
                return undoubled
            if self._needs_final_e(stem):
                return stem + "e"
            return stem
        if word.endswith("ing") and len(word) > 4:
            stem = word[:-3]
            if not any(c in _VOWELS for c in stem):
                # "bring", "spring": the 'ing' is part of the stem.
                return word
            undoubled = _strip_doubling(stem)
            if undoubled != stem:
                return undoubled
            if self._needs_final_e(stem):
                return stem + "e"
            return stem
        return word

    @staticmethod
    def _needs_final_e(stem: str) -> bool:
        """Heuristic: restore a dropped final 'e' ("mak" -> "make")."""
        if len(stem) < 2 or stem in _NO_FINAL_E:
            return False
        # CVC with final consonant that commonly follows 'e' dropping:
        # tak-, mak-, liv-, writ-, danc-, chang-...
        return stem[-1] in "kvzcgu" or stem.endswith(
            ("at", "it", "iv", "id", "ur", "as", "os", "us")
        )

    def _noun_plural(self, word: str) -> str:
        if word in _IRREGULAR_NOUNS:
            return _IRREGULAR_NOUNS[word]
        if word.endswith("ies") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith(("ches", "shes", "sses", "xes", "zes")):
            return word[:-2]
        if word.endswith("oes") and len(word) > 4:
            return word[:-2]
        if word.endswith("ves") and len(word) > 4:
            return word[:-3] + "f"
        if word.endswith("es") and len(word) > 3:
            return word[:-1]
        if word.endswith("s") and len(word) > 2 and not word.endswith(
            ("ss", "us", "is")
        ):
            return word[:-1]
        return word

    def _adjective(self, word: str) -> str:
        if word in _IRREGULAR_ADJECTIVES:
            return _IRREGULAR_ADJECTIVES[word]
        if word.endswith("iest") and len(word) > 5:
            return word[:-4] + "y"
        if word.endswith("ier") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith("est") and len(word) > 4:
            stem = word[:-3]
            undoubled = _strip_doubling(stem)
            if undoubled != stem:
                return undoubled
            if self._needs_final_e(stem) and not stem.endswith("e"):
                return stem + "e"
            return stem
        if word.endswith("er") and len(word) > 3:
            stem = word[:-2]
            undoubled = _strip_doubling(stem)
            if undoubled != stem:
                return undoubled
            if self._needs_final_e(stem) and not stem.endswith("e"):
                return stem + "e"
            return stem
        return word

    def _regular(self, word: str) -> str:
        """Best-effort lemma without a POS tag."""
        for paradigm in (self._verb, self._noun_plural, self._adjective):
            lemma = paradigm(word)
            if lemma != word:
                return lemma
        return word


_DEFAULT = Lemmatizer()


def lemmatize(word: str, pos: str | None = None) -> str:
    """Lemmatize with a shared default :class:`Lemmatizer`."""
    return _DEFAULT.lemmatize(word, pos)
