"""Penn-Treebank part-of-speech tagger.

This replaces the Stanford tagger the paper instruments (Section 2.2).
The design is a classic three-stage rule tagger:

1. **Lexicon lookup** — closed classes exhaustively, open classes from a
   domain lexicon (:mod:`repro.nlp.postag_lexicon`); the first candidate
   tag is the default.
2. **Morphological guesser** — suffix and shape heuristics for unknown
   words (capitalization -> NNP, ``-ly`` -> RB, digits -> CD, ...).
3. **Contextual rules** — Brill-style transformations that repair the
   defaults using the left/right context (e.g. a verb-tagged word after a
   determiner becomes a noun; a base-form verb after ``to`` stays VB; a
   plural noun after a wh-copula stays NNS).

The tagger is deterministic and transparent — every decision can be
traced to a lexicon entry or a named rule, in the same spirit as the
paper's preference for declarative pattern matching over opaque models.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import TaggingError
from repro.nlp.tokenizer import Token, tokenize
from repro.nlp.postag_lexicon import CLOSED_CLASS, OPEN_CLASS, TAGSET

__all__ = ["TaggedToken", "PosTagger", "tag"]


@dataclass(frozen=True, slots=True)
class TaggedToken:
    """A token paired with its Penn-Treebank POS tag."""

    token: Token
    tag: str

    @property
    def text(self) -> str:
        return self.token.text

    @property
    def lower(self) -> str:
        return self.token.lower

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.token.text}/{self.tag}"


_PUNCT_TAGS = {
    ",": ",", ".": ".", "!": ".", "?": ".", ";": ":", ":": ":",
    "(": "-LRB-", ")": "-RRB-", "[": "-LRB-", "]": "-RRB-",
    "{": "-LRB-", "}": "-RRB-", '"': "''", "`": "``", "``": "``",
    "''": "''", "'": "''", "“": "``", "”": "''", "‘": "``", "’": "''",
    "$": "$", "#": "#", "-": ":", "--": ":", "...": ":", "%": "SYM",
    "&": "CC", "/": "SYM", "<": "SYM", ">": "SYM", "«": "``", "»": "''",
}

_ORDINAL_RE = re.compile(r"^\d+(?:st|nd|rd|th)$", re.IGNORECASE)
_NUMBER_RE = re.compile(r"^[+-]?\d+(?:[.,:]\d+)*$")

# Suffix -> tag guesses for unknown words, checked longest-first.
_SUFFIX_TAGS: tuple[tuple[str, str], ...] = (
    ("ological", "JJ"), ("ability", "NN"), ("ibility", "NN"),
    ("ization", "NN"), ("ousness", "NN"),
    ("ments", "NNS"), ("nesses", "NNS"), ("ations", "NNS"),
    ("ment", "NN"), ("ness", "NN"), ("tion", "NN"), ("sion", "NN"),
    ("ance", "NN"), ("ence", "NN"), ("ship", "NN"), ("hood", "NN"),
    ("ism", "NN"), ("ist", "NN"), ("ity", "NN"), ("dom", "NN"),
    ("ware", "NN"), ("ology", "NN"), ("graphy", "NN"),
    ("able", "JJ"), ("ible", "JJ"), ("ical", "JJ"), ("ful", "JJ"),
    ("less", "JJ"), ("ous", "JJ"), ("ive", "JJ"), ("ish", "JJ"),
    ("ary", "JJ"), ("ile", "JJ"), ("ant", "JJ"), ("ent", "JJ"),
    ("al", "JJ"), ("ic", "JJ"),
    ("iest", "JJS"), ("ier", "JJR"),
    ("ingly", "RB"), ("edly", "RB"), ("fully", "RB"), ("ly", "RB"),
    ("ing", "VBG"), ("ed", "VBD"),
)


class PosTagger:
    """Deterministic rule-based POS tagger.

    Args:
        extra_lexicon: optional additional ``word -> (tags...)`` entries,
            e.g. domain terms learned from an ontology's labels.  These
            take precedence over the built-in open-class lexicon but not
            over closed-class words.
    """

    def __init__(self, extra_lexicon: dict[str, tuple[str, ...]] | None = None):
        self._lexicon: dict[str, tuple[str, ...]] = dict(OPEN_CLASS)
        if extra_lexicon:
            for word, tags in extra_lexicon.items():
                bad = set(tags) - TAGSET
                if bad:
                    raise TaggingError(
                        f"unknown tags {sorted(bad)} for lexicon entry "
                        f"{word!r}"
                    )
                self._lexicon[word.lower()] = tuple(tags)
        self._lexicon.update(CLOSED_CLASS)  # closed classes always win

    # -- public API ----------------------------------------------------------

    def tag(self, tokens: list[Token] | str) -> list[TaggedToken]:
        """Tag a token list (or raw text, which is tokenized first)."""
        if isinstance(tokens, str):
            tokens = tokenize(tokens)
        if not tokens:
            raise TaggingError("cannot tag an empty token list")
        tagged = [self._initial_tag(tok, i) for i, tok in enumerate(tokens)]
        self._apply_context_rules(tagged)
        return tagged

    def candidates(self, word: str) -> tuple[str, ...]:
        """All candidate tags the lexicon lists for ``word`` (may be empty)."""
        return self._lexicon.get(word.lower(), ())

    def known(self, word: str) -> bool:
        """True when the lexicon (not the guesser) covers ``word``.

        The accuracy harness uses this for its known/unknown-word
        accuracy split; punctuation counts as known since its tags are
        table-driven.
        """
        return word in _PUNCT_TAGS or word.lower() in self._lexicon

    # -- stage 1+2: lexicon and morphology -----------------------------------

    def _initial_tag(self, token: Token, position: int) -> TaggedToken:
        text = token.text
        if text in _PUNCT_TAGS:
            return TaggedToken(token, _PUNCT_TAGS[text])
        if not token.is_word:
            return TaggedToken(token, "SYM")

        lower = token.lower

        # Closed-class words keep their tags in any case ("The", "I", "We").
        closed = CLOSED_CLASS.get(lower)
        if closed:
            return TaggedToken(token, closed[0])

        # A capitalized word that is not sentence-initial is a proper noun
        # even when the lexicon knows its lower-case form: "Forest Hotel"
        # must become NNP NNP so the entity linker sees one mention.
        if text[0].isupper() and (position > 0 or "." in text):
            return TaggedToken(token, self._proper_noun_tag(text))

        entry = self._lexicon.get(lower)
        if entry:
            return TaggedToken(token, entry[0])

        if _NUMBER_RE.match(text) or _ORDINAL_RE.match(text):
            return TaggedToken(token, "CD")
        if any(ch.isupper() for ch in text[1:]):
            return TaggedToken(token, "NNP")

        guessed = self._guess_by_suffix(lower)
        if guessed:
            return TaggedToken(token, guessed)

        # Sentence-initial capitalized unknown word: prefer NNP only when
        # it does not look like a regular English word form.
        if text[0].isupper() and position == 0:
            return TaggedToken(token, "NNP")
        if lower.endswith("s") and len(lower) > 3:
            return TaggedToken(token, "NNS")
        return TaggedToken(token, "NN")

    @staticmethod
    def _proper_noun_tag(text: str) -> str:
        return "NNPS" if text.endswith("s") and len(text) > 3 else "NNP"

    @staticmethod
    def _guess_by_suffix(lower: str) -> str | None:
        for suffix, tag in _SUFFIX_TAGS:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                return tag
        return None

    # -- stage 3: contextual repair rules -------------------------------------

    def _apply_context_rules(self, tagged: list[TaggedToken]) -> None:
        """Brill-style transformations, applied in one left-to-right pass."""
        n = len(tagged)
        for i in range(n):
            cur = tagged[i]
            prev = tagged[i - 1] if i > 0 else None
            nxt = tagged[i + 1] if i + 1 < n else None
            new_tag = self._context_tag(cur, prev, nxt, tagged, i)
            if new_tag and new_tag != cur.tag:
                tagged[i] = TaggedToken(cur.token, new_tag)

    def _context_tag(
        self,
        cur: TaggedToken,
        prev: TaggedToken | None,
        nxt: TaggedToken | None,
        tagged: list[TaggedToken],
        i: int,
    ) -> str | None:
        cands = self._lexicon.get(cur.lower, ())

        # RULE to-infinitive: "to" + ambiguous verb -> VB.
        if prev and prev.tag == "TO" and (
            cur.tag.startswith("V") or "VB" in cands
        ):
            return "VB"

        # RULE modal-verb: modal + ambiguous word that can be a verb -> VB.
        if prev and prev.tag == "MD":
            if "VB" in cands or cur.tag in ("VBP", "NN", "VB"):
                if cur.tag.startswith("V") or "VB" in cands:
                    return "VB"

        # RULE pronoun-verb: personal pronoun + noun-tagged word that can
        # be a verb -> finite verb ("should I store coffee", "we cook").
        if prev and prev.tag == "PRP" and cur.tag in ("NN", "NNS", "IN") and (
            "VB" in cands or "VBP" in cands
        ):
            return "VBP"

        # RULE det-noun: determiner/possessive + verb-tagged word -> noun.
        if prev and prev.tag in ("DT", "PRP$", "JJ", "JJS", "JJR") and (
            cur.tag in ("VB", "VBP")
        ):
            if "NN" in cands or not cands:
                return "NN"

        # RULE det-vbz-nns: determiner + VBZ-tagged word that can be a
        # plural noun -> NNS ("the rides").
        if prev and prev.tag in ("DT", "PRP$", "JJ", "JJS", "JJR") and (
            cur.tag == "VBZ" and "NNS" in cands
        ):
            return "NNS"

        # RULE that-complementizer: "that" before a clause subject is IN,
        # before a noun is DT, after a noun and before a verb is WDT.
        if cur.lower == "that":
            if nxt and nxt.tag.startswith(("N", "PRP", "DT", "JJ")):
                return "DT"
            if prev and prev.tag.startswith("N") and nxt and (
                nxt.tag.startswith("V") or nxt.tag == "MD"
            ):
                return "WDT"
            return "IN"

        # RULE degree-adverb: "most"/"least" directly before an adjective
        # is the superlative degree adverb ("the least crowded museums").
        if cur.lower in ("most", "least") and nxt and (
            nxt.tag.startswith("J") or nxt.tag in ("VBG", "VBN")
        ):
            return "RBS"

        # RULE graded-participle: a gerund/participle right after a
        # degree adverb is adjectival ("the most fascinating museum").
        if cur.tag in ("VBG", "VBN") and prev and prev.lower in (
            "most", "least", "very", "quite", "too", "extremely",
            "incredibly",
        ):
            return "JJ"

        # RULE what-det: "what"/"which" directly before a noun is WDT
        # ("What type of camera...").
        if cur.lower == "what" and nxt and nxt.tag.startswith(("NN", "JJ")):
            return "WDT"

        # RULE bare-apostrophe-possessive: "'" after a plural/proper noun
        # and before a nominal is the possessive clitic ("kids' dishes").
        if cur.text == "'" and prev and prev.tag in (
            "NNS", "NNP", "NNPS"
        ) and nxt and (nxt.tag.startswith(("NN", "JJ")) or nxt.tag == "CD"):
            return "POS"

        # RULE possessive-s: "'s" after a proper/common noun followed by a
        # noun is POS; otherwise it is the clitic verb.
        if cur.lower == "'s":
            if nxt and (nxt.tag.startswith(("NN", "JJ")) or nxt.tag == "CD"):
                return "POS"
            return "VBZ"

        # RULE vbd-vbn: a VBD after have/has/had/be-forms is VBN.
        if cur.tag == "VBD" and prev and prev.lower in (
            "have", "has", "had", "'ve", "is", "are", "was", "were", "be",
            "been", "being", "am", "'s", "'re", "'m", "get", "got",
        ):
            return "VBN"

        # RULE vbn-vbd: a lone VBN with no auxiliary to its left is VBD.
        if cur.tag == "VBN" and "VBD" in cands:
            has_aux = any(
                t.lower in ("have", "has", "had", "'ve", "be", "been",
                            "is", "are", "was", "were", "am", "'s", "'re")
                for t in tagged[max(0, i - 3):i]
            )
            if not has_aux:
                return "VBD"

        # RULE copula-adjective: be-form + VBG that the lexicon also lists
        # as JJ -> JJ ("is interesting" stays JJ via lexicon already).

        # RULE noun-before-verb: plural-looking VBZ directly before a
        # finite verb or modal is a plural noun ("the stores sell" handled
        # above; here "stores that sell").
        if cur.tag == "VBZ" and "NNS" in cands and nxt and nxt.tag in (
            "MD", "VBP", "VBD"
        ):
            return "NNS"

        # RULE sentence-initial-verb: an imperative start ("Find places
        # ...") — NN/NNP-tagged known verb at position 0 followed by a
        # determiner or noun becomes VB.
        if i == 0 and nxt and nxt.tag in ("DT", "PRP$", "NN", "NNS", "JJ",
                                          "PRP", "CD"):
            if "VB" in cands and cur.tag not in ("WRB", "WP", "WDT", "MD",
                                                 "VB"):
                return "VB"

        # RULE preposition-verb: IN/RP + verb-or-noun ambiguous ->
        # gerund/noun reading preferred; keep as is.

        # RULE adjectival-participle: VBG/VBN directly before a noun is JJ
        # when the lexicon allows ("existing tools") — approximate: only
        # when the word is lexicon-listed as JJ.
        if cur.tag in ("VBG", "VBN") and "JJ" in cands and nxt and (
            nxt.tag.startswith("NN")
        ):
            return "JJ"

        return None


_DEFAULT = PosTagger()


def tag(text_or_tokens: str | list[Token]) -> list[TaggedToken]:
    """Tag with a shared default :class:`PosTagger`."""
    return _DEFAULT.tag(text_or_tokens)
