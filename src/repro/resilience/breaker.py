"""A thread-safe circuit breaker guarding an unreliable dependency.

The classic three-state machine:

* **closed** — calls flow through; consecutive failures are counted and
  a success resets the count;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker rejects every call (:meth:`allow` returns False) for
  ``recovery_seconds``, so a dead interaction provider or crowd backend
  is not hammered while it is down;
* **half-open** — once the recovery window elapses, up to
  ``half_open_max`` probe calls are let through; one success closes the
  breaker, one failure re-opens it for another window.

The clock is injectable, so the whole state machine is testable without
sleeping.  All transitions happen under one lock — the breaker is
shared by every worker thread of a batch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.errors import CircuitOpenError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Failure-counting breaker with a half-open recovery probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    #: Numeric encoding for the state gauge (``nl2cm_breaker_state``).
    STATE_CODES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_max = half_open_max
        self.clock = clock
        self.name = name
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: Calls rejected while open (monotonic).
        self.rejections = 0
        #: Closed->open transitions (monotonic).
        self.opens = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def state_code(self) -> float:
        """Numeric state for gauges: 0 closed, 1 half-open, 2 open."""
        return self.STATE_CODES[self.state]

    def _maybe_half_open(self) -> None:
        """Open -> half-open once the recovery window elapses (locked)."""
        if (
            self._state == self.OPEN
            and self.clock() - self._opened_at >= self.recovery_seconds
        ):
            self._state = self.HALF_OPEN
            self._probes_inflight = 0

    # -- protocol ------------------------------------------------------------

    def allow(self) -> bool:
        """May the caller try the dependency right now?

        Counts a rejection when the answer is no.  In half-open state at
        most ``half_open_max`` callers are admitted as probes until one
        of them reports an outcome.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if (
                self._state == self.HALF_OPEN
                and self._probes_inflight < self.half_open_max
            ):
                self._probes_inflight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probes_inflight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                if self._state != self.OPEN:
                    self.opens += 1
                self._state = self.OPEN
                self._opened_at = self.clock()
                self._probes_inflight = 0

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the breaker; raise when open.

        Raises:
            CircuitOpenError: when the breaker rejects the call.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"(recovering for {self.recovery_seconds:g} s)"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
