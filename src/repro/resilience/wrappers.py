"""Resilient wrappers for the pipeline's two unreliable parties.

:class:`ResilientInteraction` guards an interaction provider with a
retry policy and an optional shared circuit breaker, and — after
retries are exhausted or while the breaker is open — *degrades
gracefully*: it answers from a fallback provider (normally
:class:`~repro.ui.interaction.AutoInteraction` defaults, the paper's
"skip the interaction point" configuration) instead of failing the
whole translation, and records a :class:`DegradationEvent` per skipped
interaction.  One wrapper serves one translation, so its events map
1:1 onto a request's trace.

:class:`ResilientCrowd` guards a crowd's ``ask`` the same way, but has
no meaningful fallback answer — after retries it raises a typed error
(:class:`~repro.errors.ProviderFailure` for non-library exceptions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CircuitOpenError, ProviderFailure, ReproError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import Deadline, RetryPolicy

__all__ = ["DegradationEvent", "ResilientCrowd", "ResilientInteraction"]


@dataclass(frozen=True)
class DegradationEvent:
    """One interaction answered by the fallback instead of the provider."""

    request: str            # request type name, e.g. "LimitRequest"
    reason: str             # "circuit-open" | "retries-exhausted" | ...
    error: str | None = None  # repr of the last provider error, if any


class ResilientInteraction:
    """Retry + breaker + graceful degradation around a provider.

    Args:
        inner: the guarded provider.
        policy: retry policy; a default one if omitted.
        breaker: optional shared breaker (one per service, guarding the
            provider dependency across all worker threads).
        fallback: provider answering degraded requests; ``None`` turns
            degradation off — exhausted retries then raise a typed
            error instead.
        deadline: optional overall budget; backoff pauses are clamped
            to it and an expired deadline stops retrying.
        on_retry / on_degraded / on_rejected: counter hooks for the
            serving layer (called outside any lock held here).

    Deliberately defines no ``cache_fingerprint``: the wrapper is
    applied *after* cache lookup, and the service refuses to cache
    degraded results, so resilience never poisons the cache.
    """

    def __init__(
        self,
        inner,
        *,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        fallback=None,
        deadline: Deadline | None = None,
        on_retry: Callable[[], None] | None = None,
        on_degraded: Callable[[], None] | None = None,
        on_rejected: Callable[[], None] | None = None,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self.fallback = fallback
        self.deadline = deadline
        self.on_retry = on_retry
        self.on_degraded = on_degraded
        self.on_rejected = on_rejected
        self.events: list[DegradationEvent] = []
        self.retries = 0

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def ask(self, request) -> Any:
        if self.breaker is not None and not self.breaker.allow():
            if self.on_rejected is not None:
                self.on_rejected()
            return self._degrade(request, "circuit-open", None)
        attempt = 0
        while True:
            try:
                answer = self.inner.ask(request)
            except Exception as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if self._may_retry(exc, attempt):
                    self._pause(request, attempt)
                    attempt += 1
                    continue
                return self._degrade(request, "retries-exhausted", exc)
            if self.breaker is not None:
                self.breaker.record_success()
            return answer

    # -- internals -----------------------------------------------------------

    def _may_retry(self, exc: BaseException, attempt: int) -> bool:
        if not self.policy.retryable(exc) or attempt >= self.policy.retries:
            return False
        if self.deadline is not None and self.deadline.expired:
            return False
        if self.breaker is not None and not self.breaker.allow():
            if self.on_rejected is not None:
                self.on_rejected()
            return False
        return True

    def _pause(self, request, attempt: int) -> None:
        pause = self.policy.delay(attempt, key=type(request).__name__)
        if self.deadline is not None:
            pause = min(pause, max(0.0, self.deadline.remaining()))
        self.retries += 1
        if self.on_retry is not None:
            self.on_retry()
        if pause > 0:
            self.policy.sleep(pause)

    def _degrade(self, request, reason: str, error: BaseException | None):
        if self.fallback is None:
            if error is None:
                raise CircuitOpenError(
                    f"interaction provider circuit is open; no fallback "
                    f"configured for {type(request).__name__}"
                )
            if isinstance(error, ReproError):
                raise error
            raise ProviderFailure(
                f"interaction provider failed after "
                f"{self.policy.retries} retries: {error!r}"
            ) from error
        answer = self.fallback.ask(request)
        self.events.append(DegradationEvent(
            request=type(request).__name__,
            reason=reason,
            error=repr(error) if error is not None else None,
        ))
        if self.on_degraded is not None:
            self.on_degraded()
        return answer


class ResilientCrowd:
    """Retry + breaker around a crowd's ``ask``; delegates the rest.

    There is no sensible fabricated crowd answer, so exhausted retries
    raise: library errors as themselves, anything else wrapped in
    :class:`~repro.errors.ProviderFailure`.  An open breaker raises
    :class:`~repro.errors.CircuitOpenError` without touching the crowd.
    """

    def __init__(
        self,
        inner,
        *,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self.retries = 0

    def ask(self, member, fact_set) -> float:
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"crowd circuit is open; member {member.member_id} "
                f"not asked"
            )

        def once() -> float:
            try:
                value = self.inner.ask(member, fact_set)
            except Exception:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return value

        def count_retry(_attempt: int, _exc: BaseException) -> None:
            self.retries += 1

        try:
            return self.policy.run(
                once,
                key=(member.member_id, fact_set.key()),
                on_retry=count_retry,
            )
        except ReproError:
            raise
        except Exception as exc:
            raise ProviderFailure(
                f"crowd failed after {self.policy.retries} retries: "
                f"{exc!r}"
            ) from exc

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
