"""Fault tolerance for the serving layer (``repro.resilience``).

NL2CM's pipeline depends on two unreliable parties — the interaction
provider (a human answering clarification prompts, paper Section 4.1)
and the crowd itself.  This dependency-free subsystem keeps one flaky
call from sinking a whole batch:

* :class:`RetryPolicy` — exponential backoff with *deterministic*
  seeded jitter and injectable clock/sleep (tests never sleep);
* :class:`Deadline` — per-stage time budgets, checked cooperatively as
  each pipeline stage's span closes;
* :class:`CircuitBreaker` — guards the provider and the crowd so a
  dead dependency is rejected fast instead of hammered;
* :class:`ResilientInteraction` — graceful degradation: after retries
  are exhausted (or while the breaker is open) the request is answered
  by :class:`~repro.ui.interaction.AutoInteraction` defaults, recorded
  as a :class:`DegradationEvent` and counted in
  ``repro_degraded_total``;
* :class:`FaultPlan` / :class:`FlakyInteraction` / :class:`ChaosCrowd`
  — the deterministic fault-injection harness behind the chaos suite
  and the CLI's ``--inject-faults``.

:class:`ResilienceConfig` bundles the knobs for
``TranslationService(resilience=...)`` and the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import ChaosCrowd, FaultPlan, FlakyInteraction
from repro.resilience.policy import Deadline, RetryPolicy, seeded_uniform
from repro.resilience.wrappers import (
    DegradationEvent,
    ResilientCrowd,
    ResilientInteraction,
)

__all__ = [
    "ChaosCrowd",
    "CircuitBreaker",
    "Deadline",
    "DegradationEvent",
    "FaultPlan",
    "FlakyInteraction",
    "ResilienceConfig",
    "ResilientCrowd",
    "ResilientInteraction",
    "RetryPolicy",
    "seeded_uniform",
]


@dataclass
class ResilienceConfig:
    """Knobs of the service's fault-tolerance layer.

    Attributes:
        retries: retry attempts per interaction after the first call.
        base_delay_ms / multiplier / max_delay_ms / jitter / seed:
            the :class:`RetryPolicy` backoff schedule.
        degrade: answer exhausted interactions from
            :class:`~repro.ui.interaction.AutoInteraction` defaults
            (recording a degradation) instead of raising.
        breaker_threshold: consecutive provider failures that open the
            circuit; 0 disables the breaker.
        breaker_recovery_ms: how long an open circuit rejects calls
            before probing again.
        faults: optional deterministic :class:`FaultPlan` injected
            *under* the retry layer (chaos testing and the demo's
            ``--inject-faults``).
        clock / sleep: injectable time sources for the whole layer.
    """

    retries: int = 3
    base_delay_ms: float = 50.0
    multiplier: float = 2.0
    max_delay_ms: float = 2000.0
    jitter: float = 0.5
    seed: int = 0
    degrade: bool = True
    breaker_threshold: int = 5
    breaker_recovery_ms: float = 30000.0
    faults: FaultPlan | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def policy(self) -> RetryPolicy:
        """The configured retry policy."""
        return RetryPolicy(
            retries=self.retries,
            base_delay=self.base_delay_ms / 1000.0,
            multiplier=self.multiplier,
            max_delay=self.max_delay_ms / 1000.0,
            jitter=self.jitter,
            seed=self.seed,
            clock=self.clock,
            sleep=self.sleep,
        )

    def breaker(self, name: str = "interaction") -> CircuitBreaker | None:
        """A breaker per the config, or None when disabled."""
        if self.breaker_threshold <= 0:
            return None
        return CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            recovery_seconds=self.breaker_recovery_ms / 1000.0,
            clock=self.clock,
            name=name,
        )
