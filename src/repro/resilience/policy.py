"""Retry policies and deadlines: the timing substrate of fault tolerance.

Everything here is deterministic and injectable by design:

* backoff jitter is *seeded* — computed from a hash of
  ``(seed, key, attempt)``, never from process randomness — so a retry
  schedule is bit-reproducible under a fixed seed;
* the clock and the sleep function are constructor arguments, so tests
  drive time forward explicitly and never actually sleep.

A :class:`Deadline` is a point on a monotonic clock; the pipeline
attaches one per stage span (cooperative: a synchronous stage cannot be
interrupted mid-flight, so the deadline is checked when the stage's
span closes) and :meth:`RetryPolicy.run` clamps its backoff pauses to
whatever budget remains.
"""

from __future__ import annotations

import hashlib
import struct
import time
from typing import Any, Callable

from repro.errors import DeadlineExceeded, ReproError

__all__ = ["Deadline", "RetryPolicy", "seeded_uniform"]


def seeded_uniform(*key_parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed by ``key_parts``.

    Hash-based (the same construction as the crowd simulator's noise),
    so any call site can be sampled lazily, in any order, on any thread,
    and still reproduce exactly.
    """
    digest = hashlib.sha256(
        "\x1f".join(str(p) for p in key_parts).encode("utf-8")
    ).digest()
    (a,) = struct.unpack("<Q", digest[:8])
    return a / 2.0 ** 64


class Deadline:
    """An absolute time budget on an injectable monotonic clock."""

    __slots__ = ("budget", "_clock", "_expires_at")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds < 0:
            raise ValueError("deadline budget must be non-negative")
        self.budget = float(seconds)
        self._clock = clock
        self._expires_at = clock() + float(seconds)

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        return cls(seconds, clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0:
            elapsed = self.budget - remaining
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget * 1000:.1f} ms "
                f"deadline ({elapsed * 1000:.1f} ms elapsed)",
                stage=what,
                elapsed=elapsed,
                budget=self.budget,
            )


#: Exception types retried by default: every library error plus the
#: transient-I/O shapes a real interaction transport would raise.
DEFAULT_RETRY_ON: tuple[type[BaseException], ...] = (
    ReproError, ConnectionError, TimeoutError, OSError,
)


class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    Args:
        retries: attempts *after* the first call (``retries=3`` means up
            to 4 calls total).
        base_delay: first backoff pause, seconds.
        multiplier: exponential growth factor per attempt.
        max_delay: cap on a single pause, seconds.
        jitter: fraction of the pause randomized away, in ``[0, 1]``;
            the pause for attempt *i* is
            ``capped * (1 - jitter * u(seed, key, i))``.
        seed: determinism seed for the jitter draws.
        retry_on: exception types worth retrying; anything else
            propagates immediately.
        clock: monotonic clock, injectable for tests.
        sleep: pause function, injectable so tests never sleep.
    """

    def __init__(
        self,
        retries: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRY_ON,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.retries = retries
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retry_on = tuple(retry_on)
        self.clock = clock
        self.sleep = sleep

    def retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int, key: object = "") -> float:
        """The backoff pause before retry number ``attempt`` (0-based)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** attempt
        )
        if not self.jitter:
            return raw
        u = seeded_uniform(self.seed, key, attempt)
        return raw * (1.0 - self.jitter * u)

    def delays(self, key: object = "") -> list[float]:
        """The full (deterministic) backoff schedule for ``key``."""
        return [self.delay(i, key) for i in range(self.retries)]

    def run(
        self,
        fn: Callable[[], Any],
        *,
        key: object = "",
        deadline: Deadline | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Call ``fn`` under this policy; return its first success.

        Retries only :attr:`retry_on` exceptions, pausing per
        :meth:`delay` (clamped to the deadline's remaining budget).
        When retries are exhausted — or the deadline expires first —
        the *last* exception is re-raised as-is; callers that need a
        typed error wrap it themselves (see ``ResilientInteraction``).
        """
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                if not self.retryable(exc) or attempt >= self.retries:
                    raise
                pause = self.delay(attempt, key)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise
                    pause = min(pause, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc)
                if pause > 0:
                    self.sleep(pause)
                attempt += 1
