"""Deterministic fault injection: scheduled and seeded-rate failures.

A :class:`FaultPlan` is a pure description of *when* to fail — on
scheduled call indices, or at a seeded rate keyed by whatever the
injector passes (question text, member id, attempt number).  The
decision function is a hash, not process randomness, so a chaos run is
bit-reproducible for a fixed seed regardless of thread scheduling, as
long as each key's call sequence is itself sequential (which it is: one
translation runs on one worker, one engine evaluation on one thread).

:class:`FlakyInteraction` and :class:`ChaosCrowd` wrap the two
unreliable parties of the paper's pipeline — the interaction provider
(the user) and the crowd — and fail per plan, raising
:class:`~repro.errors.InjectedFault` by default or any configured
exception type (``RuntimeError`` exercises the serving layer's
unexpected-exception guard).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import InjectedFault
from repro.resilience.policy import seeded_uniform

__all__ = ["ChaosCrowd", "FaultPlan", "FlakyInteraction"]

#: Exception types nameable in a ``--inject-faults`` spec.
ERROR_TYPES: dict[str, type[BaseException]] = {
    "injected": InjectedFault,
    "runtime": RuntimeError,
    "timeout": TimeoutError,
    "connection": ConnectionError,
}


@dataclass(frozen=True)
class FaultPlan:
    """When and how the injected dependency fails.

    Attributes:
        rate: seeded probability of failure per call, in ``[0, 1]``.
        fail_indices: 0-based call indices that *always* fail
            (scheduled faults, for exact scripts in tests).
        seed: determinism seed for the rate draws.
        error_type: exception class raised for an injected fault.
        message: prefix of the raised error's message.
    """

    rate: float = 0.0
    fail_indices: frozenset[int] = field(default_factory=frozenset)
    seed: int = 0
    error_type: type[BaseException] = InjectedFault
    message: str = "injected fault"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def should_fail(self, index: int, key: tuple = ()) -> bool:
        """Deterministic failure decision for one call.

        ``index`` is the injector's call counter (drives scheduled
        faults); ``key`` feeds the seeded rate draw — injectors pass
        whatever makes the decision schedule-independent (question
        text + per-translation call index, member + fact-set + attempt).
        """
        if index in self.fail_indices:
            return True
        if self.rate <= 0.0:
            return False
        return seeded_uniform(self.seed, *key) < self.rate

    def make_error(self, detail: str) -> BaseException:
        return self.error_type(f"{self.message}: {detail}")

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--inject-faults`` spec string.

        Comma-separated ``key=value`` pairs::

            rate=0.3,seed=7
            indices=0:2:5,error=runtime
            rate=0.25,seed=1,error=timeout,message=provider down

        ``indices`` is colon-separated.  Raises ``ValueError`` on an
        unknown key or malformed value (argparse-friendly).
        """
        kwargs: dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"fault spec entry {part!r} is not key=value"
                )
            name, _, value = part.partition("=")
            name = name.strip()
            value = value.strip()
            if name == "rate":
                kwargs["rate"] = float(value)
            elif name == "seed":
                kwargs["seed"] = int(value)
            elif name == "indices":
                kwargs["fail_indices"] = frozenset(
                    int(i) for i in value.split(":") if i
                )
            elif name == "error":
                if value not in ERROR_TYPES:
                    raise ValueError(
                        f"unknown error type {value!r}; choose from "
                        f"{sorted(ERROR_TYPES)}"
                    )
                kwargs["error_type"] = ERROR_TYPES[value]
            elif name == "message":
                kwargs["message"] = value
            else:
                raise ValueError(f"unknown fault spec key {name!r}")
        return cls(**kwargs)


class FlakyInteraction:
    """An interaction provider that fails per plan, else delegates.

    One instance per translation is the deterministic shape (the
    service keys it by the question text, so a question's fault
    schedule is independent of thread scheduling); a shared instance is
    still thread-safe, just keyed by global call order.
    """

    def __init__(self, inner, plan: FaultPlan, *, key: str = "",
                 max_failures: int | None = None):
        self.inner = inner
        self.plan = plan
        self.key = key
        self.max_failures = max_failures
        self.calls = 0
        self.failures = 0
        self._lock = threading.Lock()

    def ask(self, request) -> Any:
        with self._lock:
            index = self.calls
            self.calls += 1
            fail = self.plan.should_fail(index, key=(self.key, index)) and (
                self.max_failures is None
                or self.failures < self.max_failures
            )
            if fail:
                self.failures += 1
        if fail:
            raise self.plan.make_error(
                f"interaction call #{index} (key={self.key!r})"
            )
        return self.inner.ask(request)


class ChaosCrowd:
    """A crowd wrapper that fails per plan, else delegates to the crowd.

    The rate draw is keyed by ``(member, fact-set, per-pair attempt)``,
    so a retried question eventually gets through — and the whole
    schedule reproduces for a fixed seed.  Everything the OASSIS engine
    reads off a crowd (``member``, ``size``, ``ground_truth``, ...)
    delegates to the wrapped instance.
    """

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.calls = 0
        self.failures = 0
        self._attempts: dict[tuple, int] = {}
        self._lock = threading.Lock()

    def ask(self, member, fact_set) -> float:
        pair = (member.member_id, fact_set.key())
        with self._lock:
            attempt = self._attempts.get(pair, 0)
            self._attempts[pair] = attempt + 1
            index = self.calls
            self.calls += 1
            fail = self.plan.should_fail(
                index, key=(pair[0], pair[1], attempt)
            )
            if fail:
                self.failures += 1
        if fail:
            raise self.plan.make_error(
                f"crowd member {member.member_id} on {fact_set.key()!r}"
            )
        return self.inner.ask(member, fact_set)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
