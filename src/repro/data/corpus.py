"""The annotated question corpus.

Stands in for the Yahoo! Answers dataset the demo draws from (paper
Section 4.2): forum-style questions across the demo's topics — travel,
shopping, health, food — including **every concrete question quoted in
the paper**.  Each entry carries gold annotations:

* ``supported`` — whether the verification step should let it through
  (with ``reject_reason`` naming the expected rejection);
* ``gold_ix_anchors`` — the words that anchor Individual eXpressions
  (the habit verb or opinion adjective), for IX-detection
  precision/recall;
* ``gold_general_entities`` — local names of ontology terms the WHERE
  clause should reference, for general-part scoring;
* ``gold_query`` — the exact expected OASSIS-QL text, where defined
  (the exact-translation subset).

The corpus is data, so experiment harnesses can iterate it without
hard-coding questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CorpusQuestion", "CORPUS", "supported_questions",
           "unsupported_questions", "questions_by_domain"]


@dataclass(frozen=True)
class CorpusQuestion:
    """One annotated NL question."""

    id: str
    text: str
    domain: str
    supported: bool = True
    reject_reason: str = ""
    gold_ix_anchors: tuple[str, ...] = ()
    gold_general_entities: tuple[str, ...] = ()
    gold_query: str | None = None
    from_paper: bool = False


_FIGURE1_QUERY = """\
SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1"""


CORPUS: tuple[CorpusQuestion, ...] = (
    # ------------------------------------------------------------------ travel
    CorpusQuestion(
        id="travel-01",
        text="What are the most interesting places near Forest Hotel, "
             "Buffalo, we should visit in the fall?",
        domain="travel",
        gold_ix_anchors=("interesting", "visit"),
        gold_general_entities=("Place", "Forest_Hotel,_Buffalo,_NY"),
        gold_query=_FIGURE1_QUERY,
        from_paper=True,
    ),
    CorpusQuestion(
        id="travel-02",
        text="Which hotel in Vegas has the best thrill ride?",
        domain="travel",
        gold_ix_anchors=("best",),
        gold_general_entities=("Hotel", "Las_Vegas", "ThrillRide"),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Hotel.
$y instanceOf ThrillRide.
$x locatedIn Las_Vegas.
$x hasAttraction $y}
SATISFYING
{$y hasLabel "good"}
ORDER BY DESC(SUPPORT)
LIMIT 5""",
        from_paper=True,
    ),
    CorpusQuestion(
        id="travel-03",
        text="Where do you visit in Buffalo?",
        domain="travel",
        gold_ix_anchors=("visit",),
        gold_general_entities=("Place", "Buffalo,_NY"),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x locatedIn Buffalo,_NY}
SATISFYING
{[] visit $x}
WITH SUPPORT THRESHOLD = 0.1""",
        from_paper=True,
    ),
    CorpusQuestion(
        id="travel-04",
        text="Can you recommend a romantic restaurant in Paris?",
        domain="travel",
        gold_ix_anchors=("recommend", "romantic"),
        gold_general_entities=("Restaurant", "Paris"),
    ),
    CorpusQuestion(
        id="travel-05",
        text="Where do you go hiking in the winter?",
        domain="travel",
        gold_ix_anchors=("go",),
        gold_general_entities=("Place",),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Place}
SATISFYING
{[] hike $x.
[] in Winter}
WITH SUPPORT THRESHOLD = 0.1""",
    ),
    CorpusQuestion(
        id="travel-06",
        text="What are the least crowded museums in Paris?",
        domain="travel",
        gold_ix_anchors=("crowded",),
        gold_general_entities=("Museum", "Paris"),
    ),
    CorpusQuestion(
        id="travel-07",
        text="Which museums are popular with locals?",
        domain="travel",
        gold_ix_anchors=("popular",),
        gold_general_entities=("Museum",),
    ),
    CorpusQuestion(
        id="travel-08",
        text="What are the most beautiful parks near Delaware Park?",
        domain="travel",
        gold_ix_anchors=("beautiful",),
        gold_general_entities=("Park", "Delaware_Park"),
    ),
    CorpusQuestion(
        id="travel-09",
        text="Where do teenagers hang out?",
        domain="travel",
        gold_ix_anchors=("hang",),
        gold_general_entities=("Place",),
    ),
    CorpusQuestion(
        id="travel-10",
        text="Which hotel in Vegas should we stay at?",
        domain="travel",
        gold_ix_anchors=("stay",),
        gold_general_entities=("Hotel", "Las_Vegas"),
    ),
    CorpusQuestion(
        id="travel-11",
        text="What are the best places we should see in Paris?",
        domain="travel",
        gold_ix_anchors=("best", "see"),
        gold_general_entities=("Place", "Paris"),
    ),
    CorpusQuestion(
        id="travel-12",
        text="Do you like the Buffalo Zoo?",
        domain="travel",
        gold_ix_anchors=("like",),
        gold_general_entities=("Buffalo_Zoo",),
    ),
    CorpusQuestion(
        id="travel-13",
        text="Is the Eiffel Tower beautiful in the winter?",
        domain="travel",
        gold_ix_anchors=("beautiful",),
        gold_general_entities=("Eiffel_Tower",),
    ),
    CorpusQuestion(
        id="travel-14",
        text="What places do your kids love in Buffalo?",
        domain="travel",
        gold_ix_anchors=("love",),
        gold_general_entities=("Place", "Buffalo,_NY"),
    ),
    CorpusQuestion(
        id="travel-15",
        text="Which beaches are good for families?",
        domain="travel",
        gold_ix_anchors=("good",),
        gold_general_entities=("Beach",),
    ),
    CorpusQuestion(
        id="travel-16",
        text="Where should I celebrate my birthday in Paris?",
        domain="travel",
        gold_ix_anchors=("celebrate",),
        gold_general_entities=("Place", "Paris"),
    ),
    CorpusQuestion(
        id="travel-17",
        text="Which parks in Buffalo are beautiful in the winter?",
        domain="travel",
        gold_ix_anchors=("beautiful",),
        gold_general_entities=("Park",),
    ),
    CorpusQuestion(
        id="travel-18",
        text="What are the best hotels near the Eiffel Tower?",
        domain="travel",
        gold_ix_anchors=("best",),
        gold_general_entities=("Hotel", "Eiffel_Tower"),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Hotel.
$x near Eiffel_Tower}
SATISFYING
{$x hasLabel "good"}
ORDER BY DESC(SUPPORT)
LIMIT 5""",
    ),
    CorpusQuestion(
        id="travel-19",
        text="Do you take your dog to Delaware Park?",
        domain="travel",
        gold_ix_anchors=("take",),
        gold_general_entities=("Dog",),
    ),
    CorpusQuestion(
        id="travel-20",
        text="Is the Big Apple Coaster exciting?",
        domain="travel",
        gold_ix_anchors=("exciting",),
        gold_general_entities=("Big_Apple_Coaster",),
        gold_query="""\
SELECT VARIABLES
SATISFYING
{Big_Apple_Coaster hasLabel "exciting"}
WITH SUPPORT THRESHOLD = 0.1""",
    ),
    CorpusQuestion(
        id="travel-21",
        text="Which museum in Paris is the most fascinating?",
        domain="travel",
        gold_ix_anchors=("fascinating",),
        gold_general_entities=("Museum", "Paris"),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Museum.
$x locatedIn Paris}
SATISFYING
{$x hasLabel "fascinating"}
ORDER BY DESC(SUPPORT)
LIMIT 5""",
    ),
    CorpusQuestion(
        id="travel-22",
        text="Where should we swim in the summer?",
        domain="travel",
        gold_ix_anchors=("swim",),
        gold_general_entities=("Place", "Summer"),
    ),
    # ------------------------------------------------------------------ shopping
    CorpusQuestion(
        id="shopping-01",
        text="What type of digital camera should I buy?",
        domain="shopping",
        gold_ix_anchors=("buy",),
        gold_general_entities=("CameraType",),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf CameraType}
SATISFYING
{[] buy $x}
WITH SUPPORT THRESHOLD = 0.1""",
        from_paper=True,
    ),
    CorpusQuestion(
        id="shopping-02",
        text="At what container should I store coffee?",
        domain="shopping",
        gold_ix_anchors=("store",),
        gold_general_entities=("Container",),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Container}
SATISFYING
{[] store Coffee.
[] at $x}
WITH SUPPORT THRESHOLD = 0.1""",
        from_paper=True,
    ),
    CorpusQuestion(
        id="shopping-03",
        text="Which camera type is the most reliable?",
        domain="shopping",
        gold_ix_anchors=("reliable",),
        gold_general_entities=("CameraType",),
    ),
    CorpusQuestion(
        id="shopping-04",
        text="What brand of camera do you use?",
        domain="shopping",
        gold_ix_anchors=("use",),
        gold_general_entities=("Company",),
    ),
    CorpusQuestion(
        id="shopping-05",
        text="What are the best gifts we should bring from Paris?",
        domain="shopping",
        gold_ix_anchors=("best", "bring"),
        gold_general_entities=("Paris",),
    ),
    CorpusQuestion(
        id="shopping-06",
        text="Is a mirrorless camera good for travel?",
        domain="shopping",
        gold_ix_anchors=("good",),
        gold_general_entities=("Mirrorless_Camera",),
    ),
    CorpusQuestion(
        id="shopping-07",
        text="Which action camera should my kids use?",
        domain="shopping",
        gold_ix_anchors=("use",),
        gold_general_entities=("Action_Camera",),
    ),
    CorpusQuestion(
        id="shopping-08",
        # Pure syntactic individuality: the subject is not a relative
        # participant and "sell" is not a personal habit — only the
        # modal marks the speaker's opinion (the paper's "Obama should
        # visit Buffalo" case).
        text="Should supermarkets sell beer on Sundays?",
        domain="shopping",
        gold_ix_anchors=("sell",),
        gold_general_entities=(),
    ),
    # ------------------------------------------------------------------ health
    CorpusQuestion(
        id="health-01",
        text="Is chocolate milk good for kids?",
        domain="health",
        gold_ix_anchors=("good",),
        gold_general_entities=("Chocolate_Milk",),
        gold_query="""\
SELECT VARIABLES
SATISFYING
{Chocolate_Milk hasLabel "good for kids"}
WITH SUPPORT THRESHOLD = 0.1""",
        from_paper=True,
    ),
    CorpusQuestion(
        id="health-02",
        text="Do you drink green tea in the morning?",
        domain="health",
        gold_ix_anchors=("drink",),
        gold_general_entities=("Green_Tea",),
    ),
    CorpusQuestion(
        id="health-03",
        text="Is orange juice healthy for kids?",
        domain="health",
        gold_ix_anchors=("healthy",),
        gold_general_entities=("Orange_Juice",),
    ),
    CorpusQuestion(
        id="health-04",
        text="What exercises should I do in the morning?",
        domain="health",
        gold_ix_anchors=("do",),
        gold_general_entities=(),
    ),
    CorpusQuestion(
        id="health-05",
        text="Do your kids drink chocolate milk for breakfast?",
        domain="health",
        gold_ix_anchors=("drink",),
        gold_general_entities=("Chocolate_Milk",),
    ),
    CorpusQuestion(
        id="health-06",
        text="Is coffee bad for teenagers?",
        domain="health",
        gold_ix_anchors=("bad",),
        gold_general_entities=("Coffee",),
    ),
    # ------------------------------------------------------------------ food
    CorpusQuestion(
        id="food-01",
        text="Which fiber-rich dishes do people like to eat for "
             "breakfast?",
        domain="food",
        gold_ix_anchors=("eat",),
        gold_general_entities=("Dish", "Fiber"),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Dish.
$x richIn Fiber}
SATISFYING
{[] eat $x.
[] for Breakfast}
WITH SUPPORT THRESHOLD = 0.1""",
    ),
    CorpusQuestion(
        id="food-02",
        text="What is your favorite dish?",
        domain="food",
        gold_ix_anchors=("favorite",),
        gold_general_entities=("Dish",),
    ),
    CorpusQuestion(
        id="food-03",
        text="Do you cook lentil soup for dinner?",
        domain="food",
        gold_ix_anchors=("cook",),
        gold_general_entities=("Lentil_Soup",),
    ),
    CorpusQuestion(
        id="food-04",
        text="What are the tastiest dishes with cheese?",
        domain="food",
        gold_ix_anchors=("tastiest",),
        gold_general_entities=("Dish", "Cheese"),
    ),
    CorpusQuestion(
        id="food-05",
        text="Which dishes rich in protein do you eat after the gym?",
        domain="food",
        gold_ix_anchors=("eat",),
        gold_general_entities=("Dish",),
    ),
    CorpusQuestion(
        id="food-06",
        text="Is sushi good for lunch?",
        domain="food",
        gold_ix_anchors=("good",),
        gold_general_entities=("Sushi",),
    ),
    CorpusQuestion(
        id="food-07",
        text="What desserts should I serve with coffee?",
        domain="food",
        gold_ix_anchors=("serve",),
        gold_general_entities=("Coffee",),
    ),
    CorpusQuestion(
        id="food-08",
        text="Do people eat oatmeal for breakfast?",
        domain="food",
        gold_ix_anchors=("eat",),
        gold_general_entities=("Oatmeal",),
    ),
    CorpusQuestion(
        id="food-09",
        text="What do locals eat for lunch in Paris?",
        domain="food",
        gold_ix_anchors=("eat",),
        gold_general_entities=("Lunch",),
    ),
    CorpusQuestion(
        id="food-10",
        text="Which ingredients do you cook with?",
        domain="food",
        gold_ix_anchors=("cook",),
        gold_general_entities=("Ingredient",),
        gold_query="""\
SELECT VARIABLES
WHERE
{$x instanceOf Ingredient}
SATISFYING
{[] cook $x}
WITH SUPPORT THRESHOLD = 0.1""",
    ),
    CorpusQuestion(
        id="health-07",
        text="Which beverages do you drink after yoga?",
        domain="health",
        gold_ix_anchors=("drink",),
        gold_general_entities=("Beverage", "Yoga"),
    ),
    CorpusQuestion(
        id="general-01",
        text="Do your friends play jazz?",
        domain="general",
        gold_ix_anchors=("play",),
        gold_general_entities=("Jazz",),
    ),
    CorpusQuestion(
        id="general-02",
        text="What souvenirs should we buy in Las Vegas?",
        domain="general",
        gold_ix_anchors=("buy",),
        gold_general_entities=(),
    ),
    # ------------------------------------------------- unsupported (stage iii)
    CorpusQuestion(
        id="unsupported-01",
        text="How should I store coffee?",
        domain="shopping",
        supported=False,
        reject_reason="descriptive-how",
        from_paper=True,
    ),
    CorpusQuestion(
        id="unsupported-02",
        text="How to cook rice?",
        domain="food",
        supported=False,
        reject_reason="descriptive-how",
    ),
    CorpusQuestion(
        id="unsupported-03",
        text="Why do people like jogging?",
        domain="health",
        supported=False,
        reject_reason="descriptive-why",
    ),
    CorpusQuestion(
        id="unsupported-04",
        text="For what purpose is baking soda used?",
        domain="food",
        supported=False,
        reject_reason="descriptive-purpose",
        from_paper=True,
    ),
    CorpusQuestion(
        id="unsupported-05",
        text="Why is the Louvre so famous?",
        domain="travel",
        supported=False,
        reject_reason="descriptive-why",
    ),
    CorpusQuestion(
        id="unsupported-06",
        text="I am going to Buffalo. What should I see?",
        domain="travel",
        supported=False,
        reject_reason="multiple-sentences",
    ),
    CorpusQuestion(
        id="unsupported-07",
        text="Buffalo?",
        domain="travel",
        supported=False,
        reject_reason="too-short",
    ),
    CorpusQuestion(
        id="unsupported-08",
        text="How many parks are in Buffalo?",
        domain="travel",
        supported=False,
        reject_reason="descriptive-how",
    ),
)


def supported_questions() -> list[CorpusQuestion]:
    """Questions the verification step should accept."""
    return [q for q in CORPUS if q.supported]


def unsupported_questions() -> list[CorpusQuestion]:
    """Questions the verification step should reject."""
    return [q for q in CORPUS if not q.supported]


def questions_by_domain(domain: str) -> list[CorpusQuestion]:
    """All questions of one domain."""
    return [q for q in CORPUS if q.domain == domain]
