"""Loaders for the embedded ontology snapshots.

Each loader parses a Turtle file from the package data into an
:class:`~repro.rdf.ontology.Ontology`.  ``load_merged_ontology`` unions
all snapshots — the configuration the demo runs with ("the system will
use the publicly available general data ontologies LinkedGeoData and
DBpedia", paper Section 4.2).

Results are cached: the snapshots are immutable package data, so one
parse per process is enough.  The cached instances are **frozen** —
mutating a shared cached ontology would silently poison every later
caller, so ``add``/``remove`` on their stores raise
:class:`~repro.errors.FrozenStoreError` instead.  Callers that need a
mutable ontology (e.g. mutation tests) take ``load_geo().copy()``.
"""

from __future__ import annotations

from functools import lru_cache
from importlib import resources

from repro.rdf.ontology import Ontology

__all__ = ["load_geo", "load_dbpedia", "load_food", "load_merged_ontology"]


def _read(filename: str) -> str:
    return resources.files("repro.data").joinpath(filename).read_text("utf-8")


@lru_cache(maxsize=None)
def load_geo() -> Ontology:
    """The LinkedGeoData-like snapshot (Buffalo, Las Vegas, Paris)."""
    return Ontology.from_turtle(_read("geo.ttl")).freeze()


@lru_cache(maxsize=None)
def load_dbpedia() -> Ontology:
    """The DBpedia-like snapshot (cameras, beverages, seasons, ...)."""
    return Ontology.from_turtle(_read("dbpedia.ttl")).freeze()


@lru_cache(maxsize=None)
def load_food() -> Ontology:
    """The nutrition snapshot (dishes, nutrients, ingredients)."""
    return Ontology.from_turtle(_read("food.ttl")).freeze()


@lru_cache(maxsize=None)
def load_merged_ontology() -> Ontology:
    """All snapshots merged — the demo configuration."""
    return Ontology.merged(load_geo(), load_dbpedia(), load_food()).freeze()
