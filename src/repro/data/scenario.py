"""Scenario packs: one bundle of every knowledge artifact a domain needs.

A *scenario pack* is the unit the ROADMAP's scenario-diversity item
ships: an ontology, the IX vocabularies, the detection pattern bank and
an annotated question corpus, bundled so they can be validated
**against each other** (``ScenarioLint``) before the system trusts
them.  The embedded demo data forms the default pack; new domains are
directories laid out as::

    mypack/
        *.ttl                 # ontology snapshots (merged on load)
        patterns.txt          # IX detection patterns
        vocabularies/
            V_opinion.txt     # one word list per vocabulary, by name
            ...
        corpus.json           # list of CorpusQuestion-shaped objects
        gold_nlp.conll        # optional gold POS/dependency annotations

``corpus.json`` entries carry the same fields as
:class:`~repro.data.corpus.CorpusQuestion`; only ``id``, ``text`` and
``domain`` are required.  ``gold_nlp.conll`` (the format is documented
in :mod:`repro.data.goldnlp`) feeds the per-pack accuracy harness
(:mod:`repro.eval.accuracy`).

Three *builtin* directory packs ship under ``src/repro/data/packs/``
(``patients``, ``movies``, ``commerce``), and the embedded demo corpus
is additionally sliced into per-domain packs (``travel``, ``shopping``,
``food``, ``health``) so quality is tracked per domain rather than only
in aggregate — see :func:`load_builtin_packs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.core.ixpatterns import IXPattern, parse_patterns
from repro.data.corpus import CORPUS, CorpusQuestion, questions_by_domain
from repro.data.goldnlp import GoldSentence, load_gold_conll
from repro.data.ontologies import load_merged_ontology
from repro.data.vocabularies import (
    Vocabulary,
    VocabularyRegistry,
    load_vocabularies,
)
from repro.errors import GoldCorpusError, ReproError, ScenarioPackError
from repro.rdf.ontology import Ontology

__all__ = [
    "ScenarioPack", "default_pack", "load_pack", "domain_pack",
    "builtin_pack_names", "builtin_packs_dir", "load_builtin_packs",
]

#: The demo-corpus domains that form per-domain builtin packs.
DOMAIN_PACKS = ("travel", "shopping", "food", "health")


@dataclass
class ScenarioPack:
    """A named bundle of cross-validatable knowledge artifacts."""

    name: str
    ontology: Ontology
    vocabularies: VocabularyRegistry
    patterns: list[IXPattern]
    corpus: tuple[CorpusQuestion, ...] = field(default_factory=tuple)
    gold_nlp: tuple[GoldSentence, ...] = field(default_factory=tuple)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ScenarioPack({self.name!r}, {len(self.ontology)} triples, "
            f"{len(self.vocabularies.names())} vocabularies, "
            f"{len(self.patterns)} patterns, "
            f"{len(self.corpus)} questions, "
            f"{len(self.gold_nlp)} gold sentences)"
        )


@lru_cache(maxsize=1)
def _default_gold() -> tuple[GoldSentence, ...]:
    """The gold annotations of the embedded demo corpus."""
    path = Path(__file__).resolve().parent / "gold_nlp.conll"
    if not path.is_file():  # pragma: no cover - packaging error
        return ()
    return load_gold_conll(path)


def default_pack() -> ScenarioPack:
    """The embedded demo scenario: merged snapshots + packaged data."""
    from repro.core.ixdetect import load_default_patterns

    return ScenarioPack(
        name="default",
        ontology=load_merged_ontology(),
        vocabularies=load_vocabularies(),
        patterns=load_default_patterns(),
        corpus=CORPUS,
        gold_nlp=_default_gold(),
    )


def domain_pack(domain: str) -> ScenarioPack:
    """One demo-corpus domain as its own pack (shared KB artifacts).

    Raises:
        ScenarioPackError: for a domain with no corpus questions.
    """
    from repro.core.ixdetect import load_default_patterns

    questions = questions_by_domain(domain)
    if not questions:
        raise ScenarioPackError(
            f"no corpus questions for domain {domain!r}"
        )
    ids = {q.id for q in questions}
    return ScenarioPack(
        name=domain,
        ontology=load_merged_ontology(),
        vocabularies=load_vocabularies(),
        patterns=load_default_patterns(),
        corpus=tuple(questions),
        gold_nlp=tuple(
            s for s in _default_gold() if s.id in ids
        ),
    )


def builtin_packs_dir() -> Path:
    """The directory holding the packaged scenario-pack directories."""
    return Path(__file__).resolve().parent / "packs"


def builtin_pack_names() -> tuple[str, ...]:
    """Names of every builtin pack: domain slices + packaged dirs."""
    packaged = tuple(
        sorted(
            p.name for p in builtin_packs_dir().iterdir() if p.is_dir()
        )
    ) if builtin_packs_dir().is_dir() else ()
    return DOMAIN_PACKS + packaged


def load_builtin_packs() -> tuple[ScenarioPack, ...]:
    """Every builtin pack, domain slices first, then packaged dirs."""
    packs = [domain_pack(domain) for domain in DOMAIN_PACKS]
    if builtin_packs_dir().is_dir():
        for path in sorted(builtin_packs_dir().iterdir()):
            if path.is_dir():
                packs.append(load_pack(path))
    return tuple(packs)


_CORPUS_FIELDS = {
    "id", "text", "domain", "supported", "reject_reason",
    "gold_ix_anchors", "gold_general_entities", "gold_query",
    "from_paper",
}


def _load_corpus(path: Path) -> tuple[CorpusQuestion, ...]:
    try:
        entries = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as err:
        raise ScenarioPackError(f"unreadable corpus {path}: {err}") from err
    if not isinstance(entries, list):
        raise ScenarioPackError(
            f"{path}: expected a JSON list of question objects"
        )
    questions = []
    seen_ids: set[str] = set()
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ScenarioPackError(
                f"{path}: entry {i} is not an object"
            )
        unknown = set(entry) - _CORPUS_FIELDS
        if unknown:
            raise ScenarioPackError(
                f"{path}: entry {i} has unknown fields "
                f"{sorted(unknown)}"
            )
        missing = {"id", "text", "domain"} - set(entry)
        if missing:
            raise ScenarioPackError(
                f"{path}: entry {i} is missing {sorted(missing)}"
            )
        if entry["id"] in seen_ids:
            raise ScenarioPackError(
                f"{path}: entry {i} duplicates question id "
                f"{entry['id']!r}"
            )
        seen_ids.add(entry["id"])
        for tuple_field in ("gold_ix_anchors", "gold_general_entities"):
            if tuple_field in entry:
                entry[tuple_field] = tuple(entry[tuple_field])
        try:
            questions.append(CorpusQuestion(**entry))
        except TypeError as err:
            raise ScenarioPackError(f"{path}: entry {i}: {err}") from err
    return tuple(questions)


def load_pack(directory: str | Path) -> ScenarioPack:
    """Load a scenario pack from a directory (layout in module docs).

    Raises:
        ScenarioPackError: when the directory is missing artifacts or
            an artifact cannot be parsed; the message names the
            offending file.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ScenarioPackError(f"not a pack directory: {root}")

    ttl_files = sorted(root.glob("*.ttl"))
    if not ttl_files:
        raise ScenarioPackError(f"{root}: no *.ttl ontology snapshot")
    ontologies = []
    for path in ttl_files:
        try:
            ontologies.append(
                Ontology.from_turtle(path.read_text("utf-8"))
            )
        except (OSError, ReproError) as err:
            raise ScenarioPackError(
                f"{path}: cannot load ontology: {err}"
            ) from err
    ontology = (
        ontologies[0] if len(ontologies) == 1
        else Ontology.merged(*ontologies)
    )

    patterns_file = root / "patterns.txt"
    if not patterns_file.is_file():
        raise ScenarioPackError(f"{root}: missing patterns.txt")
    try:
        patterns = parse_patterns(patterns_file.read_text("utf-8"))
    except (OSError, ReproError) as err:
        raise ScenarioPackError(
            f"{patterns_file}: cannot load patterns: {err}"
        ) from err

    vocabularies = VocabularyRegistry()
    vocab_dir = root / "vocabularies"
    if vocab_dir.is_dir():
        for path in sorted(vocab_dir.glob("*.txt")):
            words = [
                line.strip()
                for line in path.read_text("utf-8").splitlines()
                if line.strip() and not line.startswith("#")
            ]
            if not words:
                raise ScenarioPackError(
                    f"{path}: vocabulary file is empty"
                )
            vocabularies.register(Vocabulary(path.stem, words))

    corpus_file = root / "corpus.json"
    if not corpus_file.is_file():
        raise ScenarioPackError(f"{root}: missing corpus.json")
    corpus = _load_corpus(corpus_file)

    gold_file = root / "gold_nlp.conll"
    gold_nlp: tuple[GoldSentence, ...] = ()
    if gold_file.is_file():
        try:
            gold_nlp = load_gold_conll(gold_file)
        except GoldCorpusError as err:
            raise ScenarioPackError(
                f"{gold_file}: cannot load gold annotations: {err}"
            ) from err

    return ScenarioPack(
        name=root.name,
        ontology=ontology,
        vocabularies=vocabularies,
        patterns=patterns,
        corpus=tuple(corpus),
        gold_nlp=gold_nlp,
    )
