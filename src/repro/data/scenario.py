"""Scenario packs: one bundle of every knowledge artifact a domain needs.

A *scenario pack* is the unit the ROADMAP's scenario-diversity item
ships: an ontology, the IX vocabularies, the detection pattern bank and
an annotated question corpus, bundled so they can be validated
**against each other** (``ScenarioLint``) before the system trusts
them.  The embedded demo data forms the default pack; new domains are
directories laid out as::

    mypack/
        *.ttl                 # ontology snapshots (merged on load)
        patterns.txt          # IX detection patterns
        vocabularies/
            V_opinion.txt     # one word list per vocabulary, by name
            ...
        corpus.json           # list of CorpusQuestion-shaped objects

``corpus.json`` entries carry the same fields as
:class:`~repro.data.corpus.CorpusQuestion`; only ``id``, ``text`` and
``domain`` are required.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.ixpatterns import IXPattern, parse_patterns
from repro.data.corpus import CORPUS, CorpusQuestion
from repro.data.ontologies import load_merged_ontology
from repro.data.vocabularies import (
    Vocabulary,
    VocabularyRegistry,
    load_vocabularies,
)
from repro.errors import ReproError, ScenarioPackError
from repro.rdf.ontology import Ontology

__all__ = ["ScenarioPack", "default_pack", "load_pack"]


@dataclass
class ScenarioPack:
    """A named bundle of cross-validatable knowledge artifacts."""

    name: str
    ontology: Ontology
    vocabularies: VocabularyRegistry
    patterns: list[IXPattern]
    corpus: tuple[CorpusQuestion, ...] = field(default_factory=tuple)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ScenarioPack({self.name!r}, {len(self.ontology)} triples, "
            f"{len(self.vocabularies.names())} vocabularies, "
            f"{len(self.patterns)} patterns, "
            f"{len(self.corpus)} questions)"
        )


def default_pack() -> ScenarioPack:
    """The embedded demo scenario: merged snapshots + packaged data."""
    from repro.core.ixdetect import load_default_patterns

    return ScenarioPack(
        name="default",
        ontology=load_merged_ontology(),
        vocabularies=load_vocabularies(),
        patterns=load_default_patterns(),
        corpus=CORPUS,
    )


_CORPUS_FIELDS = {
    "id", "text", "domain", "supported", "reject_reason",
    "gold_ix_anchors", "gold_general_entities", "gold_query",
    "from_paper",
}


def _load_corpus(path: Path) -> tuple[CorpusQuestion, ...]:
    try:
        entries = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError) as err:
        raise ScenarioPackError(f"unreadable corpus {path}: {err}") from err
    if not isinstance(entries, list):
        raise ScenarioPackError(
            f"{path}: expected a JSON list of question objects"
        )
    questions = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ScenarioPackError(
                f"{path}: entry {i} is not an object"
            )
        unknown = set(entry) - _CORPUS_FIELDS
        if unknown:
            raise ScenarioPackError(
                f"{path}: entry {i} has unknown fields "
                f"{sorted(unknown)}"
            )
        missing = {"id", "text", "domain"} - set(entry)
        if missing:
            raise ScenarioPackError(
                f"{path}: entry {i} is missing {sorted(missing)}"
            )
        for tuple_field in ("gold_ix_anchors", "gold_general_entities"):
            if tuple_field in entry:
                entry[tuple_field] = tuple(entry[tuple_field])
        try:
            questions.append(CorpusQuestion(**entry))
        except TypeError as err:
            raise ScenarioPackError(f"{path}: entry {i}: {err}") from err
    return tuple(questions)


def load_pack(directory: str | Path) -> ScenarioPack:
    """Load a scenario pack from a directory (layout in module docs).

    Raises:
        ScenarioPackError: when the directory is missing artifacts or
            an artifact cannot be parsed.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ScenarioPackError(f"not a pack directory: {root}")

    ttl_files = sorted(root.glob("*.ttl"))
    if not ttl_files:
        raise ScenarioPackError(f"{root}: no *.ttl ontology snapshot")
    try:
        ontologies = [
            Ontology.from_turtle(path.read_text("utf-8"))
            for path in ttl_files
        ]
    except (OSError, ReproError) as err:
        raise ScenarioPackError(
            f"{root}: cannot load ontology: {err}"
        ) from err
    ontology = (
        ontologies[0] if len(ontologies) == 1
        else Ontology.merged(*ontologies)
    )

    patterns_file = root / "patterns.txt"
    if not patterns_file.is_file():
        raise ScenarioPackError(f"{root}: missing patterns.txt")
    try:
        patterns = parse_patterns(patterns_file.read_text("utf-8"))
    except (OSError, ReproError) as err:
        raise ScenarioPackError(
            f"{root}: cannot load patterns: {err}"
        ) from err

    vocabularies = VocabularyRegistry()
    vocab_dir = root / "vocabularies"
    if vocab_dir.is_dir():
        for path in sorted(vocab_dir.glob("*.txt")):
            words = [
                line.strip()
                for line in path.read_text("utf-8").splitlines()
                if line.strip() and not line.startswith("#")
            ]
            vocabularies.register(Vocabulary(path.stem, words))

    corpus_file = root / "corpus.json"
    corpus = _load_corpus(corpus_file) if corpus_file.is_file() else ()

    return ScenarioPack(
        name=root.name,
        ontology=ontology,
        vocabularies=vocabularies,
        patterns=patterns,
        corpus=tuple(corpus),
    )
