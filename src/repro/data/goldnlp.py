"""Gold POS/dependency annotations for scenario-pack corpora.

The accuracy harness (:mod:`repro.eval.accuracy`) scores the NLP
substrate against hand-reviewed annotations stored next to each pack's
``corpus.json`` as ``gold_nlp.conll``.  The format is a CoNLL-style
column file, one sentence per block::

    # id = travel-01
    # text = Where do you visit in Buffalo?
    1	Where	WRB	4	advmod
    2	do	VBP	4	aux
    3	you	PRP	4	nsubj
    4	visit	VB	0	root
    5	in	IN	4	prep
    6	Buffalo	NNP	5	pobj
    7	?	.	4	punct

Columns are tab-separated: 1-based token index, surface form, Penn
Treebank tag, head index (``0`` marks the sentence root) and the typed
dependency label.  Blank lines separate sentences; ``# key = value``
comment lines carry the sentence id and the raw text.

Everything here is deliberately strict: tags must come from
:data:`~repro.nlp.postag_lexicon.TAGSET`, labels from
:data:`~repro.nlp.graph.DEPENDENCY_LABELS`, heads must form a
single-rooted tree over the sentence.  A malformed file raises
:class:`~repro.errors.GoldCorpusError` naming the path and line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import GoldCorpusError
from repro.nlp.graph import DEPENDENCY_LABELS, DepGraph
from repro.nlp.postag_lexicon import TAGSET

__all__ = [
    "GoldToken", "GoldSentence", "parse_gold_conll", "load_gold_conll",
    "render_gold_conll", "sentence_from_graph",
]


@dataclass(frozen=True, slots=True)
class GoldToken:
    """One annotated token: surface form, tag, head index and label.

    ``head`` is 1-based; ``0`` means the token is the sentence root.
    """

    form: str
    tag: str
    head: int
    label: str


@dataclass(frozen=True)
class GoldSentence:
    """One gold-annotated sentence of a pack corpus."""

    text: str
    tokens: tuple[GoldToken, ...]
    id: str = ""

    def tags(self) -> tuple[str, ...]:
        return tuple(t.tag for t in self.tokens)

    def forms(self) -> tuple[str, ...]:
        return tuple(t.form for t in self.tokens)


def _fail(path: Path | None, line_no: int, message: str) -> GoldCorpusError:
    where = f"{path}:{line_no}" if path is not None else f"line {line_no}"
    return GoldCorpusError(f"{where}: {message}")


def _finish_sentence(
    rows: list[tuple[int, GoldToken]],
    meta: dict[str, str],
    path: Path | None,
    line_no: int,
) -> GoldSentence:
    tokens = tuple(tok for _, tok in rows)
    n = len(tokens)
    roots = 0
    for i, (row_line, tok) in enumerate(rows, start=1):
        if not 0 <= tok.head <= n:
            raise _fail(
                path, row_line,
                f"head {tok.head} out of range for a {n}-token sentence",
            )
        if tok.head == i:
            raise _fail(path, row_line, f"token {i} is its own head")
        if tok.head == 0:
            roots += 1
            if tok.label != "root":
                raise _fail(
                    path, row_line,
                    f"head 0 requires label 'root', got {tok.label!r}",
                )
    if roots != 1:
        raise _fail(
            path, line_no,
            f"sentence must have exactly one root, found {roots}",
        )
    text = meta.get("text", "")
    if not text:
        text = " ".join(tok.form for tok in tokens)
    return GoldSentence(text=text, tokens=tokens, id=meta.get("id", ""))


def parse_gold_conll(
    source: str, path: str | Path | None = None
) -> tuple[GoldSentence, ...]:
    """Parse gold annotations from ``source`` text.

    Raises:
        GoldCorpusError: on any structural problem — wrong column
            count, unknown tag or label, non-contiguous indices, broken
            tree shape — with ``path`` (when given) and the line number
            in the message.
    """
    where = Path(path) if path is not None else None
    sentences: list[GoldSentence] = []
    rows: list[tuple[int, GoldToken]] = []
    meta: dict[str, str] = {}

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            if rows:
                sentences.append(
                    _finish_sentence(rows, meta, where, line_no)
                )
                rows, meta = [], {}
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if "=" in body:
                key, _, value = body.partition("=")
                meta[key.strip()] = value.strip()
            continue
        fields = line.split("\t")
        if len(fields) != 5:
            raise _fail(
                where, line_no,
                f"expected 5 tab-separated columns, got {len(fields)}",
            )
        index_s, form, tag, head_s, label = fields
        try:
            index = int(index_s)
            head = int(head_s)
        except ValueError:
            raise _fail(
                where, line_no,
                f"non-numeric index/head columns: {index_s!r}/{head_s!r}",
            ) from None
        if index != len(rows) + 1:
            raise _fail(
                where, line_no,
                f"token index {index} out of order (expected "
                f"{len(rows) + 1})",
            )
        if not form:
            raise _fail(where, line_no, "empty token form")
        if tag not in TAGSET:
            raise _fail(where, line_no, f"unknown POS tag {tag!r}")
        if label not in DEPENDENCY_LABELS:
            raise _fail(
                where, line_no, f"unknown dependency label {label!r}"
            )
        rows.append((line_no, GoldToken(form, tag, head, label)))

    if rows:
        sentences.append(
            _finish_sentence(rows, meta, where, line_no)
        )
    return tuple(sentences)


def load_gold_conll(path: str | Path) -> tuple[GoldSentence, ...]:
    """Load and parse a ``gold_nlp.conll`` file.

    Raises:
        GoldCorpusError: when the file is unreadable or malformed (the
            message names the offending path).
    """
    p = Path(path)
    try:
        source = p.read_text("utf-8")
    except OSError as err:
        raise GoldCorpusError(f"unreadable gold corpus {p}: {err}") from err
    return parse_gold_conll(source, path=p)


def render_gold_conll(sentences: tuple[GoldSentence, ...] | list[GoldSentence]) -> str:
    """Render sentences back to the column format (round-trip safe)."""
    blocks: list[str] = []
    for sentence in sentences:
        lines: list[str] = []
        if sentence.id:
            lines.append(f"# id = {sentence.id}")
        lines.append(f"# text = {sentence.text}")
        for i, tok in enumerate(sentence.tokens, start=1):
            lines.append(
                f"{i}\t{tok.form}\t{tok.tag}\t{tok.head}\t{tok.label}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + ("\n" if blocks else "")


def sentence_from_graph(
    graph: DepGraph, id: str = ""
) -> GoldSentence:
    """Convert a parsed :class:`DepGraph` into a gold sentence.

    Used to bootstrap annotation files (the output is then reviewed by
    hand) and by tests that need a silver standard to compare against.
    Detached nodes — which the parser never produces — would surface as
    head ``0`` with a non-root label and fail validation downstream.
    """
    tokens = []
    for node in graph.nodes():
        edge = graph.parent_edge(node)
        if edge is None or edge.head.is_root:
            head, label = 0, "root"
        else:
            head, label = edge.head.index + 1, edge.label
        tokens.append(GoldToken(node.text, node.tag, head, label))
    return GoldSentence(
        text=graph.sentence, tokens=tuple(tokens), id=id
    )
