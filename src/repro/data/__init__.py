"""Embedded data: vocabularies, ontology snapshots, question corpus.

These replace the external resources the paper relies on:

* the Hu-Liu Opinion Lexicon -> ``opinion_positive.txt`` /
  ``opinion_negative.txt``;
* the authors' own participant/syntactic vocabularies ->
  ``participants.txt`` / ``modals.txt`` / ``habit_verbs.txt``;
* LinkedGeoData and DBpedia -> ``geo.ttl`` / ``dbpedia.ttl`` /
  ``food.ttl`` snapshots;
* the Yahoo! Answers question set -> :mod:`repro.data.corpus`.
"""

from repro.data.vocabularies import Vocabulary, VocabularyRegistry, load_vocabularies
from repro.data.ontologies import (
    load_dbpedia,
    load_food,
    load_geo,
    load_merged_ontology,
)

__all__ = [
    "Vocabulary",
    "VocabularyRegistry",
    "load_vocabularies",
    "load_geo",
    "load_dbpedia",
    "load_food",
    "load_merged_ontology",
]
