"""Dedicated vocabularies for IX detection (paper Section 2.3).

Each vocabulary is a named set of lemmas.  IX detection patterns refer
to them by name (``$y in V_participant``); the registry resolves those
references.  The paper stresses that an administrator can "easily
manage, change or add" vocabularies — hence they are plain text files in
the package data, reloaded on demand, and the registry accepts custom
additions at run time.
"""

from __future__ import annotations

from importlib import resources
from typing import Iterable, Iterator

__all__ = ["Vocabulary", "VocabularyRegistry", "load_vocabularies"]


class Vocabulary:
    """A named set of lemmas with O(1) membership."""

    def __init__(self, name: str, words: Iterable[str]):
        self.name = name
        self._words = frozenset(w.strip().lower() for w in words if w.strip())

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._words

    def __len__(self) -> int:
        return len(self._words)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._words))

    def union(self, other: "Vocabulary", name: str) -> "Vocabulary":
        """A new vocabulary containing both word sets."""
        return Vocabulary(name, self._words | other._words)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vocabulary({self.name!r}, {len(self)} words)"


def _read_wordlist(filename: str) -> list[str]:
    text = (
        resources.files("repro.data").joinpath(filename).read_text("utf-8")
    )
    return [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    ]


class VocabularyRegistry:
    """Resolves vocabulary names used by IX detection patterns.

    Standard names (the paper's three individuality types):

    * ``V_opinion`` — sentiment/subjectivity lexicon (lexical);
    * ``V_positive`` / ``V_negative`` — its polarity halves;
    * ``V_participant`` — relative participants (participant);
    * ``V_modal`` — opinion-marking auxiliaries (syntactic);
    * ``V_habit`` — habit verbs.
    """

    def __init__(self, vocabularies: Iterable[Vocabulary] = ()):
        self._by_name: dict[str, Vocabulary] = {}
        for vocab in vocabularies:
            self.register(vocab)

    def register(self, vocabulary: Vocabulary) -> None:
        """Add or replace a vocabulary (administrator extension point)."""
        self._by_name[vocabulary.name] = vocabulary

    def __getitem__(self, name: str) -> Vocabulary:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise KeyError(
                f"unknown vocabulary {name!r} (known: {known})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)


def load_vocabularies() -> VocabularyRegistry:
    """Load the standard vocabularies from package data."""
    positive = Vocabulary("V_positive", _read_wordlist("opinion_positive.txt"))
    negative = Vocabulary("V_negative", _read_wordlist("opinion_negative.txt"))
    registry = VocabularyRegistry([
        positive,
        negative,
        positive.union(negative, "V_opinion"),
        Vocabulary("V_participant", _read_wordlist("participants.txt")),
        Vocabulary("V_modal", _read_wordlist("modals.txt")),
        Vocabulary("V_habit", _read_wordlist("habit_verbs.txt")),
    ])
    return registry
