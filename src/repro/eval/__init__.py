"""Evaluation harness: metrics and experiment runners (DESIGN.md S24).

Turns the demo paper's qualitative claims into measured numbers:
IX-detection precision/recall, translation accuracy against gold
queries, verification accuracy, interaction counts, and crowd-mining
quality of the end-to-end OASSIS execution.
"""

from repro.eval.metrics import (
    PrecisionRecall,
    query_structure_score,
    set_precision_recall,
)
from repro.eval.harness import (
    InteractionReport,
    TranslationQualityReport,
    VerificationReport,
    evaluate_interaction,
    evaluate_translation_quality,
    evaluate_verification,
    format_table,
)
from repro.eval.accuracy import (
    AccuracyReport,
    PackAccuracy,
    ParseAccuracy,
    PosAccuracy,
    TranslationAccuracy,
    evaluate_accuracy,
    score_pack,
)

__all__ = [
    "PrecisionRecall",
    "set_precision_recall",
    "query_structure_score",
    "TranslationQualityReport",
    "VerificationReport",
    "InteractionReport",
    "evaluate_translation_quality",
    "evaluate_verification",
    "evaluate_interaction",
    "format_table",
    "AccuracyReport",
    "PackAccuracy",
    "PosAccuracy",
    "ParseAccuracy",
    "TranslationAccuracy",
    "evaluate_accuracy",
    "score_pack",
]
