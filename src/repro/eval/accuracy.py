"""Per-domain accuracy harness: score the NLP substrate against gold.

The translation-quality harness (:mod:`repro.eval.harness`, experiment
E2) scores end-to-end output.  This module scores the *inputs* to that
pipeline, per scenario pack, against the hand-reviewed annotations each
pack ships in ``gold_nlp.conll``:

* **POS accuracy** — token and whole-sentence accuracy, split into
  known vs. unknown words (per the tagger's own ``known()``), with a
  gold-to-predicted confusion matrix over the mismatches;
* **Parse accuracy** — unlabeled/labeled attachment score (UAS/LAS)
  of the dependency parser against the gold trees;
* **Translation quality** — gold-query exact match and structural
  similarity (:func:`~repro.eval.metrics.query_structure_score`) over
  the pack's own corpus.

Every metric is computed once per *tagger mode* (``rules`` — the
hand-tuned lexicon tagger — and ``learned`` — the averaged perceptron
of :mod:`repro.nlp.learned`), so the two can be A/B-compared on equal
footing.  The CLI front door is ``python -m repro --score``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.goldnlp import GoldSentence
from repro.data.scenario import ScenarioPack, load_builtin_packs
from repro.errors import ReproError
from repro.eval.harness import format_table
from repro.eval.metrics import query_structure_score
from repro.nlp.depparse import DependencyParser
from repro.nlp.tokenizer import tokenize

__all__ = [
    "PosAccuracy", "ParseAccuracy", "TranslationAccuracy",
    "PackAccuracy", "AccuracyReport", "score_pos", "score_parse",
    "score_translation", "score_pack", "evaluate_accuracy",
    "TAGGER_MODES",
]

#: The tagger modes every metric is computed for, in report order.
TAGGER_MODES = ("rules", "learned")


def _make_tagger(mode: str):
    if mode == "rules":
        from repro.nlp.postag import PosTagger

        return PosTagger()
    if mode == "learned":
        from repro.nlp.learned import default_learned_tagger

        return default_learned_tagger()
    raise ValueError(f"unknown tagger mode {mode!r}")


# ---------------------------------------------------------------------------
# POS accuracy
# ---------------------------------------------------------------------------

@dataclass
class PosAccuracy:
    """Token/sentence POS accuracy with a known/unknown-word split."""

    tokens: int = 0
    correct: int = 0
    known_tokens: int = 0
    known_correct: int = 0
    sentences: int = 0
    sentences_correct: int = 0
    #: sentences whose tokenization disagreed with the gold forms;
    #: they cannot be aligned and are excluded from the counts.
    skipped: int = 0
    #: (gold tag, predicted tag) -> count, mismatches only.
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        return self.correct / self.tokens if self.tokens else 1.0

    @property
    def sentence_accuracy(self) -> float:
        return (
            self.sentences_correct / self.sentences
            if self.sentences else 1.0
        )

    @property
    def unknown_tokens(self) -> int:
        return self.tokens - self.known_tokens

    @property
    def known_accuracy(self) -> float:
        return (
            self.known_correct / self.known_tokens
            if self.known_tokens else 1.0
        )

    @property
    def unknown_accuracy(self) -> float:
        unknown = self.unknown_tokens
        return (
            (self.correct - self.known_correct) / unknown
            if unknown else 1.0
        )

    def add(self, other: "PosAccuracy") -> None:
        self.tokens += other.tokens
        self.correct += other.correct
        self.known_tokens += other.known_tokens
        self.known_correct += other.known_correct
        self.sentences += other.sentences
        self.sentences_correct += other.sentences_correct
        self.skipped += other.skipped
        for pair, count in other.confusion.items():
            self.confusion[pair] = self.confusion.get(pair, 0) + count


def score_pos(
    tagger, sentences: tuple[GoldSentence, ...] | list[GoldSentence]
) -> PosAccuracy:
    """Score one tagger against gold sentences.

    ``tagger`` needs the ``PosTagger`` interface: ``tag(tokens)`` and
    ``known(word)``.
    """
    acc = PosAccuracy()
    for sentence in sentences:
        tokens = tokenize(sentence.text)
        if tuple(t.text for t in tokens) != sentence.forms():
            acc.skipped += 1
            continue
        tagged = tagger.tag(tokens)
        acc.sentences += 1
        all_correct = True
        for predicted, gold in zip(tagged, sentence.tokens):
            acc.tokens += 1
            known = bool(tagger.known(predicted.text))
            if known:
                acc.known_tokens += 1
            if predicted.tag == gold.tag:
                acc.correct += 1
                if known:
                    acc.known_correct += 1
            else:
                all_correct = False
                pair = (gold.tag, predicted.tag)
                acc.confusion[pair] = acc.confusion.get(pair, 0) + 1
        if all_correct:
            acc.sentences_correct += 1
    return acc


# ---------------------------------------------------------------------------
# Parse accuracy (UAS / LAS)
# ---------------------------------------------------------------------------

@dataclass
class ParseAccuracy:
    """Unlabeled / labeled attachment scores against gold trees."""

    tokens: int = 0
    uas_correct: int = 0
    las_correct: int = 0
    sentences: int = 0
    #: tokenization mismatches + parser failures, excluded from counts.
    skipped: int = 0

    @property
    def uas(self) -> float:
        return self.uas_correct / self.tokens if self.tokens else 1.0

    @property
    def las(self) -> float:
        return self.las_correct / self.tokens if self.tokens else 1.0

    def add(self, other: "ParseAccuracy") -> None:
        self.tokens += other.tokens
        self.uas_correct += other.uas_correct
        self.las_correct += other.las_correct
        self.sentences += other.sentences
        self.skipped += other.skipped


def score_parse(
    parser: DependencyParser,
    sentences: tuple[GoldSentence, ...] | list[GoldSentence],
) -> ParseAccuracy:
    """Score a dependency parser's attachments against gold trees."""
    acc = ParseAccuracy()
    for sentence in sentences:
        try:
            graph = parser.parse(sentence.text)
        except ReproError:
            acc.skipped += 1
            continue
        nodes = graph.nodes()
        if tuple(n.text for n in nodes) != sentence.forms():
            acc.skipped += 1
            continue
        acc.sentences += 1
        for node, gold in zip(nodes, sentence.tokens):
            acc.tokens += 1
            edge = graph.parent_edge(node)
            if edge is None or edge.head.is_root:
                head, label = 0, "root"
            else:
                head, label = edge.head.index + 1, edge.label
            if head == gold.head:
                acc.uas_correct += 1
                if label == gold.label:
                    acc.las_correct += 1
    return acc


# ---------------------------------------------------------------------------
# Translation quality per pack
# ---------------------------------------------------------------------------

@dataclass
class TranslationAccuracy:
    """Gold-query agreement over one pack's supported corpus."""

    questions: int = 0
    gold_queries: int = 0
    exact: int = 0
    structure_sum: float = 0.0
    failures: int = 0

    @property
    def exact_rate(self) -> float:
        return (
            self.exact / self.gold_queries if self.gold_queries else 1.0
        )

    @property
    def structure_avg(self) -> float:
        return (
            self.structure_sum / self.gold_queries
            if self.gold_queries else 1.0
        )

    def add(self, other: "TranslationAccuracy") -> None:
        self.questions += other.questions
        self.gold_queries += other.gold_queries
        self.exact += other.exact
        self.structure_sum += other.structure_sum
        self.failures += other.failures


def score_translation(
    pack: ScenarioPack, tagger: str = "rules"
) -> TranslationAccuracy:
    """Translate the pack's supported questions; score against gold."""
    from repro.core.pipeline import NL2CM
    from repro.oassisql.parser import parse_oassisql
    from repro.oassisql.printer import print_oassisql
    from repro.ui.interaction import AutoInteraction

    nl2cm = NL2CM(
        ontology=pack.ontology,
        patterns=pack.patterns,
        vocabularies=pack.vocabularies,
        interaction=AutoInteraction(),
        tagger=tagger,
    )
    acc = TranslationAccuracy()
    for question in pack.corpus:
        if not question.supported:
            continue
        acc.questions += 1
        if question.gold_query is None:
            continue
        acc.gold_queries += 1
        try:
            result = nl2cm.translate(question.text)
        except ReproError:
            acc.failures += 1
            continue
        produced = print_oassisql(result.query)
        if produced == question.gold_query:
            acc.exact += 1
        acc.structure_sum += query_structure_score(
            result.query,
            parse_oassisql(question.gold_query, validate=False),
        )
    return acc


# ---------------------------------------------------------------------------
# Per-pack bundle and the report
# ---------------------------------------------------------------------------

@dataclass
class PackAccuracy:
    """Every accuracy surface of one pack, keyed by tagger mode."""

    name: str
    pos: dict[str, PosAccuracy] = field(default_factory=dict)
    parse: dict[str, ParseAccuracy] = field(default_factory=dict)
    translation: dict[str, TranslationAccuracy] = field(
        default_factory=dict
    )


def score_pack(
    pack: ScenarioPack, taggers: tuple[str, ...] = TAGGER_MODES
) -> PackAccuracy:
    """Score one pack on every surface, once per tagger mode."""
    result = PackAccuracy(name=pack.name)
    for mode in taggers:
        tagger = _make_tagger(mode)
        result.pos[mode] = score_pos(tagger, pack.gold_nlp)
        result.parse[mode] = score_parse(
            DependencyParser(tagger=tagger), pack.gold_nlp
        )
        result.translation[mode] = score_translation(pack, tagger=mode)
    return result


@dataclass
class AccuracyReport:
    """The full accuracy report: per-pack scores plus totals."""

    packs: list[PackAccuracy]
    taggers: tuple[str, ...] = TAGGER_MODES

    def totals(self) -> PackAccuracy:
        """Aggregate counts over every pack, for every tagger mode."""
        total = PackAccuracy(name="ALL")
        for mode in self.taggers:
            total.pos[mode] = PosAccuracy()
            total.parse[mode] = ParseAccuracy()
            total.translation[mode] = TranslationAccuracy()
            for pack in self.packs:
                total.pos[mode].add(pack.pos[mode])
                total.parse[mode].add(pack.parse[mode])
                total.translation[mode].add(pack.translation[mode])
        return total

    def pack(self, name: str) -> PackAccuracy:
        for pack in self.packs:
            if pack.name == name:
                return pack
        raise KeyError(name)

    # -- rendering -----------------------------------------------------------

    def format(self) -> str:
        blocks = [
            "POS tagging accuracy (per pack and tagger)",
            self._format_pos(),
            "",
            "Dependency attachment (per pack and tagger)",
            self._format_parse(),
            "",
            "Translation quality vs. gold queries",
            self._format_translation(),
        ]
        confusion = self._format_confusion()
        if confusion:
            blocks += ["", "Top confusions (rules tagger, all packs)",
                       confusion]
        return "\n".join(blocks)

    def _rows(self):
        for pack in self.packs:
            for mode in self.taggers:
                yield pack, mode
        total = self.totals()
        for mode in self.taggers:
            yield total, mode

    def _format_pos(self) -> str:
        headers = ["pack", "tagger", "tokens", "acc", "sent-acc",
                   "known", "unknown"]
        rows = []
        for pack, mode in self._rows():
            p = pack.pos[mode]
            rows.append([
                pack.name, mode, p.tokens,
                f"{p.accuracy:.3f}",
                f"{p.sentence_accuracy:.3f}",
                f"{p.known_accuracy:.3f}",
                f"{p.unknown_accuracy:.3f}",
            ])
        return format_table(headers, rows)

    def _format_parse(self) -> str:
        headers = ["pack", "tagger", "tokens", "UAS", "LAS"]
        rows = []
        for pack, mode in self._rows():
            p = pack.parse[mode]
            rows.append([
                pack.name, mode, p.tokens,
                f"{p.uas:.3f}", f"{p.las:.3f}",
            ])
        return format_table(headers, rows)

    def _format_translation(self) -> str:
        headers = ["pack", "tagger", "n", "exact", "structure",
                   "failures"]
        rows = []
        for pack, mode in self._rows():
            t = pack.translation[mode]
            rows.append([
                pack.name, mode, t.gold_queries,
                f"{t.exact}/{t.gold_queries}",
                f"{t.structure_avg:.2f}",
                t.failures,
            ])
        return format_table(headers, rows)

    def _format_confusion(self, mode: str = "rules", top: int = 10) -> str:
        if mode not in self.taggers:
            return ""
        total = self.totals()
        pairs = sorted(
            total.pos[mode].confusion.items(),
            key=lambda item: (-item[1], item[0]),
        )[:top]
        if not pairs:
            return ""
        rows = [
            [gold, predicted, count]
            for (gold, predicted), count in pairs
        ]
        return format_table(["gold", "predicted", "count"], rows)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-ready artifact, shaped like the bench result files."""
        def pos_dict(p: PosAccuracy) -> dict:
            return {
                "tokens": p.tokens,
                "accuracy": round(p.accuracy, 4),
                "sentence_accuracy": round(p.sentence_accuracy, 4),
                "known_accuracy": round(p.known_accuracy, 4),
                "unknown_accuracy": round(p.unknown_accuracy, 4),
                "skipped": p.skipped,
            }

        def parse_dict(p: ParseAccuracy) -> dict:
            return {
                "tokens": p.tokens,
                "uas": round(p.uas, 4),
                "las": round(p.las, 4),
                "skipped": p.skipped,
            }

        def translation_dict(t: TranslationAccuracy) -> dict:
            return {
                "gold_queries": t.gold_queries,
                "exact": t.exact,
                "exact_rate": round(t.exact_rate, 4),
                "structure_avg": round(t.structure_avg, 4),
                "failures": t.failures,
            }

        def pack_dict(pack: PackAccuracy) -> dict:
            return {
                "pos": {
                    mode: pos_dict(pack.pos[mode])
                    for mode in self.taggers
                },
                "parse": {
                    mode: parse_dict(pack.parse[mode])
                    for mode in self.taggers
                },
                "translation": {
                    mode: translation_dict(pack.translation[mode])
                    for mode in self.taggers
                },
            }

        total = self.totals()
        confusion = {}
        if "rules" in self.taggers:
            confusion = {
                f"{gold}->{predicted}": count
                for (gold, predicted), count in sorted(
                    total.pos["rules"].confusion.items(),
                    key=lambda item: (-item[1], item[0]),
                )
            }
        return {
            "experiment": "accuracy",
            "taggers": list(self.taggers),
            "packs": {
                pack.name: pack_dict(pack) for pack in self.packs
            },
            "overall": pack_dict(total),
            "confusion_rules": confusion,
        }

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            "utf-8",
        )


def evaluate_accuracy(
    packs: list[ScenarioPack] | None = None,
    taggers: tuple[str, ...] = TAGGER_MODES,
) -> AccuracyReport:
    """Score every builtin pack (or the given ones) on every surface."""
    if packs is None:
        packs = list(load_builtin_packs())
    return AccuracyReport(
        packs=[score_pack(pack, taggers) for pack in packs],
        taggers=taggers,
    )
