"""Scoring primitives for the experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.oassisql.ast import OassisQuery
from repro.rdf.terms import IRI

__all__ = ["PrecisionRecall", "set_precision_recall",
           "query_structure_score"]


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F1 over sets, with raw counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __add__(self, other: "PrecisionRecall") -> "PrecisionRecall":
        return PrecisionRecall(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def set_precision_recall(
    predicted: set[str], gold: set[str]
) -> PrecisionRecall:
    """Micro counts for one instance (lower-cased string sets)."""
    predicted = {p.lower() for p in predicted}
    gold = {g.lower() for g in gold}
    return PrecisionRecall(
        true_positives=len(predicted & gold),
        false_positives=len(predicted - gold),
        false_negatives=len(gold - predicted),
    )


def query_structure_score(
    produced: OassisQuery, gold: OassisQuery
) -> float:
    """Structural similarity of two queries in [0, 1].

    Averages (a) Jaccard overlap of WHERE triples under local-name
    rendering, (b) agreement of the SATISFYING subclause count, and
    (c) Jaccard overlap of the mined predicates.  Robust to variable
    renaming via positional canonicalization.
    """
    def canon_triples(query: OassisQuery) -> set[str]:
        renaming: dict[str, str] = {}

        def term_key(term) -> str:
            from repro.oassisql.ast import Anything
            from repro.rdf.terms import Literal, Variable
            if isinstance(term, Variable):
                renaming.setdefault(term.name, f"v{len(renaming)}")
                return renaming[term.name]
            if isinstance(term, Anything):
                return "[]"
            if isinstance(term, IRI):
                return term.local_name
            if isinstance(term, Literal):
                return f'"{term.value}"'
            return str(term)

        return {
            " ".join(term_key(t) for t in triple.terms())
            for triple in query.where
        }

    def mined_predicates(query: OassisQuery) -> set[str]:
        out = set()
        for clause in query.satisfying:
            for triple in clause.triples:
                if isinstance(triple.p, IRI):
                    out.add(triple.p.local_name)
        return out

    def jaccard(a: set[str], b: set[str]) -> float:
        if not a and not b:
            return 1.0
        return len(a & b) / len(a | b)

    where_score = jaccard(canon_triples(produced), canon_triples(gold))
    clause_score = 1.0 if (
        len(produced.satisfying) == len(gold.satisfying)
    ) else 0.0
    mined_score = jaccard(
        mined_predicates(produced), mined_predicates(gold)
    )
    return (where_score + clause_score + mined_score) / 3.0
