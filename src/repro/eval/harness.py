"""Experiment runners over the annotated corpus.

Each runner returns a small report object with a ``format()`` method
that prints the table the corresponding benchmark reproduces (see
DESIGN.md Section 5 and EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.pipeline import NL2CM
from repro.core.verification import Verifier
from repro.data.corpus import (
    CORPUS,
    CorpusQuestion,
    supported_questions,
    unsupported_questions,
)
from repro.errors import ReproError
from repro.eval.metrics import (
    PrecisionRecall,
    query_structure_score,
    set_precision_recall,
)
from repro.nlp.graph import DepGraph
from repro.oassisql import parse_oassisql
from repro.rdf.terms import IRI
from repro.ui.interaction import (
    AutoInteraction,
    DisambiguationRequest,
    LimitRequest,
    ProjectionRequest,
    ThresholdRequest,
    VerifyIXRequest,
)

__all__ = [
    "TranslationQualityReport", "VerificationReport", "InteractionReport",
    "evaluate_translation_quality", "evaluate_ix_anchors",
    "evaluate_verification", "evaluate_interaction", "format_table",
]


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned plain-text table."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# E2: translation quality
# ---------------------------------------------------------------------------

@dataclass
class DomainQuality:
    questions: int = 0
    ix: PrecisionRecall = field(
        default_factory=lambda: PrecisionRecall(0, 0, 0)
    )
    wellformed: int = 0
    entity_hits: int = 0
    entity_total: int = 0
    exact_matches: int = 0
    gold_query_count: int = 0
    structure_sum: float = 0.0
    failures: int = 0

    @property
    def entity_recall(self) -> float:
        return (
            self.entity_hits / self.entity_total
            if self.entity_total else 1.0
        )

    @property
    def exact_rate(self) -> float:
        return (
            self.exact_matches / self.gold_query_count
            if self.gold_query_count else 1.0
        )

    @property
    def structure_avg(self) -> float:
        return (
            self.structure_sum / self.gold_query_count
            if self.gold_query_count else 1.0
        )


@dataclass
class TranslationQualityReport:
    per_domain: dict[str, DomainQuality]
    overall: DomainQuality
    failures: list[tuple[str, str]]

    def format(self) -> str:
        headers = ["domain", "n", "IX-P", "IX-R", "IX-F1", "wellformed",
                   "entity-recall", "exact", "structure"]
        rows = []
        for domain in sorted(self.per_domain):
            d = self.per_domain[domain]
            rows.append([
                domain, d.questions,
                f"{d.ix.precision:.2f}", f"{d.ix.recall:.2f}",
                f"{d.ix.f1:.2f}",
                f"{d.wellformed}/{d.questions}",
                f"{d.entity_recall:.2f}",
                f"{d.exact_matches}/{d.gold_query_count}",
                f"{d.structure_avg:.2f}",
            ])
        d = self.overall
        rows.append([
            "ALL", d.questions,
            f"{d.ix.precision:.2f}", f"{d.ix.recall:.2f}",
            f"{d.ix.f1:.2f}",
            f"{d.wellformed}/{d.questions}",
            f"{d.entity_recall:.2f}",
            f"{d.exact_matches}/{d.gold_query_count}",
            f"{d.structure_avg:.2f}",
        ])
        return format_table(headers, rows)


def evaluate_translation_quality(
    nl2cm: NL2CM | None = None,
    questions: Iterable[CorpusQuestion] | None = None,
) -> TranslationQualityReport:
    """Run the translator over the corpus and score it (experiment E2)."""
    nl2cm = nl2cm or NL2CM()
    questions = list(questions or supported_questions())

    per_domain: dict[str, DomainQuality] = defaultdict(DomainQuality)
    overall = DomainQuality()
    failures: list[tuple[str, str]] = []

    for question in questions:
        buckets = (per_domain[question.domain], overall)
        for b in buckets:
            b.questions += 1
        try:
            result = nl2cm.translate(question.text)
        except ReproError as exc:
            failures.append((question.id, f"{type(exc).__name__}: {exc}"))
            for b in buckets:
                b.failures += 1
                b.ix = b.ix + PrecisionRecall(
                    0, 0, len(question.gold_ix_anchors)
                )
            continue

        predicted = {ix.anchor.lower for ix in result.ixs}
        pr = set_precision_recall(
            predicted, set(question.gold_ix_anchors)
        )
        wellformed = parse_oassisql(result.query_text) == result.query

        query_triples = list(result.query.where) + [
            t for clause in result.query.satisfying
            for t in clause.triples
        ]
        query_names = {
            t.local_name
            for triple in query_triples
            for t in triple.terms()
            if isinstance(t, IRI)
        }
        hits = sum(
            1 for e in question.gold_general_entities if e in query_names
        )

        for b in buckets:
            b.ix = b.ix + pr
            b.wellformed += int(wellformed)
            b.entity_hits += hits
            b.entity_total += len(question.gold_general_entities)
            if question.gold_query is not None:
                b.gold_query_count += 1
                if result.query_text == question.gold_query:
                    b.exact_matches += 1
                b.structure_sum += query_structure_score(
                    result.query, parse_oassisql(question.gold_query)
                )

    return TranslationQualityReport(
        per_domain=dict(per_domain), overall=overall, failures=failures
    )


def evaluate_ix_anchors(
    anchor_fn: Callable[[DepGraph], set[str]],
    questions: Iterable[CorpusQuestion] | None = None,
) -> PrecisionRecall:
    """IX-anchor precision/recall of any detector (E2 baselines, E8)."""
    from repro.nlp.depparse import DependencyParser

    parser = DependencyParser()
    total = PrecisionRecall(0, 0, 0)
    for question in questions or supported_questions():
        graph = parser.parse(question.text)
        predicted = anchor_fn(graph)
        total = total + set_precision_recall(
            predicted, set(question.gold_ix_anchors)
        )
    return total


# ---------------------------------------------------------------------------
# E3: verification
# ---------------------------------------------------------------------------

@dataclass
class VerificationReport:
    true_accepts: int
    false_accepts: int
    true_rejects: int
    false_rejects: int
    reason_correct: int
    reject_total: int
    tips_covered: int

    @property
    def accuracy(self) -> float:
        total = (self.true_accepts + self.false_accepts
                 + self.true_rejects + self.false_rejects)
        return (self.true_accepts + self.true_rejects) / total

    def format(self) -> str:
        return format_table(
            ["metric", "value"],
            [
                ["accuracy", f"{self.accuracy:.2f}"],
                ["supported accepted",
                 f"{self.true_accepts}/{self.true_accepts + self.false_rejects}"],
                ["unsupported rejected",
                 f"{self.true_rejects}/{self.reject_total}"],
                ["rejection reason correct",
                 f"{self.reason_correct}/{self.reject_total}"],
                ["rejections with tips",
                 f"{self.tips_covered}/{self.reject_total}"],
            ],
        )


def evaluate_verification() -> VerificationReport:
    """Score the verification step on the full corpus (experiment E3)."""
    verifier = Verifier()
    ta = fa = tr = fr = reason_ok = tips = 0
    reject_total = len(unsupported_questions())
    for question in CORPUS:
        result = verifier.verify(question.text)
        if question.supported:
            if result.ok:
                ta += 1
            else:
                fr += 1
        else:
            if result.ok:
                fa += 1
            else:
                tr += 1
                if result.reason == question.reject_reason:
                    reason_ok += 1
                if result.tips:
                    tips += 1
    return VerificationReport(
        true_accepts=ta, false_accepts=fa, true_rejects=tr,
        false_rejects=fr, reason_correct=reason_ok,
        reject_total=reject_total, tips_covered=tips,
    )


# ---------------------------------------------------------------------------
# E4: interaction
# ---------------------------------------------------------------------------

class _CountingProvider(AutoInteraction):
    """Auto answers, counting requests by type."""

    def __init__(self):
        super().__init__()
        self.counts: Counter[str] = Counter()

    def ask(self, request):
        self.counts[type(request).__name__] += 1
        return super().ask(request)


@dataclass
class InteractionReport:
    counts_by_type: dict[str, int]
    questions: int
    questions_with_any: int
    disambiguations_first_pass: int
    disambiguations_second_pass: int

    def format(self) -> str:
        rows = [
            [name, count]
            for name, count in sorted(self.counts_by_type.items())
        ]
        rows.append(["questions", self.questions])
        rows.append(["questions with interaction",
                     self.questions_with_any])
        rows.append(["disambiguation dialogs, 1st pass",
                     self.disambiguations_first_pass])
        rows.append(["disambiguation dialogs, 2nd pass (after feedback)",
                     self.disambiguations_second_pass])
        return format_table(["interaction", "count"], rows)


def evaluate_interaction() -> InteractionReport:
    """Count interaction points across the corpus (experiment E4).

    Two passes measure FREyA-style feedback: disambiguation dialogs in
    the second pass should drop, because first-pass choices are
    remembered.
    """
    nl2cm = NL2CM()
    counts: Counter[str] = Counter()
    with_any = 0
    first_disambiguations = 0

    for question in supported_questions():
        provider = _CountingProvider()
        try:
            nl2cm.translate(question.text, interaction=provider)
        except ReproError:
            continue
        counts.update(provider.counts)
        first_disambiguations += provider.counts.get(
            "DisambiguationRequest", 0
        )
        if provider.counts:
            with_any += 1

    second_disambiguations = 0
    for question in supported_questions():
        provider = _CountingProvider()
        try:
            nl2cm.translate(question.text, interaction=provider)
        except ReproError:
            continue
        second_disambiguations += provider.counts.get(
            "DisambiguationRequest", 0
        )

    return InteractionReport(
        counts_by_type=dict(counts),
        questions=len(supported_questions()),
        questions_with_any=with_any,
        disambiguations_first_pass=first_disambiguations,
        disambiguations_second_pass=second_disambiguations,
    )
