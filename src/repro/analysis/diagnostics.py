"""The diagnostic core shared by QueryLint and PatternLint.

A static-analysis pass reports :class:`Diagnostic` records — rule id,
severity, human message, an optional :class:`Location` into the analyzed
artifact and an optional fix hint — collected into an
:class:`AnalysisReport`.  The report is the unit the pipeline stores in
its trace, the serving layer counts, and the CLI renders.

Severities follow the usual compiler convention: ERROR means the query
(or pattern bank) must not be shipped to the crowd engine; WARNING means
it will run but almost certainly not as intended; INFO is stylistic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Location", "Diagnostic", "AnalysisReport"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, value: "Severity | str") -> "Severity":
        """Accept a member or its (case-insensitive) name."""
        if isinstance(value, Severity):
            return value
        try:
            return cls[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {value!r} (expected one of "
                f"{', '.join(m.name for m in cls)})"
            ) from None


@dataclass(frozen=True, slots=True)
class Location:
    """Where in the analyzed artifact a diagnostic points.

    ``path`` addresses the AST node (``where[1]``,
    ``satisfying[0].triples[2]``, ``pattern lexical_opinion``); ``line``
    is the 1-based line of the canonical printed form, when the artifact
    has one (the printer/parser round-trip guarantees the printed text
    is faithful, so lines are stable coordinates).
    """

    path: str
    line: int | None = None

    def __str__(self) -> str:
        if self.line is None:
            return self.path
        return f"{self.path} (line {self.line})"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of a static-analysis rule."""

    rule: str
    severity: Severity
    message: str
    location: Location | None = None
    hint: str | None = None

    def render(self) -> str:
        """One- or two-line human rendering, ``severity [rule] ...``."""
        where = f" at {self.location}" if self.location else ""
        text = f"{self.severity} [{self.rule}] {self.message}{where}"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text


@dataclass
class AnalysisReport:
    """All diagnostics one analyzer produced for one subject.

    ``subject`` names what was analyzed — a question, a query file, the
    pattern bank — so reports remain readable when aggregated.
    """

    subject: str = "query"
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: "AnalysisReport | list[Diagnostic]") -> None:
        if isinstance(diagnostics, AnalysisReport):
            diagnostics = diagnostics.diagnostics
        self.diagnostics.extend(diagnostics)

    # -- queries -------------------------------------------------------------

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """True when nothing at all was reported."""
        return not self.diagnostics

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        """Severity name -> count (always includes all three keys)."""
        out = {str(s): 0 for s in Severity}
        for d in self.diagnostics:
            out[str(d.severity)] += 1
        return out

    def rules_fired(self) -> list[str]:
        """Distinct rule ids, in first-fired order."""
        seen: dict[str, None] = {}
        for d in self.diagnostics:
            seen.setdefault(d.rule, None)
        return list(seen)

    # -- rendering ------------------------------------------------------------

    def summary(self) -> str:
        c = self.counts()
        return (
            f"{self.subject}: {c['error']} error(s), "
            f"{c['warning']} warning(s), {c['info']} info(s)"
        )

    def render(self) -> str:
        """Plain-text rendering: one diagnostic per block plus summary."""
        if self.ok:
            return f"{self.subject}: no diagnostics"
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)
