"""OntologyLint: static analysis of ontology snapshots.

The ontology is the artifact every other stage leans on: the FREyA
substitute resolves entities against its label index, the query
generator grounds noun phrases in its classes and properties, and the
OASSIS engine joins over its triples.  A dangling reference or a
lexicalization gap does not crash anything — it silently makes some
questions untranslatable — which is exactly the failure mode a linter
exists for.

All sixteen rules are computed from **one streaming pass** over the
store's predicate-major index (:meth:`TripleStore.predicate_index`):
the pass fills per-predicate and per-node accumulators, and a finalize
step turns them into diagnostics.  No rule re-scans the store, so the
analyzer works unchanged against the planned disk-backed and federated
store backends, where a full scan is the expensive operation.

The accumulators key nodes by their IRI **value strings**, not by the
term objects: strings hash at C speed with the hash cached in the
object, where the frozen-dataclass terms pay a Python-level
``__hash__`` call on every set operation.  The finalize step is almost
entirely set algebra over those strings, so this representation is
what keeps the construction-time ``kb_lint="warn"`` gate under its 5%
budget.

The ontology snapshots carry no declared schema (no ``rdfs:domain`` /
``rdfs:range``), so the domain/range rules are **inferred**: when at
least :data:`_INFER_MIN` subjects (objects) of a predicate are typed
and a dominant class covers :data:`_INFER_RATIO` of them, outliers are
flagged.  That is deliberately conservative — it fires on the one
mis-typed entity in a uniform column, not on genuinely heterogeneous
predicates.

Reports for frozen (cached) ontologies are memoized keyed by the
store's ``(token, epoch)`` identity plus the registry configuration, so
repeated ``NL2CM(kb_lint="warn")`` constructions pay for the analysis
once per process.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from itertools import chain

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.registry import Rule, RuleRegistry
from repro.rdf.ontology import KB, Ontology, normalize_label
from repro.rdf.terms import IRI, Literal, RDFS, Term

__all__ = ["ONTOLOGY_RULES", "OntologyLint"]

_E = Severity.ERROR
_W = Severity.WARNING
_I = Severity.INFO

#: Every OntologyLint rule, in catalog order (see docs/static-analysis.md).
ONTOLOGY_RULES: list[Rule] = [
    Rule("label-not-literal", "ontology", _E,
         "an rdfs:label/kb:alias object is not a literal; the lexical "
         "index skips it"),
    Rule("empty-label", "ontology", _E,
         "a label or alias normalizes to the empty string and can never "
         "match a phrase"),
    Rule("class-as-literal", "ontology", _E,
         "the object of kb:instanceOf is a literal, not a class IRI"),
    Rule("dangling-object", "ontology", _E,
         "a fact references an IRI that is described nowhere (no "
         "outgoing triples)"),
    Rule("orphan-entity", "ontology", _W,
         "an entity carries only labels: untyped, unreferenced, and in "
         "no fact"),
    Rule("untyped-entity", "ontology", _W,
         "an entity participates in facts but has no kb:instanceOf "
         "type"),
    Rule("missing-label", "ontology", _I,
         "a term has no rdfs:label; entity resolution falls back to "
         "the IRI local name"),
    Rule("duplicate-label", "ontology", _W,
         "two terms share the same normalized preferred label"),
    Rule("alias-duplicates-label", "ontology", _I,
         "an alias normalizes to the same string as the term's "
         "preferred label"),
    Rule("near-duplicate-predicate", "ontology", _W,
         "two predicates are near-duplicates (same normalized label or "
         "local name)"),
    Rule("mixed-object-kinds", "ontology", _W,
         "a predicate links to both IRIs and literals; joins see only "
         "one kind"),
    Rule("literal-type-inconsistency", "ontology", _W,
         "a predicate's literal objects mix strings, numbers or "
         "booleans"),
    Rule("inferred-domain-violation", "ontology", _W,
         "a subject's type disagrees with the predicate's inferred "
         "domain class"),
    Rule("inferred-range-violation", "ontology", _W,
         "an object's type disagrees with the predicate's inferred "
         "range class"),
    Rule("self-reference", "ontology", _I,
         "a triple relates a term to itself"),
    Rule("disconnected-islands", "ontology", _I,
         "the entity graph splits into multiple unconnected islands"),
]

#: Minimum typed subjects/objects before domain/range inference engages.
_INFER_MIN = 4
#: Fraction of typed subjects/objects the dominant class must cover.
_INFER_RATIO = 0.8

#: Bounded memo of finalized diagnostics for shared (frozen) stores.
_MEMO: OrderedDict[tuple, tuple] = OrderedDict()
_MEMO_MAX = 16

_KB_BASE = KB.base
_LABEL_V = RDFS.label.value
_ALIAS_V = KB.alias.value
_TYPE_V = KB.instanceOf.value


def _term_ref(term: Term) -> str:
    """Compact human rendering: ``kb:`` terms by local name."""
    if isinstance(term, IRI):
        return _ref(term.value)
    return str(term)


def _local(value: str) -> str:
    """The fragment after the last ``#`` or ``/`` of an IRI value."""
    for sep in ("#", "/"):
        if sep in value:
            return value.rsplit(sep, 1)[1]
    return value


def _ref(value: str) -> str:
    """:func:`_term_ref` over a raw IRI value string."""
    if value.startswith(_KB_BASE):
        return f"kb:{_local(value)}"
    return f"<{value}>"


def _loc(term: Term) -> Location:
    return Location(_term_ref(term))


def _vloc(value: str) -> Location:
    return Location(_ref(value))


class _Accumulators:
    """Everything the single streaming pass collects.

    Node keys are IRI **value strings** (see the module docstring);
    the stream fills only what it must per-triple, and anything
    derivable from these maps (referenced objects, connected
    components) is computed once in finalize with bulk set operations.
    """

    def __init__(self):
        self.subjects: set[str] = set()
        # label/alias maps carry (literal, normalized text) pairs, so
        # finalize never re-normalizes what the stream already did.
        self.labels: dict[str, list[tuple[Literal, str]]] = {}
        self.aliases: dict[str, list[tuple[Literal, str]]] = {}
        self.types: dict[str, set[str]] = {}
        self.classes: set[str] = set()
        self.data_predicates: set[str] = set()
        self.pred_iri_objects: dict[str, set[str]] = {}
        self.pred_subjects: dict[str, set[str]] = {}
        self.pred_literal_kinds: dict[str, set[str]] = {}
        # (object value, subject values) pairs collected while the
        # stream is converting those very subjects anyway; the
        # component merge happens once in finalize.
        self.edge_groups: list[tuple[str, list[str]]] = []

    # -- derived in finalize --------------------------------------------------

    def all_objects(self) -> set[str]:
        """IRI objects of any data fact (one C-level bulk union)."""
        if not self.pred_iri_objects:
            return set()
        return set().union(*self.pred_iri_objects.values())

    def components(self) -> list[set[str]]:
        """Connected components of the entity graph.

        Small-to-large set merging: every node points at its component
        set, and each merge folds the smaller set into the larger one,
        so the total work is O(n log n) bulk set operations instead of
        per-edge pointer chasing.
        """
        comp: dict[str, set[str]] = {}
        comp_get = comp.get
        for o, vsubs in self.edge_groups:
            target = comp_get(o)
            if target is None:
                target = {o}
                comp[o] = target
            for sv in vsubs:
                current = comp_get(sv)
                if current is None:
                    target.add(sv)
                    comp[sv] = target
                elif current is not target:
                    if len(current) > len(target):
                        current, target = target, current
                    target.update(current)
                    for node in current:
                        comp[node] = target
        return list({id(c): c for c in comp.values()}.values())


def _literal_kind(literal: Literal) -> str:
    if isinstance(literal.value, bool):
        return "boolean"
    if literal.is_numeric:
        return "number"
    return "string"


class OntologyLint:
    """Rule-based static analyzer for :class:`Ontology` snapshots.

    Args:
        registry: a configured :class:`RuleRegistry`; a fresh one with
            every ontology rule at default severity if omitted.
    """

    def __init__(self, registry: RuleRegistry | None = None):
        self.registry = registry or RuleRegistry(ONTOLOGY_RULES)

    def lint(
        self, ontology: Ontology, subject: str = "ontology"
    ) -> AnalysisReport:
        """Analyze one ontology; one pass over the store, never raises."""
        store = ontology.store
        memo_key = (store.token, store.epoch, self._config_key(), subject)
        cached = _MEMO.get(memo_key)
        if cached is not None:
            _MEMO.move_to_end(memo_key)
            report = AnalysisReport(subject=subject)
            report.extend(list(cached))
            return report

        report = AnalysisReport(subject=subject)
        acc = self._stream(store, report)
        self._finalize(acc, report)

        _MEMO[memo_key] = tuple(report.diagnostics)
        while len(_MEMO) > _MEMO_MAX:
            _MEMO.popitem(last=False)
        return report

    def _config_key(self) -> tuple:
        return self.registry.config_key("ontology")

    # -- the streaming pass --------------------------------------------------

    def _stream(self, store, report: AnalysisReport) -> _Accumulators:
        """One predicate-major pass over the store's own index.

        Dispatching once per predicate and once per distinct object
        (instead of once per triple) keeps the inner loops to bulk set
        updates — the difference between the lint pass being free or
        being a visible construction-time tax.
        """
        emit = self.registry.emit
        acc = _Accumulators()
        edge_groups = acc.edge_groups

        for p, by_o in store.predicate_index():
            # Dispatch on the predicate's value string: interned-string
            # equality, where comparing IRI dataclasses pays a
            # generated __eq__ per predicate.
            pv = p.value
            if pv == _LABEL_V or pv == _ALIAS_V:
                is_label = pv == _LABEL_V
                kind = "label" if is_label else "alias"
                target = acc.labels if is_label else acc.aliases
                for o, subs in by_o.items():
                    if type(o) is not Literal:
                        for s in subs:
                            emit(report, "label-not-literal",
                                 f"{kind} of {_term_ref(s)} is "
                                 f"{_term_ref(o)}, not a literal",
                                 _loc(s),
                                 hint="labels and aliases must be "
                                      "quoted strings")
                        continue
                    norm = normalize_label(str(o.value))
                    if not norm:
                        for s in subs:
                            emit(report, "empty-label",
                                 f"{kind} of {_term_ref(s)} normalizes "
                                 f"to an empty string",
                                 _loc(s),
                                 hint="remove the label or give it "
                                      "word characters")
                        continue
                    pair = (o, norm)
                    for s in subs:
                        if type(s) is IRI:
                            sv = s.value
                            pairs = target.get(sv)
                            if pairs is None:
                                target[sv] = [pair]
                            else:
                                pairs.append(pair)
                continue

            if pv == _TYPE_V:
                types = acc.types
                for o, subs in by_o.items():
                    if type(o) is not IRI:
                        for s in subs:
                            emit(report, "class-as-literal",
                                 f"{_term_ref(s)} is declared an "
                                 f"instance of the literal {o.n3()}",
                                 _loc(s),
                                 hint="kb:instanceOf must point at a "
                                      "class IRI")
                        continue
                    ov = o.value
                    acc.classes.add(ov)
                    vsubs: list[str] = []
                    for s in subs:
                        if type(s) is IRI:
                            sv = s.value
                            vsubs.append(sv)
                            tset = types.get(sv)
                            if tset is None:
                                types[sv] = {ov}
                            else:
                                tset.add(ov)
                    edge_groups.append((ov, vsubs))
                continue

            # -- data facts, one predicate at a time ------------------------
            acc.data_predicates.add(pv)
            iri_objects: set = set()
            literal_kinds: set = set()
            psubs: set[str] = set()
            for o, subs in by_o.items():
                vsubs = [
                    s.value for s in subs if type(s) is IRI
                ]
                psubs.update(vsubs)
                if type(o) is IRI:
                    if o in subs:
                        emit(report, "self-reference",
                             f"{_term_ref(o)} is related to itself "
                             f"via {_ref(pv)}",
                             _loc(o),
                             hint="self-loops are usually data-entry "
                                  "mistakes")
                    ov = o.value
                    iri_objects.add(ov)
                    edge_groups.append((ov, vsubs))
                elif type(o) is Literal:
                    literal_kinds.add(_literal_kind(o))
            if iri_objects:
                acc.pred_iri_objects[pv] = iri_objects
            if literal_kinds:
                acc.pred_literal_kinds[pv] = literal_kinds
            acc.pred_subjects[pv] = psubs

        # Subjects come straight off the store's own subject index;
        # scrub blank nodes once instead of type-checking per triple.
        acc.subjects = {
            s.value for s in store.subject_keys() if type(s) is IRI
        }
        return acc

    # -- finalize: accumulators -> diagnostics -------------------------------

    def _finalize(self, acc: _Accumulators, report: AnalysisReport) -> None:
        emit = self.registry.emit
        predicates = acc.data_predicates | {_TYPE_V}
        all_objects = acc.all_objects()

        # The rules below are "set algebra, then report": each computes
        # its offender set with C-level set operations and only loops
        # (sorted, for determinism) over the usually-tiny result.
        # Offender sets are usually empty, so anything needed only to
        # *describe* an offender (which predicate referenced it, which
        # facts touch it) is computed lazily from the tiny result set
        # instead of materialized for the whole graph up front.

        # dangling-object: referenced in a fact, described nowhere.
        dangling = (all_objects - acc.subjects - predicates
                    - acc.classes)
        if dangling:
            via_pred: dict[str, str] = {}
            for pv, objects in acc.pred_iri_objects.items():
                for o in objects & dangling:
                    via_pred.setdefault(o, pv)
            for o in sorted(dangling):
                emit(report, "dangling-object",
                     f"{_ref(o)} is referenced via {_ref(via_pred[o])} "
                     f"but described nowhere",
                     _vloc(o),
                     hint="add at least a label and a type for the "
                          "entity, or fix the reference")

        # orphan / untyped entities (classes and predicates are exempt:
        # classes are described by their members, predicates by use).
        untyped_all = (acc.subjects - acc.classes - predicates
                       - acc.types.keys())
        orphans = set(untyped_all)
        if orphans:
            # subtract subjects-of-data-facts per predicate rather than
            # unioning them all; the orphan candidate set is tiny.
            for psubs in acc.pred_subjects.values():
                orphans -= psubs
                if not orphans:
                    break
        if orphans:
            orphans -= all_objects
        for s in sorted(orphans):
            emit(report, "orphan-entity",
                 f"{_ref(s)} has labels but no type, no facts "
                 f"and no references",
                 _vloc(s),
                 hint="type it with kb:instanceOf, use it in a "
                      "fact, or drop it")
        for s in sorted(untyped_all - orphans):
            emit(report, "untyped-entity",
                 f"{_ref(s)} participates in facts but has no "
                 f"kb:instanceOf type",
                 _vloc(s),
                 hint="untyped entities cannot be offered as "
                      "class-constrained candidates")

        # missing-label: every node the lexical index will serve.
        unlabeled = (acc.subjects | acc.classes | all_objects
                     | predicates) - acc.labels.keys()
        for node in sorted(unlabeled):
            emit(report, "missing-label",
                 f"{_ref(node)} has no rdfs:label; resolution "
                 f"falls back to {_local(node)!r}",
                 _vloc(node),
                 hint="declare the preferred surface form "
                      "explicitly")

        # duplicate-label / alias-duplicates-label.  Offenders are rare,
        # so collect them first and only sort the (tiny) offender lists.
        by_label: dict[str, list[str]] = {}
        for iri, labels in acc.labels.items():
            for _, norm in labels:
                by_label.setdefault(norm, []).append(iri)
        dup_groups: list[tuple[str, list[str]]] = []
        for text, iris in by_label.items():
            if len(iris) < 2:
                continue
            distinct = sorted(set(iris))
            if len(distinct) > 1:
                dup_groups.append((text, distinct))
        for text, distinct in sorted(dup_groups):
            names = ", ".join(_ref(i) for i in distinct)
            emit(report, "duplicate-label",
                 f"preferred label {text!r} is shared by {names}",
                 _vloc(distinct[0]),
                 hint="shared surface forms belong in kb:alias; "
                      "preferred labels should disambiguate")
        alias_dups: list[tuple[str, str]] = []
        for iri, pairs in acc.aliases.items():
            own = {norm for _, norm in acc.labels.get(iri, [])}
            if not own:
                continue
            for lit, norm in pairs:
                if norm in own:
                    alias_dups.append((iri, str(lit.value)))
        for iri, text in sorted(alias_dups):
            emit(report, "alias-duplicates-label",
                 f"alias {text!r} of {_ref(iri)} "
                 f"repeats its preferred label",
                 _vloc(iri),
                 hint="drop the redundant alias")

        # near-duplicate-predicate: by normalized label and local name.
        data_preds = sorted(acc.data_predicates)
        by_pred_label: dict[str, list[str]] = {}
        for p in data_preds:
            for _, norm in acc.labels.get(p, []):
                by_pred_label.setdefault(norm, []).append(p)
            key = _local(p).replace("_", "").lower()
            by_pred_label.setdefault(f"\x00{key}", []).append(p)
        seen_pairs: set[tuple] = set()
        for key, preds in sorted(by_pred_label.items()):
            distinct = sorted(set(preds))
            if len(distinct) < 2:
                continue
            pair = tuple(distinct)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            names = ", ".join(_ref(p) for p in distinct)
            how = ("local name" if key.startswith("\x00")
                   else f"label {key!r}")
            emit(report, "near-duplicate-predicate",
                 f"predicates {names} collide on {how}",
                 _vloc(distinct[0]),
                 hint="merge them or rename one; near-duplicates split "
                      "facts across predicates")

        # object-kind consistency per predicate.
        for p in data_preds:
            iri_n = len(acc.pred_iri_objects.get(p, ()))
            kinds = acc.pred_literal_kinds.get(p, set())
            if iri_n and kinds:
                emit(report, "mixed-object-kinds",
                     f"{_ref(p)} links to {iri_n} IRI object(s) "
                     f"and literal object(s)",
                     _vloc(p),
                     hint="split the predicate; joins traverse IRIs, "
                          "filters compare literals")
            if len(kinds) > 1:
                emit(report, "literal-type-inconsistency",
                     f"{_ref(p)} has literal objects of mixed "
                     f"kinds: {', '.join(sorted(kinds))}",
                     _vloc(p),
                     hint="pick one literal type per predicate so "
                          "comparisons are well-defined")

        # inferred domain/range violations.
        for p in data_preds:
            self._infer_check(
                acc, report, p, acc.pred_subjects.get(p, set()),
                "inferred-domain-violation", "subject", "domain",
            )
            self._infer_check(
                acc, report, p, acc.pred_iri_objects.get(p, set()),
                "inferred-range-violation", "object", "range",
            )

        # disconnected-islands: one diagnostic for the whole graph.
        islands = acc.components()
        if len(islands) > 1:
            reps = sorted(min(ns) for ns in islands)
            shown = ", ".join(_ref(r) for r in reps[:5])
            emit(report, "disconnected-islands",
                 f"the entity graph has {len(islands)} unconnected "
                 f"islands (around {shown})",
                 Location("entity graph"),
                 hint="expected for merged multi-domain snapshots; "
                      "within one domain it usually means missing "
                      "linking facts")

    def _infer_check(
        self, acc: _Accumulators, report: AnalysisReport, p: str,
        terms: set[str], rule: str, role: str, schema_word: str,
    ) -> None:
        if len(terms) < _INFER_MIN:
            return
        types_of = acc.types
        typed = terms & types_of.keys()
        if len(typed) < _INFER_MIN:
            return
        # Counter over a chained map stays in C for the whole count.
        freq = Counter(
            chain.from_iterable(map(types_of.__getitem__, typed))
        )
        dominant, count = max(
            freq.items(), key=lambda kv: (kv[1], kv[0])
        )
        if count / len(typed) < _INFER_RATIO:
            return  # genuinely heterogeneous; nothing to infer
        violators = [t for t in typed if dominant not in types_of[t]]
        for t in sorted(violators):
            got = ", ".join(
                _ref(c) for c in sorted(acc.types[t])
            )
            self.registry.emit(
                report, rule,
                f"{role} {_ref(t)} of {_ref(p)} is typed "
                f"{got}, but the inferred {schema_word} is "
                f"{_ref(dominant)} ({count}/{len(typed)})",
                _vloc(t),
                hint=f"type {_ref(t)} as {_ref(dominant)} "
                     f"or fix the fact",
            )
