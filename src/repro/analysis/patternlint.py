"""PatternLint: static analysis of the IX detection pattern bank.

Detection patterns are *data* (``repro/data/ix_patterns.txt``) that an
administrator edits without touching the matcher — which is exactly why
they deserve a linter: a typo'd vocabulary name or an impossible POS
comparison silently turns a pattern into dead weight, and the system
just stops detecting that individuality type.

PatternLint analyzes a whole bank at once, so it can also catch
cross-pattern problems (duplicate names, structurally overlapping
patterns).  Within one pattern it checks:

* filters referencing variables no edge declares;
* capture variables that constrain nothing (one edge mention, not the
  anchor, unused by the filter);
* vocabulary references that are unknown or empty;
* ``POS($x)`` comparisons against classes the tagger can never produce
  and conjunctions that are statically unsatisfiable — patterns that
  can never fire.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.registry import Rule, RuleRegistry
from repro.core.ixpatterns import (
    IXPattern,
    PatternFilter,
    achievable_pos_classes,
)
from repro.data.vocabularies import VocabularyRegistry

__all__ = ["PATTERN_RULES", "PatternLint"]

_E = Severity.ERROR
_W = Severity.WARNING

#: Every PatternLint rule, in catalog order (see docs/static-analysis.md).
PATTERN_RULES: list[Rule] = [
    Rule("duplicate-pattern-name", "pattern", _E,
         "two patterns share a name; matches become unattributable"),
    Rule("filter-undeclared-variable", "pattern", _E,
         "the filter references a variable no edge declares"),
    Rule("edge-free-multi-variable", "pattern", _E,
         "an edge-free pattern must use exactly one variable"),
    Rule("unknown-vocabulary", "pattern", _E,
         "the filter references a vocabulary the registry does not "
         "know"),
    Rule("empty-vocabulary", "pattern", _W,
         "the filter tests membership in an empty vocabulary"),
    Rule("unconstrained-variable", "pattern", _W,
         "a variable is mentioned by one edge only and never "
         "constrained"),
    Rule("unreachable-pos-class", "pattern", _W,
         "POS() is compared against a class the tagger never produces"),
    Rule("contradictory-filter", "pattern", _W,
         "the filter requires one node function to equal two different "
         "constants"),
    Rule("disconnected-pattern", "pattern", _W,
         "the edge set splits into unconnected variable groups "
         "(cartesian matching)"),
    Rule("overlapping-pattern", "pattern", _W,
         "two patterns have the same structure; one duplicates or "
         "subsumes the other"),
]


def _pattern_location(pattern: IXPattern) -> Location:
    return Location(f"pattern {pattern.name}")


class _PatternFacts:
    """Pure structural facts about one (immutable) pattern.

    Everything here is a function of the pattern alone — no registry,
    no vocabulary state — so it is computed once per pattern object and
    cached: the production bank is loaded once per process, and
    re-linting it (every ``NL2CM`` construction) should not re-derive
    shapes, filter walks, or findings that cannot have changed.  The
    vocabulary rules are the exception (they depend on the registry the
    linter was built with), so only the vocabulary *references* are
    cached and the membership checks stay live.

    ``var_findings`` / ``filter_findings`` / ``conn_findings`` are
    ``(rule, message, hint)`` triples the linter replays through its
    own registry, preserving per-rule configuration.
    """

    __slots__ = (
        "shape_key", "normalized_filter", "vocab_refs", "location",
        "var_findings", "filter_findings", "conn_findings",
    )

    def __init__(self, pattern: IXPattern):
        self.shape_key = _shape_key(pattern)
        self.normalized_filter = _normalized_filter(pattern)
        self.location = _pattern_location(pattern)
        if pattern.filter is not None:
            self.vocab_refs, pos_values = _filter_refs(pattern.filter)
            contradictions = tuple(_contradictions(pattern.filter))
            filter_vars = pattern.filter.variables()
        else:
            self.vocab_refs = set()
            pos_values = []
            contradictions = ()
            filter_vars = set()
        self.var_findings = tuple(
            _variable_findings(pattern, filter_vars)
        )
        self.filter_findings = tuple(
            _filter_findings(pos_values, contradictions)
        )
        self.conn_findings = tuple(_connectivity_findings(pattern))


def _variable_findings(pattern: IXPattern, filter_vars: set[str]):
    """(rule, message, hint) for the variable-dataflow rules."""
    if not pattern.edges:
        n_vars = len(pattern.variables())
        if n_vars != 1:
            yield ("edge-free-multi-variable",
                   f"edge-free pattern uses {n_vars} variables",
                   "an edge-free pattern matches single nodes; "
                   "use one variable")
        return
    edge_vars: dict[str, int] = {}
    for edge in pattern.edges:
        edge_vars[edge.head] = edge_vars.get(edge.head, 0) + 1
        edge_vars[edge.dependent] = edge_vars.get(edge.dependent, 0) + 1
    for name in sorted(filter_vars - edge_vars.keys()):
        yield ("filter-undeclared-variable",
               f"filter references ${name}, but no edge mentions it",
               f"add an edge constraining ${name} or fix the "
               f"variable name")
    for name in sorted(edge_vars):
        if (
            edge_vars[name] == 1
            and name != pattern.anchor
            and name not in filter_vars
        ):
            yield ("unconstrained-variable",
                   f"${name} appears in one edge and is never "
                   f"constrained or anchored",
                   f"constrain ${name} in the filter or drop the "
                   f"edge")


def _filter_findings(pos_values: list[str], contradictions: tuple):
    """(rule, message, hint) for the pure filter-semantics rules."""
    classes = achievable_pos_classes()
    for value in pos_values:
        if value not in classes:
            yield ("unreachable-pos-class",
                   f'POS() can never equal "{value}"',
                   "achievable classes include: "
                   + ", ".join(sorted(
                       c for c in classes if c.isalpha()
                   )))
    for fn, var, values in contradictions:
        rendered = ", ".join(f'"{v}"' for v in values)
        yield ("contradictory-filter",
               f"{fn}(${var}) is required to equal {rendered} at once",
               "use || between alternative values")


def _connectivity_findings(pattern: IXPattern):
    """(rule, message, hint) for the edge-connectivity rule."""
    if len(pattern.edges) < 2:
        return
    groups: list[set[str]] = []
    for edge in pattern.edges:
        touching = [
            g for g in groups
            if edge.head in g or edge.dependent in g
        ]
        merged = {edge.head, edge.dependent}
        for g in touching:
            merged |= g
            groups.remove(g)
        groups.append(merged)
    if len(groups) > 1:
        yield ("disconnected-pattern",
               f"the edges form {len(groups)} unconnected variable "
               f"groups",
               "connect the groups through a shared variable; "
               "disconnected groups match all combinations")


#: id(pattern) -> (pattern, facts).  Keeping the pattern itself in the
#: value pins the id, so the key can never be silently recycled; the
#: identity check on lookup makes the cache correct even if it were.
_FACTS_CACHE: dict[int, tuple[IXPattern, _PatternFacts]] = {}
_FACTS_MAX = 256


def _pattern_facts(pattern: IXPattern) -> _PatternFacts:
    key = id(pattern)
    hit = _FACTS_CACHE.get(key)
    if hit is not None and hit[0] is pattern:
        return hit[1]
    facts = _PatternFacts(pattern)
    if len(_FACTS_CACHE) >= _FACTS_MAX:
        _FACTS_CACHE.clear()
    _FACTS_CACHE[key] = (pattern, facts)
    return facts


class PatternLint:
    """Rule-based static analyzer for IX pattern banks.

    Args:
        vocabularies: the registry patterns resolve ``V_name`` against;
            omit to skip the vocabulary rules.
        registry: a configured :class:`RuleRegistry`; a fresh one with
            every pattern rule at default severity if omitted.
    """

    def __init__(
        self,
        vocabularies: VocabularyRegistry | None = None,
        registry: RuleRegistry | None = None,
    ):
        self.vocabularies = vocabularies
        self.registry = registry or RuleRegistry(PATTERN_RULES)

    def lint(
        self,
        patterns: list[IXPattern],
        subject: str = "pattern bank",
    ) -> AnalysisReport:
        """Analyze a whole bank; never raises on pattern content."""
        report = AnalysisReport(subject=subject)
        names = Counter(p.name for p in patterns)
        for name, count in sorted(names.items()):
            if count > 1:
                self.registry.emit(
                    report, "duplicate-pattern-name",
                    f"{count} patterns are named {name!r}",
                    Location(f"pattern {name}"),
                    hint="give each pattern a unique name",
                )
        emit = self.registry.emit
        for pattern in patterns:
            facts = _pattern_facts(pattern)
            location = facts.location
            for rule, message, hint in facts.var_findings:
                emit(report, rule, message, location, hint=hint)
            self._check_vocabularies(facts, report)
            for rule, message, hint in facts.filter_findings:
                emit(report, rule, message, location, hint=hint)
            for rule, message, hint in facts.conn_findings:
                emit(report, rule, message, location, hint=hint)
        self._check_overlaps(patterns, report)
        return report

    # -- vocabulary reachability (registry-dependent, stays live) ------------

    def _check_vocabularies(
        self, facts: _PatternFacts, report
    ) -> None:
        if self.vocabularies is None or not facts.vocab_refs:
            return
        location = facts.location
        for vocab_name in sorted(facts.vocab_refs):
            if vocab_name not in self.vocabularies:
                self.registry.emit(
                    report, "unknown-vocabulary",
                    f"filter tests membership in {vocab_name}, which is "
                    f"not registered",
                    location,
                    hint="known vocabularies: "
                         + ", ".join(self.vocabularies.names()),
                )
            elif len(self.vocabularies[vocab_name]) == 0:
                self.registry.emit(
                    report, "empty-vocabulary",
                    f"{vocab_name} is empty; the membership test never "
                    f"holds",
                    location,
                    hint=f"populate {vocab_name} or drop the test",
                )

    # -- structure -----------------------------------------------------------

    def _check_overlaps(self, patterns: list[IXPattern], report) -> None:
        by_shape: dict[tuple, list[IXPattern]] = {}
        for pattern in patterns:
            by_shape.setdefault(
                _pattern_facts(pattern).shape_key, []
            ).append(pattern)
        for group in by_shape.values():
            if len(group) < 2:
                continue
            first = group[0]
            first_filter = _pattern_facts(first).normalized_filter
            for other in group[1:]:
                other_filter = _pattern_facts(other).normalized_filter
                if first_filter == other_filter:
                    relation = "duplicates"
                elif first_filter is None or other_filter is None:
                    relation = "is subsumed by" if (
                        other_filter is not None
                    ) else "subsumes"
                else:
                    continue  # same shape, genuinely different filters
                self.registry.emit(
                    report, "overlapping-pattern",
                    f"pattern {other.name!r} {relation} pattern "
                    f"{first.name!r}",
                    _pattern_location(other),
                    hint="merge the patterns or differentiate their "
                         "filters",
                )


# ---------------------------------------------------------------------------
# Filter-tree walks
# ---------------------------------------------------------------------------

def _filter_refs(
    filter_expr: PatternFilter,
) -> tuple[set[str], list[str]]:
    """Vocabulary names and ``POS()``-compared constants, in one walk.

    The two collections used to be separate traversals; fusing them
    halves the tree-walk cost of the hottest per-pattern check.
    """
    vocabs: set[str] = set()
    pos_values: list[str] = []
    stack = [filter_expr]
    while stack:
        node = stack.pop()
        op = node.op
        if op == "in":
            vocabs.add(node.args[1])
        elif op == "cmp":
            _, left, right = node.args
            for a, b in ((left, right), (right, left)):
                if (
                    a.op == "func" and a.args[0] == "POS"
                    and b.op == "const"
                ):
                    pos_values.append(b.args[0])
        for arg in node.args:
            if isinstance(arg, PatternFilter):
                stack.append(arg)
    return vocabs, pos_values


def _conjuncts(filter_expr: PatternFilter) -> list[PatternFilter]:
    if filter_expr.op == "and":
        out: list[PatternFilter] = []
        for arg in filter_expr.args:
            out.extend(_conjuncts(arg))
        return out
    return [filter_expr]


def _contradictions(filter_expr: PatternFilter):
    """(fn, var, sorted values) for functions pinned to >1 constant."""
    pinned: dict[tuple[str, str], set[str]] = {}
    for node in _conjuncts(filter_expr):
        if node.op != "cmp" or node.args[0] != "=":
            continue
        _, left, right = node.args
        for a, b in ((left, right), (right, left)):
            if a.op == "func" and b.op == "const":
                pinned.setdefault(tuple(a.args), set()).add(b.args[0])
    for (fn, var), values in sorted(pinned.items()):
        if len(values) > 1:
            yield fn, var, sorted(values)


# ---------------------------------------------------------------------------
# Structural normalization (for overlap detection)
# ---------------------------------------------------------------------------

def _renamer(pattern: IXPattern) -> dict[str, str]:
    """Canonical variable names, in order of appearance in the edges."""
    mapping: dict[str, str] = {}

    def rename(name: str) -> str:
        if name not in mapping:
            mapping[name] = f"v{len(mapping)}"
        return mapping[name]

    for edge in pattern.edges:
        rename(edge.head)
        rename(edge.dependent)
    rename(pattern.anchor)
    for name in sorted(pattern.variables()):
        rename(name)
    return mapping


def _shape_key(pattern: IXPattern) -> tuple:
    mapping = _renamer(pattern)
    edges = tuple(
        (mapping[e.head], e.label, mapping[e.dependent])
        for e in pattern.edges
    )
    return (pattern.ix_type, edges, mapping[pattern.anchor])


def _normalized_filter(pattern: IXPattern):
    if pattern.filter is None:
        return None
    mapping = _renamer(pattern)

    def normalize(node: PatternFilter) -> tuple:
        if node.op == "func":
            fn, var = node.args
            return ("func", fn, mapping.get(var, var))
        args = tuple(
            normalize(a) if isinstance(a, PatternFilter) else a
            for a in node.args
        )
        return (node.op, args)

    return normalize(pattern.filter)
