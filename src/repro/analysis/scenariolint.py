"""ScenarioLint: cross-artifact analysis of a scenario pack.

OntologyLint checks the ontology and PatternLint checks the pattern
bank, each in isolation.  The failures that actually burn a new domain
live *between* the artifacts: a gold query referencing an entity the
pack's ontology never defines, a vocabulary lemma no pattern can reach,
a "supported" corpus question the verifier rejects before parsing.
ScenarioLint takes the whole :class:`~repro.data.scenario.ScenarioPack`
and checks those seams.

Reachability model for vocabularies: a lemma is *reachable* when some
pattern's filter tests membership in a vocabulary containing it.  The
packaged registry builds ``V_opinion`` as the union of ``V_positive`` /
``V_negative``, so polarity-half lemmas are reachable through the union
— but a lemma added to a half **after** the union was built is not,
which is exactly the vocabulary-drift bug this rule exists to catch.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.patternlint import _filter_refs
from repro.analysis.querylint import QueryLint
from repro.analysis.registry import Rule, RuleRegistry
from repro.core.verification import Verifier
from repro.data.scenario import ScenarioPack
from repro.errors import OassisQLSyntaxError
from repro.rdf.ontology import KB

__all__ = ["SCENARIO_RULES", "ScenarioLint"]

_E = Severity.ERROR
_W = Severity.WARNING
_I = Severity.INFO

#: Every ScenarioLint rule, in catalog order (docs/static-analysis.md).
SCENARIO_RULES: list[Rule] = [
    Rule("duplicate-question-id", "scenario", _E,
         "two corpus questions share an id; eval results become "
         "unattributable"),
    Rule("question-unverifiable", "scenario", _W,
         "a question annotated as supported is rejected by the "
         "verifier"),
    Rule("gold-query-syntax-error", "scenario", _E,
         "a gold query does not parse as OASSIS-QL"),
    Rule("gold-query-lint-error", "scenario", _E,
         "a gold query fails QueryLint against the pack's ontology"),
    Rule("gold-entity-unresolved", "scenario", _E,
         "a gold general entity does not resolve in the pack's "
         "ontology"),
    Rule("unreachable-vocabulary-lemmas", "scenario", _W,
         "lemmas of a vocabulary are outside every pattern-referenced "
         "vocabulary"),
    Rule("vocabulary-ontology-overlap", "scenario", _I,
         "IX vocabulary lemmas double as ontology label tokens "
         "(detection/grounding ambiguity)"),
]


class ScenarioLint:
    """Rule-based cross-artifact analyzer for scenario packs.

    Args:
        registry: a configured :class:`RuleRegistry`; a fresh one with
            every scenario rule at default severity if omitted.
    """

    def __init__(self, registry: RuleRegistry | None = None):
        self.registry = registry or RuleRegistry(SCENARIO_RULES)

    def lint(
        self, pack: ScenarioPack, subject: str | None = None
    ) -> AnalysisReport:
        """Analyze one pack's cross-artifact seams; never raises."""
        report = AnalysisReport(
            subject=subject or f"scenario pack {pack.name!r}"
        )
        self._check_corpus(pack, report)
        self._check_gold_queries(pack, report)
        self._check_vocabulary_reachability(pack, report)
        self._check_vocabulary_overlap(pack, report)
        return report

    # -- corpus ---------------------------------------------------------------

    def _check_corpus(self, pack: ScenarioPack, report) -> None:
        ids = Counter(q.id for q in pack.corpus)
        for qid, count in sorted(ids.items()):
            if count > 1:
                self.registry.emit(
                    report, "duplicate-question-id",
                    f"{count} corpus questions are named {qid!r}",
                    Location(f"question {qid}"),
                    hint="give each corpus question a unique id",
                )
        verifier = Verifier()
        for q in pack.corpus:
            if not q.supported:
                continue
            result = verifier.verify(q.text)
            if not result.ok:
                self.registry.emit(
                    report, "question-unverifiable",
                    f"question {q.id} is annotated supported but the "
                    f"verifier rejects it ({result.reason})",
                    Location(f"question {q.id}"),
                    hint="fix the annotation or the verifier rule",
                )

    # -- gold queries and entities -------------------------------------------

    def _check_gold_queries(self, pack: ScenarioPack, report) -> None:
        from repro.oassisql.parser import parse_oassisql

        querylint = QueryLint(ontology=pack.ontology)
        store = pack.ontology.store
        for q in pack.corpus:
            location = Location(f"question {q.id}")
            for name in q.gold_general_entities:
                iri = KB[name]
                known = (
                    iri in pack.ontology.classes
                    or iri in pack.ontology.properties
                    or store.count(iri, None, None) > 0
                    or store.count(None, None, iri) > 0
                )
                if not known:
                    self.registry.emit(
                        report, "gold-entity-unresolved",
                        f"gold entity {name!r} of question {q.id} is "
                        f"not in the pack's ontology",
                        location,
                        hint="add the entity to the ontology or fix "
                             "the annotation",
                    )
            if q.gold_query is None:
                continue
            try:
                query = parse_oassisql(q.gold_query, validate=False)
            except OassisQLSyntaxError as err:
                self.registry.emit(
                    report, "gold-query-syntax-error",
                    f"gold query of question {q.id} does not parse: "
                    f"{err}",
                    location,
                    hint="gold queries must be valid OASSIS-QL",
                )
                continue
            inner = querylint.lint(query, subject=q.id)
            for diagnostic in inner.errors:
                self.registry.emit(
                    report, "gold-query-lint-error",
                    f"gold query of question {q.id}: "
                    f"[{diagnostic.rule}] {diagnostic.message}",
                    location,
                    hint=diagnostic.hint,
                )

    # -- vocabularies ---------------------------------------------------------

    def _check_vocabulary_reachability(
        self, pack: ScenarioPack, report
    ) -> None:
        referenced: set[str] = set()
        for pattern in pack.patterns:
            if pattern.filter is not None:
                referenced |= _filter_refs(pattern.filter)[0]
        reachable: set[str] = set()
        for name in referenced:
            if name in pack.vocabularies:
                reachable |= set(pack.vocabularies[name])
        for name in pack.vocabularies.names():
            unreachable = sorted(
                lemma for lemma in pack.vocabularies[name]
                if lemma not in reachable
            )
            if not unreachable:
                continue
            shown = ", ".join(unreachable[:5])
            if len(unreachable) > 5:
                shown += ", ..."
            self.registry.emit(
                report, "unreachable-vocabulary-lemmas",
                f"{len(unreachable)} lemma(s) of {name} are outside "
                f"every pattern-referenced vocabulary ({shown})",
                Location(f"vocabulary {name}"),
                hint="reference the vocabulary from a pattern, or "
                     "rebuild derived unions after editing",
            )

    def _check_vocabulary_overlap(
        self, pack: ScenarioPack, report
    ) -> None:
        ontology_tokens = pack.ontology.vocabulary_words()
        for name in pack.vocabularies.names():
            overlap = sorted(
                lemma for lemma in pack.vocabularies[name]
                if lemma in ontology_tokens
            )
            if not overlap:
                continue
            shown = ", ".join(overlap[:5])
            if len(overlap) > 5:
                shown += ", ..."
            self.registry.emit(
                report, "vocabulary-ontology-overlap",
                f"{len(overlap)} lemma(s) of {name} are also ontology "
                f"label tokens ({shown})",
                Location(f"vocabulary {name}"),
                hint="overlapping words are both IX candidates and "
                     "entity mentions; detection order decides",
            )
