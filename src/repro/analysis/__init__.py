"""Static analysis for queries, patterns and knowledge artifacts.

The cheap gate in front of crowd execution: a translated query that is
syntactically fine but semantically broken — unbound SATISFYING
variables, a cartesian WHERE product, predicates the ontology has never
heard of — would burn (simulated) crowd budget before anyone noticed.
Four analyzers share one diagnostic core:

* :class:`QueryLint` — rule-based checks over
  :class:`~repro.oassisql.ast.OassisQuery` ASTs;
* :class:`PatternLint` — checks over the IX detection pattern bank;
* :class:`OntologyLint` — single-streaming-pass checks over
  :class:`~repro.rdf.ontology.Ontology` snapshots;
* :class:`ScenarioLint` — cross-artifact checks over a whole
  :class:`~repro.data.scenario.ScenarioPack`.

Quickstart::

    from repro.analysis import QueryLint
    from repro.oassisql import parse_oassisql

    report = QueryLint().lint(parse_oassisql(text))
    for diagnostic in report.diagnostics:
        print(diagnostic.render())

Rules are declared in :data:`~repro.analysis.querylint.QUERY_RULES` /
:data:`~repro.analysis.patternlint.PATTERN_RULES` /
:data:`~repro.analysis.kblint.ONTOLOGY_RULES` /
:data:`~repro.analysis.scenariolint.SCENARIO_RULES`; a
:class:`RuleRegistry` lets an administrator disable rules or override
severities without touching analyzer code.  The rule catalog lives in
``docs/static-analysis.md``.
"""

from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Location,
    Severity,
)
from repro.analysis.kblint import ONTOLOGY_RULES, OntologyLint
from repro.analysis.patternlint import PATTERN_RULES, PatternLint
from repro.analysis.querylint import QUERY_RULES, QueryLint, query_locations
from repro.analysis.registry import Rule, RuleRegistry
from repro.analysis.runner import (
    LintOutcome,
    lint_knowledge_base,
    lint_ontology,
    lint_pattern_bank,
    lint_query_source,
    lint_questions,
    lint_scenario_pack,
)
from repro.analysis.scenariolint import SCENARIO_RULES, ScenarioLint

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Location",
    "Severity",
    "Rule",
    "RuleRegistry",
    "QueryLint",
    "QUERY_RULES",
    "PatternLint",
    "PATTERN_RULES",
    "OntologyLint",
    "ONTOLOGY_RULES",
    "ScenarioLint",
    "SCENARIO_RULES",
    "LintOutcome",
    "lint_query_source",
    "lint_questions",
    "lint_pattern_bank",
    "lint_ontology",
    "lint_scenario_pack",
    "lint_knowledge_base",
    "default_registry",
]


def default_registry() -> RuleRegistry:
    """A registry holding every rule of all four analyzers."""
    return RuleRegistry(
        QUERY_RULES + PATTERN_RULES + ONTOLOGY_RULES + SCENARIO_RULES
    )
