"""Rule registry: declaration, per-rule configuration, and emission.

Every lint rule is declared once as a :class:`Rule` (stable id, default
severity, one-line description).  A :class:`RuleRegistry` holds the
declarations plus the administrator's configuration — rules can be
disabled and their severity overridden without touching analyzer code,
the same extensibility argument the paper makes for detection patterns.

Analyzers never construct :class:`~repro.analysis.diagnostics.Diagnostic`
records directly; they go through :meth:`RuleRegistry.emit`, which
applies the configuration (and silently drops findings of disabled
rules), so configuration is honoured uniformly across analyzers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Location,
    Severity,
)
from repro.errors import LintConfigError

__all__ = ["Rule", "RuleRegistry"]


@dataclass(frozen=True, slots=True)
class Rule:
    """A lint rule declaration.

    ``id`` is the stable kebab-case identifier diagnostics are tagged
    with; ``analyzer`` names which analyzer owns it (``query`` /
    ``pattern``); ``description`` is the catalog one-liner.
    """

    id: str
    analyzer: str
    severity: Severity
    description: str


class RuleRegistry:
    """Declared rules plus enable/disable and severity overrides."""

    def __init__(self, rules: list[Rule] = ()):  # type: ignore[assignment]
        self._rules: dict[str, Rule] = {}
        self._disabled: set[str] = set()
        self._severity_overrides: dict[str, Severity] = {}
        self._config_cache: dict[str | None, tuple] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise LintConfigError(f"rule {rule.id!r} already registered")
        self._rules[rule.id] = rule
        self._config_cache.clear()
        return rule

    # -- introspection -------------------------------------------------------

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __getitem__(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise LintConfigError(f"unknown rule {rule_id!r}") from None

    def rules(self, analyzer: str | None = None) -> list[Rule]:
        """All declared rules (optionally one analyzer's), sorted by id."""
        out = [
            r for r in self._rules.values()
            if analyzer is None or r.analyzer == analyzer
        ]
        return sorted(out, key=lambda r: r.id)

    def is_enabled(self, rule_id: str) -> bool:
        return self[rule_id].id not in self._disabled

    def severity_of(self, rule_id: str) -> Severity:
        rule = self[rule_id]
        return self._severity_overrides.get(rule.id, rule.severity)

    def config_key(self, analyzer: str | None = None) -> tuple:
        """Hashable fingerprint of the effective configuration.

        Memo keys derived from it stay valid because every mutation
        (register / disable / enable / override) drops the cache.
        """
        cached = self._config_cache.get(analyzer)
        if cached is None:
            cached = tuple(
                (r.id, r.id not in self._disabled,
                 int(self._severity_overrides.get(r.id, r.severity)))
                for r in self.rules(analyzer)
            )
            self._config_cache[analyzer] = cached
        return cached

    # -- configuration -------------------------------------------------------

    def disable(self, rule_id: str) -> None:
        self._disabled.add(self[rule_id].id)
        self._config_cache.clear()

    def enable(self, rule_id: str) -> None:
        self._disabled.discard(self[rule_id].id)
        self._config_cache.clear()

    def override_severity(
        self, rule_id: str, severity: Severity | str
    ) -> None:
        self._severity_overrides[self[rule_id].id] = Severity.parse(severity)
        self._config_cache.clear()

    def reset_overrides(self) -> None:
        self._disabled.clear()
        self._severity_overrides.clear()
        self._config_cache.clear()

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        report: AnalysisReport,
        rule_id: str,
        message: str,
        location: Location | None = None,
        hint: str | None = None,
    ) -> Diagnostic | None:
        """Record one finding, honouring the configuration.

        Returns the emitted diagnostic, or None when the rule is
        disabled (nothing is recorded).
        """
        if not self.is_enabled(rule_id):
            return None
        diagnostic = Diagnostic(
            rule=rule_id,
            severity=self.severity_of(rule_id),
            message=message,
            location=location,
            hint=hint,
        )
        report.add(diagnostic)
        return diagnostic
