"""QueryLint: static analysis of OASSIS-QL query ASTs.

The paper's value proposition is that the translated query is
*well-formed and faithful* before it is shipped to an expensive crowd
(Sections 2-3).  ``OassisQuery.validate()`` checks only the hard
structural constraints; QueryLint adds the semantic checks that separate
an executable query from one that silently burns crowd budget:

* **dataflow** — projected SELECT variables must be bound somewhere,
  SATISFYING variables must be bound in WHERE or locally within their
  fact-set (the composition rules of Section 2.6);
* **connectivity** — a WHERE basic-graph-pattern split into several
  variable-disjoint components is a cartesian product;
* **ontology awareness** — WHERE predicates and entity IRIs must
  resolve against the loaded ontology (SATISFYING triples are exempt:
  their relations are crowd relations, not ontology properties);
* **SATISFYING sanity** — duplicate fact-set triples, ``[]`` as both
  subject and object, contradictory qualifiers over the same fact-set,
  thresholds outside (0, 1], non-positive LIMITs;
* **dead/shadowed triples** — fully ground WHERE triples and exact
  duplicates that cannot change the result.

Locations carry both an AST path and the 1-based line of the canonical
printed text (:func:`query_locations`); the printer/parser round-trip
(under test) makes those line numbers stable coordinates.
"""

from __future__ import annotations

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.registry import Rule, RuleRegistry
from repro.oassisql.ast import (
    Anything,
    OassisQuery,
    QueryTriple,
    SupportThreshold,
    TopK,
)
from repro.oassisql.printer import format_triple
from repro.rdf.ontology import Ontology
from repro.rdf.terms import IRI, Literal, Variable

__all__ = ["QUERY_RULES", "QueryLint", "query_locations"]

_E = Severity.ERROR
_W = Severity.WARNING

#: Every QueryLint rule, in catalog order (see docs/static-analysis.md).
QUERY_RULES: list[Rule] = [
    Rule("empty-query", "query", _E,
         "the query has neither a WHERE nor a SATISFYING clause"),
    Rule("select-unknown-variable", "query", _E,
         "SELECT projects a variable bound nowhere in the query"),
    Rule("satisfying-unbound-variable", "query", _E,
         "a SATISFYING variable is bound neither in WHERE nor locally "
         "in its fact-set"),
    Rule("where-cartesian-product", "query", _W,
         "the WHERE pattern splits into variable-disjoint components "
         "(cartesian product)"),
    Rule("where-ground-triple", "query", _W,
         "a WHERE triple has no variables: it is a constant gate, not "
         "a selection"),
    Rule("where-duplicate-triple", "query", _W,
         "a WHERE triple repeats an earlier one (shadowed filter)"),
    Rule("anything-in-where", "query", _E,
         "the [] wildcard is a SATISFYING construct; WHERE is evaluated "
         "against the ontology"),
    Rule("anything-sole-terms", "query", _E,
         "[] appears as both subject and object of one triple"),
    Rule("invalid-predicate-term", "query", _E,
         "a literal or [] cannot be a predicate"),
    Rule("literal-subject", "query", _W,
         "a literal as triple subject matches nothing"),
    Rule("duplicate-fact-triple", "query", _W,
         "a fact-set repeats a triple: the crowd is asked twice"),
    Rule("duplicate-fact-set", "query", _W,
         "two SATISFYING subclauses mine the same fact-set"),
    Rule("contradictory-qualifiers", "query", _E,
         "identical fact-sets carry conflicting support qualifiers"),
    Rule("threshold-out-of-range", "query", _E,
         "a support threshold outside (0, 1] accepts everything or "
         "nothing"),
    Rule("limit-not-positive", "query", _E,
         "LIMIT must be a positive number of patterns"),
    Rule("unknown-predicate", "query", _W,
         "a WHERE predicate is not a property of the loaded ontology"),
    Rule("unknown-entity", "query", _W,
         "a WHERE entity IRI does not resolve against the loaded "
         "ontology"),
]


def query_locations(query: OassisQuery) -> dict[str, int]:
    """AST path -> 1-based line in ``print_oassisql(query)``.

    Mirrors the printer's Figure 1 layout exactly (one triple per line,
    clause keywords on their own lines, ``AND`` between subclauses, two
    lines for a top-k qualifier) — the property the round-trip tests
    pin down.
    """
    lines: dict[str, int] = {}
    n = 1
    lines["select"] = n
    if query.where:
        n += 1  # the WHERE keyword line
        for i in range(len(query.where)):
            n += 1
            lines[f"where[{i}]"] = n
    if query.satisfying:
        n += 1  # the SATISFYING keyword line
        for ci, clause in enumerate(query.satisfying):
            if ci:
                n += 1  # the AND line
            for ti in range(len(clause.triples)):
                n += 1
                if ti == 0:
                    lines[f"satisfying[{ci}]"] = n
                lines[f"satisfying[{ci}].triples[{ti}]"] = n
            n += 1
            lines[f"satisfying[{ci}].qualifier"] = n
            if isinstance(clause.qualifier, TopK):
                n += 1  # the LIMIT line
    return lines


class QueryLint:
    """Rule-based static analyzer for :class:`OassisQuery` ASTs.

    Args:
        ontology: enables the ontology-aware rules; omit to run the
            purely structural rules only.
        registry: a configured :class:`RuleRegistry`; a fresh one with
            every query rule at default severity if omitted.
    """

    def __init__(
        self,
        ontology: Ontology | None = None,
        registry: RuleRegistry | None = None,
    ):
        self.ontology = ontology
        self.registry = registry or RuleRegistry(QUERY_RULES)
        # Entity resolution scans the triple store; queries keep
        # mentioning the same handful of IRIs, so memoize per linter.
        self._entity_cache: dict[IRI, bool] = {}

    def lint(self, query: OassisQuery, subject: str = "query"
             ) -> AnalysisReport:
        """Run every enabled rule; never raises on query content."""
        report = AnalysisReport(subject=subject)
        # Line numbers are only needed when something fires; clean
        # queries (the common case) skip the layout computation.
        lines: dict[str, int] | None = None

        def loc(path: str) -> Location:
            nonlocal lines
            if lines is None:
                lines = query_locations(query)
            return Location(path, line=lines.get(path))

        self._check_clauses_present(query, report, loc)
        where_vars = self._check_where(query, report, loc)
        satisfying_vars = self._check_satisfying(
            query, report, loc, where_vars
        )
        self._check_select(query, report, loc, where_vars | satisfying_vars)
        return report

    # -- dataflow ------------------------------------------------------------

    def _check_clauses_present(self, query, report, loc) -> None:
        if not query.where and not query.satisfying:
            self.registry.emit(
                report, "empty-query",
                "query has neither a WHERE nor a SATISFYING clause",
                loc("select"),
                hint="add a WHERE selection or a SATISFYING fact-set",
            )

    def _check_select(self, query, report, loc, known) -> None:
        if query.select.projects_all:
            return
        for name in query.select.variables:
            if name not in known:
                self.registry.emit(
                    report, "select-unknown-variable",
                    f"SELECT projects ${name}, which no clause binds",
                    loc("select"),
                    hint=f"drop ${name} from SELECT or bind it in WHERE",
                )

    # -- WHERE: shape, terms and ontology in one pass ------------------------

    def _check_where(self, query, report, loc) -> set[str]:
        emit = self.registry.emit
        ontology = self.ontology
        # Triple hashing is the expensive part of duplicate detection;
        # a single-triple WHERE cannot contain a duplicate, so skip it.
        seen: dict[QueryTriple, int] | None = (
            {} if len(query.where) > 1 else None
        )
        var_triples: list[tuple[int, set[str]]] = []
        where_vars: set[str] = set()
        for i, triple in enumerate(query.where):
            path = f"where[{i}]"
            if seen is not None:
                if triple in seen:
                    emit(
                        report, "where-duplicate-triple",
                        f"'{format_triple(triple)}' repeats the triple "
                        f"at line {loc(f'where[{seen[triple]}]').line}",
                        loc(path),
                        hint="delete the repeated triple",
                    )
                else:
                    seen[triple] = i
            variables = triple.variables()
            if variables:
                var_triples.append((i, variables))
                where_vars |= variables
            else:
                emit(
                    report, "where-ground-triple",
                    f"'{format_triple(triple)}' mentions no variable; "
                    f"it can only switch the whole query on or off",
                    loc(path),
                    hint="remove it or replace a constant with a "
                         "variable",
                )
            if isinstance(triple.s, Anything) or isinstance(
                triple.o, Anything
            ):
                emit(
                    report, "anything-in-where",
                    f"'{format_triple(triple)}' uses [] inside WHERE",
                    loc(path),
                    hint="move the triple into a SATISFYING fact-set or "
                         "use a variable",
                )
            self._check_triple_terms(triple, path, report, loc)
            if ontology is not None:
                if isinstance(triple.p, IRI) and (
                    triple.p not in ontology.properties
                ):
                    emit(
                        report, "unknown-predicate",
                        f"'{triple.p.local_name}' is not a property of "
                        f"the loaded ontology",
                        loc(path),
                        hint="check the spelling against the ontology's "
                             "property list",
                    )
                for term in (triple.s, triple.o):
                    if isinstance(term, IRI) and not self._entity_known(
                        term
                    ):
                        emit(
                            report, "unknown-entity",
                            f"'{term.local_name}' does not resolve "
                            f"against the loaded ontology",
                            loc(path),
                            hint="the WHERE clause can only select what "
                                 "the ontology knows about",
                        )

        if len(var_triples) > 1:
            components = _connected_components(var_triples)
            if len(components) > 1:
                parts = ", ".join(
                    "{" + ", ".join(f"${v}" for v in sorted(vars_)) + "}"
                    for _, vars_ in components
                )
                first_of_second = components[1][0][0]
                emit(
                    report, "where-cartesian-product",
                    f"WHERE splits into {len(components)} "
                    f"variable-disjoint components ({parts}); their "
                    f"bindings multiply",
                    loc(f"where[{first_of_second}]"),
                    hint="join the components through a shared variable, "
                         "or split the request into separate queries",
                )
        return where_vars

    # -- SATISFYING: dataflow, terms, duplicates, qualifiers -----------------

    def _check_satisfying(self, query, report, loc, where_vars
                          ) -> set[str]:
        emit = self.registry.emit
        # One pass per clause: occurrence counts, crowd-bound names,
        # duplicate triples, term checks and the qualifier, together.
        per_clause: list[tuple[dict[str, int], set[str]]] = []
        seen_sets: dict[frozenset[QueryTriple], tuple[int, object]] | None
        seen_sets = {} if len(query.satisfying) > 1 else None
        for ci, clause in enumerate(query.satisfying):
            occurrences: dict[str, int] = {}
            crowd_bound: set[str] = set()
            first_seen: dict[QueryTriple, int] | None = (
                {} if len(clause.triples) > 1 else None
            )
            for ti, triple in enumerate(clause.triples):
                path = f"satisfying[{ci}].triples[{ti}]"
                if first_seen is not None:
                    if triple in first_seen:
                        emit(
                            report, "duplicate-fact-triple",
                            f"'{format_triple(triple)}' repeats within "
                            f"the fact-set",
                            loc(path),
                            hint="delete the repeated fact triple",
                        )
                    else:
                        first_seen[triple] = ti
                s, p, o = triple.s, triple.p, triple.o
                open_fact = (
                    isinstance(s, Anything) or isinstance(p, Anything)
                    or isinstance(o, Anything)
                )
                if open_fact and isinstance(s, Anything) and isinstance(
                    o, Anything
                ):
                    emit(
                        report, "anything-sole-terms",
                        f"'{format_triple(triple)}' projects out both "
                        f"ends of the fact",
                        loc(path),
                        hint="name at least one side of the fact with "
                             "an entity or a variable",
                    )
                for term in (s, p, o):
                    if isinstance(term, Variable):
                        name = term.name
                        occurrences[name] = occurrences.get(name, 0) + 1
                        # "[] buy $x" is an open fact: the [] wildcard
                        # projects a participant out, the crowd's
                        # answers bind $x (paper Section 2.1).
                        if open_fact:
                            crowd_bound.add(name)
                self._check_triple_terms(triple, path, report, loc)
            per_clause.append((occurrences, crowd_bound))

            qualifier = clause.qualifier
            qpath = f"satisfying[{ci}].qualifier"
            if isinstance(qualifier, SupportThreshold):
                if not 0.0 < qualifier.threshold <= 1.0:
                    emit(
                        report, "threshold-out-of-range",
                        f"support threshold {qualifier.threshold!r} is "
                        f"outside (0, 1]",
                        loc(qpath),
                        hint="support is a frequency; pick a value such "
                             "as 0.1",
                    )
            elif isinstance(qualifier, TopK) and qualifier.k <= 0:
                emit(
                    report, "limit-not-positive",
                    f"LIMIT {qualifier.k} returns no patterns",
                    loc(qpath),
                    hint="use a positive k, e.g. LIMIT 5",
                )

            if seen_sets is not None:
                key = frozenset(clause.triples)
                if key in seen_sets:
                    first_ci, first_qualifier = seen_sets[key]
                    if first_qualifier == qualifier:
                        emit(
                            report, "duplicate-fact-set",
                            f"subclause #{ci + 1} repeats the fact-set "
                            f"of subclause #{first_ci + 1}",
                            loc(f"satisfying[{ci}]"),
                            hint="delete the repeated subclause",
                        )
                    else:
                        emit(
                            report, "contradictory-qualifiers",
                            f"subclauses #{first_ci + 1} and #{ci + 1} "
                            f"mine the same fact-set under different "
                            f"qualifiers",
                            loc(qpath),
                            hint="keep one qualifier per fact-set",
                        )
                else:
                    seen_sets[key] = (ci, qualifier)

        # Unbound-variable emission runs after the main pass: a variable
        # may be bound by a *later* subclause (cross-subclause join).
        satisfying_vars: set[str] = set()
        for occurrences, _ in per_clause:
            satisfying_vars.update(occurrences)
        for ci, (occurrences, crowd_bound) in enumerate(per_clause):
            elsewhere = set().union(
                *(v for cj, (v, _) in enumerate(per_clause) if cj != ci),
                where_vars,
            ) if len(per_clause) > 1 else where_vars
            for name in sorted(occurrences):
                if name in where_vars:
                    continue
                if name in crowd_bound:
                    continue  # bound by crowd answers to the open fact
                if occurrences[name] >= 2:
                    continue  # locally joined within the fact-set
                if name in elsewhere:
                    continue  # cross-subclause join (unusual but bound)
                emit(
                    report, "satisfying-unbound-variable",
                    f"${name} occurs once in this fact-set and is not "
                    f"bound in WHERE",
                    loc(f"satisfying[{ci}]"),
                    hint=f"add a WHERE triple such as "
                         f"'${name} instanceOf <Class>', or project the "
                         f"free participant with []",
                )
        return satisfying_vars

    def _check_triple_terms(self, triple, path, report, loc) -> None:
        if isinstance(triple.p, (Literal, Anything)):
            self.registry.emit(
                report, "invalid-predicate-term",
                f"'{format_triple(triple)}' has "
                f"{'[]' if isinstance(triple.p, Anything) else 'a literal'}"
                f" in predicate position",
                loc(path),
                hint="predicates must be IRIs or variables",
            )
        if isinstance(triple.s, Literal):
            self.registry.emit(
                report, "literal-subject",
                f"'{format_triple(triple)}' has a literal subject",
                loc(path),
                hint="literals can only appear in object position",
            )

    # -- ontology helpers ----------------------------------------------------

    def _entity_known(self, iri: IRI) -> bool:
        cached = self._entity_cache.get(iri)
        if cached is not None:
            return cached
        ontology = self.ontology
        known = (
            iri in ontology.classes
            or iri in ontology.properties
            or ontology.store.count(iri, None, None) > 0
            or ontology.store.count(None, None, iri) > 0
        )
        self._entity_cache[iri] = known
        return known


def _connected_components(
    var_triples: list[tuple[int, set[str]]]
) -> list[tuple[list[int], set[str]]]:
    """Group variable-bearing triples by shared variables.

    Returns (triple indexes, variables) per component, in order of the
    first triple of each component.
    """
    components: list[tuple[list[int], set[str]]] = []
    for index, variables in var_triples:
        touching = [
            c for c in components if c[1] & variables
        ]
        if not touching:
            components.append(([index], set(variables)))
            continue
        merged_indexes, merged_vars = touching[0]
        for other in touching[1:]:
            merged_indexes.extend(other[0])
            merged_vars |= other[1]
            components.remove(other)
        merged_indexes.append(index)
        merged_vars |= variables
    for indexes, _ in components:
        indexes.sort()
    return components
