"""Batch lint entry points shared by the CLI and the CI corpus job.

Six front doors, all returning :class:`LintOutcome`:

* :func:`lint_query_source` — one saved OASSIS-QL query text (parsed
  *without* semantic validation, so lint can report what ``validate()``
  would have raised, plus everything it would not);
* :func:`lint_questions` — translate each NL question through a shared
  :class:`~repro.core.pipeline.NL2CM` and lint the result (reusing the
  pipeline's own lint report when the translator produced one);
* :func:`lint_pattern_bank` — the IX pattern bank + vocabularies;
* :func:`lint_ontology` — one ontology snapshot (OntologyLint);
* :func:`lint_scenario_pack` — a whole scenario pack: its ontology,
  its pattern bank *and* the cross-artifact seams (ScenarioLint);
* :func:`lint_knowledge_base` — every embedded snapshot plus the
  default pack, the ``--lint-kb`` sweep CI runs.

A :class:`LintOutcome` aggregates the per-subject reports, knows the
process exit code (nonzero iff any ERROR diagnostic) and serializes the
diagnostic counts for the CI build artifact — overall and keyed by
analyzer family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.kblint import ONTOLOGY_RULES, OntologyLint
from repro.analysis.patternlint import PATTERN_RULES, PatternLint
from repro.analysis.querylint import QUERY_RULES, QueryLint
from repro.analysis.scenariolint import SCENARIO_RULES, ScenarioLint
from repro.core.ixdetect import load_default_patterns
from repro.core.ixpatterns import IXPattern
from repro.data.vocabularies import VocabularyRegistry, load_vocabularies
from repro.errors import OassisQLSyntaxError, ReproError
from repro.rdf.ontology import Ontology

__all__ = [
    "LintOutcome", "lint_query_source", "lint_questions",
    "lint_pattern_bank", "lint_ontology", "lint_scenario_pack",
    "lint_knowledge_base",
]

#: rule id -> analyzer family, for the per-family counts breakdown.
#: Synthetic runner-emitted rules count toward the query family.
_RULE_FAMILY: dict[str, str] = {
    rule.id: rule.analyzer
    for rule in (
        QUERY_RULES + PATTERN_RULES + ONTOLOGY_RULES + SCENARIO_RULES
    )
}
_RULE_FAMILY["syntax-error"] = "query"
_RULE_FAMILY["translation-failed"] = "query"


@dataclass
class LintOutcome:
    """Aggregated result of one lint run over one or more subjects."""

    reports: list[AnalysisReport] = field(default_factory=list)

    def add(self, report: AnalysisReport) -> None:
        self.reports.append(report)

    @property
    def errors(self) -> int:
        return sum(len(r.errors) for r in self.reports)

    @property
    def warnings(self) -> int:
        return sum(len(r.warnings) for r in self.reports)

    @property
    def infos(self) -> int:
        return sum(len(r.infos) for r in self.reports)

    @property
    def exit_code(self) -> int:
        """0 when no ERROR-level diagnostic was reported, else 1."""
        return 1 if self.errors else 0

    def counts(self) -> dict:
        """JSON-ready summary (the CI job's build artifact).

        Besides the overall totals and per-rule counts, ``families``
        breaks both down per analyzer family (``query`` / ``pattern``
        / ``ontology`` / ``scenario``), so one merged artifact can
        cover every lint surface and still be diffable per analyzer.
        """
        by_rule: dict[str, int] = {}
        families: dict[str, dict] = {}
        for report in self.reports:
            for diagnostic in report.diagnostics:
                by_rule[diagnostic.rule] = (
                    by_rule.get(diagnostic.rule, 0) + 1
                )
                family = _RULE_FAMILY.get(diagnostic.rule, "query")
                bucket = families.setdefault(family, {
                    "errors": 0, "warnings": 0, "infos": 0, "rules": {},
                })
                key = {
                    Severity.ERROR: "errors",
                    Severity.WARNING: "warnings",
                    Severity.INFO: "infos",
                }[diagnostic.severity]
                bucket[key] += 1
                bucket["rules"][diagnostic.rule] = (
                    bucket["rules"].get(diagnostic.rule, 0) + 1
                )
        for bucket in families.values():
            bucket["rules"] = dict(sorted(bucket["rules"].items()))
        return {
            "subjects": len(self.reports),
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "rules": dict(sorted(by_rule.items())),
            "families": dict(sorted(families.items())),
        }

    def merge(self, other: "LintOutcome") -> "LintOutcome":
        """Fold another outcome's reports into this one (returns self)."""
        self.reports.extend(other.reports)
        return self

    def summary(self) -> str:
        return (
            f"{len(self.reports)} subject(s): {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.infos} info(s)"
        )

    def render(self) -> str:
        """All per-subject reports plus the aggregate summary line."""
        blocks = [r.render() for r in self.reports]
        blocks.append(self.summary())
        return "\n\n".join(blocks)


def lint_query_source(
    text: str,
    ontology: Ontology | None = None,
    subject: str = "query",
) -> LintOutcome:
    """Lint one OASSIS-QL query text.

    Syntax errors are reported as a ``syntax-error`` diagnostic rather
    than raised, so a lint run over many files never aborts midway.
    """
    from repro.oassisql.parser import parse_oassisql

    outcome = LintOutcome()
    try:
        query = parse_oassisql(text, validate=False)
    except OassisQLSyntaxError as err:
        report = AnalysisReport(subject=subject)
        report.add(_syntax_diagnostic(err))
        outcome.add(report)
        return outcome
    linter = QueryLint(ontology=ontology)
    outcome.add(linter.lint(query, subject=subject))
    return outcome


def _syntax_diagnostic(err: OassisQLSyntaxError):
    from repro.analysis.diagnostics import Diagnostic

    location = (
        Location("query", line=err.line) if err.line is not None else None
    )
    return Diagnostic(
        rule="syntax-error",
        severity=Severity.ERROR,
        message=str(err),
        location=location,
        hint="fix the OASSIS-QL syntax before linting semantics",
    )


def lint_questions(questions: list[str], nl2cm) -> LintOutcome:
    """Translate and lint each question through a shared translator.

    Questions that fail to translate (unsupported form, composition
    failure) are reported as a ``translation-failed`` ERROR diagnostic;
    a lint sweep over a question file must account for every line.
    """
    from repro.analysis.diagnostics import Diagnostic

    from repro.errors import QueryLintError

    outcome = LintOutcome()
    linter = QueryLint(ontology=nl2cm.ontology)
    for question in questions:
        try:
            result = nl2cm.translate(question)
        except QueryLintError as err:
            # The pipeline's own gate fired: its report IS the finding.
            report = err.report
            report.subject = question
            outcome.add(report)
            continue
        except ReproError as err:
            report = AnalysisReport(subject=question)
            report.add(Diagnostic(
                rule="translation-failed",
                severity=Severity.ERROR,
                message=f"{type(err).__name__}: {err}",
                hint="only translatable questions can be linted",
            ))
            outcome.add(report)
            continue
        if result.lint is not None:
            report = result.lint
            report.subject = question
        else:
            report = linter.lint(result.query, subject=question)
        outcome.add(report)
    return outcome


def lint_pattern_bank(
    patterns: list[IXPattern] | None = None,
    vocabularies: VocabularyRegistry | None = None,
) -> LintOutcome:
    """Lint an IX pattern bank (the packaged defaults if omitted)."""
    if patterns is None:
        patterns = load_default_patterns()
    if vocabularies is None:
        vocabularies = load_vocabularies()
    outcome = LintOutcome()
    linter = PatternLint(vocabularies=vocabularies)
    outcome.add(linter.lint(patterns))
    return outcome


def lint_ontology(
    ontology: Ontology, subject: str = "ontology"
) -> LintOutcome:
    """Lint one ontology snapshot with OntologyLint."""
    outcome = LintOutcome()
    outcome.add(OntologyLint().lint(ontology, subject=subject))
    return outcome


def lint_scenario_pack(pack) -> LintOutcome:
    """Lint a whole scenario pack: every artifact plus the seams.

    Runs OntologyLint on the pack's ontology, PatternLint on its
    pattern bank (against its vocabularies) and ScenarioLint on the
    cross-artifact relationships.
    """
    outcome = LintOutcome()
    outcome.add(OntologyLint().lint(
        pack.ontology, subject=f"pack {pack.name!r}: ontology"
    ))
    outcome.add(PatternLint(vocabularies=pack.vocabularies).lint(
        pack.patterns, subject=f"pack {pack.name!r}: pattern bank"
    ))
    outcome.add(ScenarioLint().lint(pack))
    return outcome


def lint_knowledge_base() -> LintOutcome:
    """Lint every embedded snapshot plus the default scenario pack.

    The ``--lint-kb`` sweep: each snapshot is linted on its own (a
    regression in one file should name that file), then the default
    pack covers the merged ontology and the cross-artifact seams.
    """
    from repro.data.ontologies import (
        load_dbpedia, load_food, load_geo,
    )
    from repro.data.scenario import default_pack

    outcome = LintOutcome()
    linter = OntologyLint()
    for name, onto in (
        ("geo.ttl", load_geo()),
        ("dbpedia.ttl", load_dbpedia()),
        ("food.ttl", load_food()),
    ):
        outcome.add(linter.lint(onto, subject=name))
    return outcome.merge(lint_scenario_pack(default_pack()))
