"""Batch lint entry points shared by the CLI and the CI corpus job.

Three front doors, all returning :class:`LintOutcome`:

* :func:`lint_query_source` — one saved OASSIS-QL query text (parsed
  *without* semantic validation, so lint can report what ``validate()``
  would have raised, plus everything it would not);
* :func:`lint_questions` — translate each NL question through a shared
  :class:`~repro.core.pipeline.NL2CM` and lint the result (reusing the
  pipeline's own lint report when the translator produced one);
* :func:`lint_pattern_bank` — the IX pattern bank + vocabularies.

A :class:`LintOutcome` aggregates the per-subject reports, knows the
process exit code (nonzero iff any ERROR diagnostic) and serializes the
diagnostic counts for the CI build artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import AnalysisReport, Location, Severity
from repro.analysis.patternlint import PatternLint
from repro.analysis.querylint import QueryLint
from repro.core.ixdetect import load_default_patterns
from repro.core.ixpatterns import IXPattern
from repro.data.vocabularies import VocabularyRegistry, load_vocabularies
from repro.errors import OassisQLSyntaxError, ReproError
from repro.rdf.ontology import Ontology

__all__ = [
    "LintOutcome", "lint_query_source", "lint_questions",
    "lint_pattern_bank",
]


@dataclass
class LintOutcome:
    """Aggregated result of one lint run over one or more subjects."""

    reports: list[AnalysisReport] = field(default_factory=list)

    def add(self, report: AnalysisReport) -> None:
        self.reports.append(report)

    @property
    def errors(self) -> int:
        return sum(len(r.errors) for r in self.reports)

    @property
    def warnings(self) -> int:
        return sum(len(r.warnings) for r in self.reports)

    @property
    def infos(self) -> int:
        return sum(len(r.infos) for r in self.reports)

    @property
    def exit_code(self) -> int:
        """0 when no ERROR-level diagnostic was reported, else 1."""
        return 1 if self.errors else 0

    def counts(self) -> dict:
        """JSON-ready summary (the CI job's build artifact)."""
        by_rule: dict[str, int] = {}
        for report in self.reports:
            for diagnostic in report.diagnostics:
                by_rule[diagnostic.rule] = (
                    by_rule.get(diagnostic.rule, 0) + 1
                )
        return {
            "subjects": len(self.reports),
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "rules": dict(sorted(by_rule.items())),
        }

    def summary(self) -> str:
        return (
            f"{len(self.reports)} subject(s): {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.infos} info(s)"
        )

    def render(self) -> str:
        """All per-subject reports plus the aggregate summary line."""
        blocks = [r.render() for r in self.reports]
        blocks.append(self.summary())
        return "\n\n".join(blocks)


def lint_query_source(
    text: str,
    ontology: Ontology | None = None,
    subject: str = "query",
) -> LintOutcome:
    """Lint one OASSIS-QL query text.

    Syntax errors are reported as a ``syntax-error`` diagnostic rather
    than raised, so a lint run over many files never aborts midway.
    """
    from repro.oassisql.parser import parse_oassisql

    outcome = LintOutcome()
    try:
        query = parse_oassisql(text, validate=False)
    except OassisQLSyntaxError as err:
        report = AnalysisReport(subject=subject)
        report.add(_syntax_diagnostic(err))
        outcome.add(report)
        return outcome
    linter = QueryLint(ontology=ontology)
    outcome.add(linter.lint(query, subject=subject))
    return outcome


def _syntax_diagnostic(err: OassisQLSyntaxError):
    from repro.analysis.diagnostics import Diagnostic

    location = (
        Location("query", line=err.line) if err.line is not None else None
    )
    return Diagnostic(
        rule="syntax-error",
        severity=Severity.ERROR,
        message=str(err),
        location=location,
        hint="fix the OASSIS-QL syntax before linting semantics",
    )


def lint_questions(questions: list[str], nl2cm) -> LintOutcome:
    """Translate and lint each question through a shared translator.

    Questions that fail to translate (unsupported form, composition
    failure) are reported as a ``translation-failed`` ERROR diagnostic;
    a lint sweep over a question file must account for every line.
    """
    from repro.analysis.diagnostics import Diagnostic

    from repro.errors import QueryLintError

    outcome = LintOutcome()
    linter = QueryLint(ontology=nl2cm.ontology)
    for question in questions:
        try:
            result = nl2cm.translate(question)
        except QueryLintError as err:
            # The pipeline's own gate fired: its report IS the finding.
            report = err.report
            report.subject = question
            outcome.add(report)
            continue
        except ReproError as err:
            report = AnalysisReport(subject=question)
            report.add(Diagnostic(
                rule="translation-failed",
                severity=Severity.ERROR,
                message=f"{type(err).__name__}: {err}",
                hint="only translatable questions can be linted",
            ))
            outcome.add(report)
            continue
        if result.lint is not None:
            report = result.lint
            report.subject = question
        else:
            report = linter.lint(result.query, subject=question)
        outcome.add(report)
    return outcome


def lint_pattern_bank(
    patterns: list[IXPattern] | None = None,
    vocabularies: VocabularyRegistry | None = None,
) -> LintOutcome:
    """Lint an IX pattern bank (the packaged defaults if omitted)."""
    if patterns is None:
        patterns = load_default_patterns()
    if vocabularies is None:
        vocabularies = load_vocabularies()
    outcome = LintOutcome()
    linter = PatternLint(vocabularies=vocabularies)
    outcome.add(linter.lint(patterns))
    return outcome
