"""Exception hierarchy for the NL2CM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  The sub-hierarchy mirrors
the system inventory: NLP substrate, RDF substrate, the OASSIS-QL language,
the translation pipeline, and the crowd-mining engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# NLP substrate
# ---------------------------------------------------------------------------

class NLPError(ReproError):
    """Base class for natural-language-processing errors."""


class TokenizationError(NLPError):
    """The input text could not be tokenized."""


class TaggingError(NLPError):
    """Part-of-speech tagging failed."""


class ParsingError(NLPError):
    """Dependency parsing failed to produce a graph."""


class GoldCorpusError(NLPError):
    """A gold POS/dependency annotation file is malformed.

    Raised by :mod:`repro.data.goldnlp` with the offending path and
    line number in the message, so a broken ``gold_nlp.conll`` inside a
    scenario pack surfaces as a typed error rather than a traceback.
    """


# ---------------------------------------------------------------------------
# RDF substrate
# ---------------------------------------------------------------------------

class RDFError(ReproError):
    """Base class for RDF data-model and store errors."""


class TurtleSyntaxError(RDFError):
    """A Turtle document could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class FrozenStoreError(RDFError):
    """A mutation was attempted on a frozen :class:`TripleStore`.

    The embedded ontology snapshots are loaded once per process and
    shared through an ``lru_cache``; freezing them makes accidental
    mutation (which would poison every later caller) a loud, typed
    error instead of silent corruption.  Callers that genuinely need a
    mutable ontology take a :meth:`~repro.rdf.ontology.Ontology.copy`.
    """


class SPARQLSyntaxError(RDFError):
    """A SPARQL query string could not be parsed."""


class SPARQLEvaluationError(RDFError):
    """A SPARQL query failed during evaluation."""


# ---------------------------------------------------------------------------
# OASSIS-QL
# ---------------------------------------------------------------------------

class OassisQLError(ReproError):
    """Base class for OASSIS-QL language errors."""


class OassisQLSyntaxError(OassisQLError):
    """An OASSIS-QL query string could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class OassisQLValidationError(OassisQLError):
    """A structurally well-formed query violates a semantic constraint."""


# ---------------------------------------------------------------------------
# Translation pipeline
# ---------------------------------------------------------------------------

class TranslationError(ReproError):
    """Base class for NL-to-OASSIS-QL translation errors."""


class VerificationError(TranslationError):
    """The input question is of an unsupported form.

    Carries the rephrasing tips the UI shows the user (paper Section 3).
    """

    def __init__(self, message: str, tips: tuple[str, ...] = ()):
        self.tips = tuple(tips)
        super().__init__(message)


class PatternSyntaxError(TranslationError):
    """An IX detection pattern definition could not be parsed."""


class CompositionError(TranslationError):
    """Query composition could not produce a well-formed query."""


class InteractionRequired(TranslationError):
    """Raised when a module needs user input but no provider can supply it."""


class InteractionProtocolError(TranslationError):
    """An interaction provider returned a malformed answer.

    The canonical case: a :class:`~repro.ui.interaction.VerifyIXRequest`
    over N spans answered with a list of the wrong length.  Truncating
    silently would keep unanswered IXs unconfirmed, so the pipeline
    refuses instead.
    """


class InvalidAnswerError(InteractionProtocolError, ValueError):
    """A user's raw console answer could not be parsed for a request.

    Subclasses :class:`ValueError` as well, so callers that treated the
    old bare ``int(raw)`` failures as ``ValueError`` keep working, while
    new callers can catch one typed :class:`ReproError` at the boundary.
    """


class UnexpectedTranslationError(TranslationError):
    """A non-:class:`ReproError` exception escaped the translator.

    The serving layer's last-resort guard: batch workers wrap any
    unexpected exception in this type so a bug in one question marks its
    items errored instead of sinking the whole batch.  Carries the
    original exception as ``cause``.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        self.cause = cause
        super().__init__(message)


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class LintConfigError(ReproError):
    """A lint rule registry was misconfigured (unknown rule id, ...)."""


class QueryLintError(TranslationError):
    """A translated query failed the static-analysis gate.

    Carries the full :class:`~repro.analysis.diagnostics.AnalysisReport`
    so callers can show every diagnostic, not just the first.
    """

    def __init__(self, report):
        self.report = report
        errors = report.errors
        message = f"query lint found {len(errors)} error(s)"
        if errors:
            first = errors[0]
            message += f": [{first.rule}] {first.message}"
        super().__init__(message)


class KBLintError(TranslationError):
    """The knowledge artifacts failed the static-analysis gate.

    Raised at :class:`~repro.core.pipeline.NL2CM` construction when the
    translator was built with ``kb_lint="error"`` and KBLint found
    ERROR-level diagnostics in the ontology, vocabularies or pattern
    bank.  Carries the full
    :class:`~repro.analysis.diagnostics.AnalysisReport`.
    """

    def __init__(self, report):
        self.report = report
        errors = report.errors
        message = f"knowledge-base lint found {len(errors)} error(s)"
        if errors:
            first = errors[0]
            message += f": [{first.rule}] {first.message}"
        super().__init__(message)


class ScenarioPackError(ReproError):
    """A scenario-pack directory could not be loaded (missing or
    malformed ontology, vocabulary, pattern or corpus artifacts)."""


# ---------------------------------------------------------------------------
# Resilience and fault injection
# ---------------------------------------------------------------------------

class ResilienceError(ReproError):
    """Base class for fault-tolerance errors (retries, deadlines, breakers)."""


class DeadlineExceeded(ResilienceError):
    """A pipeline stage (or a whole operation) blew its time budget."""

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        elapsed: float | None = None,
        budget: float | None = None,
    ):
        self.stage = stage
        self.elapsed = elapsed
        self.budget = budget
        super().__init__(message)


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the guarded dependency is not called."""


class ProviderFailure(ResilienceError):
    """A dependency kept failing after every retry (no fallback applied).

    Wraps the last underlying exception (``__cause__``) so a
    non-:class:`ReproError` failure still surfaces as a typed error at
    the API boundary.
    """


class InjectedFault(ReproError):
    """A fault deliberately injected by the deterministic fault harness."""


# ---------------------------------------------------------------------------
# Process-level serving tier
# ---------------------------------------------------------------------------

class ServingError(ReproError):
    """Base class for the multi-process serving tier's errors."""


class FrameProtocolError(ServingError):
    """A worker-channel frame violated the length-prefixed JSON protocol.

    Raised for an oversized length prefix, a payload that is not a JSON
    object, or a reply whose correlation id runs *ahead* of the request
    counter (replies may lag — a timed-out request's answer is drained
    and discarded — but never lead).
    """


class ChannelClosedError(ServingError):
    """The peer closed the worker channel mid-conversation.

    On the dispatcher side this is the crash signal: the worker process
    died (or exited) with requests outstanding, and the shard manager
    reacts by restarting the worker and retrying the in-flight request
    once.
    """


class AdmissionRejected(ServingError):
    """The front-end shed this request instead of queueing it.

    Carries the shard, the shedding ``reason`` (``"queue_full"`` when
    the shard's bounded pending queue is at capacity, ``"breaker_open"``
    when the shard's dispatch circuit breaker is open) and the
    ``retry_after`` hint in seconds that the HTTP layer surfaces as a
    ``Retry-After`` header on the 429 response.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        reason: str = "queue_full",
        retry_after: float = 1.0,
    ):
        self.shard = shard
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)


class ShardTimeoutError(ServingError):
    """A worker did not answer a request within its deadline.

    The worker is *not* assumed dead (slow is not crashed): the reply,
    when it eventually arrives, is drained and discarded by correlation
    id, and the shard's circuit breaker records the failure.  Carries
    the shard and the budget that expired.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        budget: float | None = None,
    ):
        self.shard = shard
        self.budget = budget
        super().__init__(message)


class WorkerCrashedError(ServingError):
    """A shard's worker process died and the one restart-retry failed.

    The request could not be served; the shard manager has already
    restarted the worker (or is doing so), so later requests to the
    same keyspace are expected to succeed.
    """

    def __init__(self, message: str, *, shard: int | None = None):
        self.shard = shard
        super().__init__(message)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class MetricsError(ReproError):
    """A metrics registry was misused (bad name, label or re-registration)."""


# ---------------------------------------------------------------------------
# Crowd mining engine
# ---------------------------------------------------------------------------

class CrowdError(ReproError):
    """Base class for crowd-simulation and OASSIS-engine errors."""


class BudgetExhausted(CrowdError):
    """The crowd-task budget ran out before mining converged."""

    def __init__(self, message: str, tasks_used: int):
        self.tasks_used = tasks_used
        super().__init__(message)


class EngineError(CrowdError):
    """The OASSIS query engine failed to evaluate a query."""
