"""Exception hierarchy for the NL2CM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  The sub-hierarchy mirrors
the system inventory: NLP substrate, RDF substrate, the OASSIS-QL language,
the translation pipeline, and the crowd-mining engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# NLP substrate
# ---------------------------------------------------------------------------

class NLPError(ReproError):
    """Base class for natural-language-processing errors."""


class TokenizationError(NLPError):
    """The input text could not be tokenized."""


class TaggingError(NLPError):
    """Part-of-speech tagging failed."""


class ParsingError(NLPError):
    """Dependency parsing failed to produce a graph."""


# ---------------------------------------------------------------------------
# RDF substrate
# ---------------------------------------------------------------------------

class RDFError(ReproError):
    """Base class for RDF data-model and store errors."""


class TurtleSyntaxError(RDFError):
    """A Turtle document could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SPARQLSyntaxError(RDFError):
    """A SPARQL query string could not be parsed."""


class SPARQLEvaluationError(RDFError):
    """A SPARQL query failed during evaluation."""


# ---------------------------------------------------------------------------
# OASSIS-QL
# ---------------------------------------------------------------------------

class OassisQLError(ReproError):
    """Base class for OASSIS-QL language errors."""


class OassisQLSyntaxError(OassisQLError):
    """An OASSIS-QL query string could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class OassisQLValidationError(OassisQLError):
    """A structurally well-formed query violates a semantic constraint."""


# ---------------------------------------------------------------------------
# Translation pipeline
# ---------------------------------------------------------------------------

class TranslationError(ReproError):
    """Base class for NL-to-OASSIS-QL translation errors."""


class VerificationError(TranslationError):
    """The input question is of an unsupported form.

    Carries the rephrasing tips the UI shows the user (paper Section 3).
    """

    def __init__(self, message: str, tips: tuple[str, ...] = ()):
        self.tips = tuple(tips)
        super().__init__(message)


class PatternSyntaxError(TranslationError):
    """An IX detection pattern definition could not be parsed."""


class CompositionError(TranslationError):
    """Query composition could not produce a well-formed query."""


class InteractionRequired(TranslationError):
    """Raised when a module needs user input but no provider can supply it."""


class InteractionProtocolError(TranslationError):
    """An interaction provider returned a malformed answer.

    The canonical case: a :class:`~repro.ui.interaction.VerifyIXRequest`
    over N spans answered with a list of the wrong length.  Truncating
    silently would keep unanswered IXs unconfirmed, so the pipeline
    refuses instead.
    """


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

class LintConfigError(ReproError):
    """A lint rule registry was misconfigured (unknown rule id, ...)."""


class QueryLintError(TranslationError):
    """A translated query failed the static-analysis gate.

    Carries the full :class:`~repro.analysis.diagnostics.AnalysisReport`
    so callers can show every diagnostic, not just the first.
    """

    def __init__(self, report):
        self.report = report
        errors = report.errors
        message = f"query lint found {len(errors)} error(s)"
        if errors:
            first = errors[0]
            message += f": [{first.rule}] {first.message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class MetricsError(ReproError):
    """A metrics registry was misused (bad name, label or re-registration)."""


# ---------------------------------------------------------------------------
# Crowd mining engine
# ---------------------------------------------------------------------------

class CrowdError(ReproError):
    """Base class for crowd-simulation and OASSIS-engine errors."""


class BudgetExhausted(CrowdError):
    """The crowd-task budget ran out before mining converged."""

    def __init__(self, message: str, tasks_used: int):
        self.tasks_used = tasks_used
        super().__init__(message)


class EngineError(CrowdError):
    """The OASSIS query engine failed to evaluate a query."""
