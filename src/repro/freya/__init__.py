"""FREyA-like general query generator (paper Sections 2.4 and 3).

NL2CM embeds an off-the-shelf NL-to-SPARQL tool — FREyA (Damljanovic et
al.) — as a black box that translates the *general* parts of the request
into SPARQL triples, interacting with the user to resolve ambiguous
terms and learning from that feedback.  This package is our from-scratch
implementation of that black box: ontology-lookup-based entity linking,
candidate ranking, clarification dialogues and a feedback store.
"""

from repro.freya.generator import (
    FeedbackStore,
    GeneralQueryGenerator,
    GeneralQueryResult,
    Mention,
)

__all__ = [
    "FeedbackStore",
    "GeneralQueryGenerator",
    "GeneralQueryResult",
    "Mention",
]
