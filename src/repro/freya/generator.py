"""The general query generator: dependency graph -> SPARQL proto-triples.

The algorithm follows FREyA's published design, adapted to our substrate:

1. **Mention detection** — noun phrases become potential ontology
   concepts: proper-noun groups (with their ``nn``/``appos`` satellites)
   are entity mentions; common nouns (with compounds and adjectival
   modifiers) are class-or-entity mentions.
2. **Entity linking** — each mention is looked up in the ontology's
   label index; the feedback store boosts candidates the user chose in
   earlier sessions.
3. **Clarification dialogues** — when several candidates tie (the
   "Buffalo, NY vs. Buffalo, IL" case), the user is asked; the choice
   is recorded as feedback.
4. **Triple generation** — class mentions yield ``$x instanceOf C``
   triples; prepositions and ontology-property verbs between mentions
   yield relation triples.  The wh-target of the question becomes the
   query's output variable.

The generator is *IX-blind*: per the paper (Section 3), it processes the
full request, and the Query Composition module later deletes general
triples that overlap detected IXs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.ir import NodeTerm, ProtoTriple
from repro.nlp.depparse import TEMPORAL_NOUNS
from repro.nlp.graph import DepGraph, DepNode
from repro.rdf.ontology import KB, EntityMatch, Ontology, normalize_label
from repro.rdf.terms import IRI
from repro.ui.interaction import DisambiguationRequest, InteractionProvider

__all__ = ["Mention", "FeedbackStore", "GeneralQueryResult",
           "GeneralQueryGenerator"]

# Candidates within this score band of the leader trigger clarification.
_AMBIGUITY_BAND = 0.10
# Minimum score for a candidate to be considered at all.
_MIN_SCORE = 0.45
# Feedback boost for a previously chosen entity.
_FEEDBACK_BOOST = 0.15

# Nouns that defer their meaning to a "of"-complement: "what type of
# camera" asks about cameras, not about types.
_TYPE_NOUNS = {"type", "kind", "sort", "variety", "brand", "model"}

# wh-adverbs and the class their implicit answer belongs to.
_WH_CLASSES = {"where": "Place", "when": "Season"}


@dataclass(frozen=True)
class Mention:
    """A text span aligned (or alignable) with an ontology concept."""

    head: DepNode
    span: tuple[DepNode, ...]
    phrase: str
    kind: str  # "proper" or "common"

    @property
    def index(self) -> int:
        return self.head.index


@dataclass
class FeedbackStore:
    """Remembers the user's disambiguation choices across sessions.

    FREyA "records the response of the user ... to improve the ranking
    of optional entities in subsequent user interactions".  The store
    maps normalized phrases to the chosen IRI; matching candidates get
    a score boost on later lookups.

    The store is the one piece of pipeline state mutated *during* a
    translation, and a single store is shared by every translation of an
    :class:`~repro.core.pipeline.NL2CM` instance — so reads and writes
    are serialized under a lock, making a shared translator safe for the
    concurrent batch service.
    """

    choices: dict[str, IRI] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def record(self, phrase: str, iri: IRI) -> None:
        with self._lock:
            self.choices[normalize_label(phrase)] = iri

    def boost(self, phrase: str, matches: list[EntityMatch]
              ) -> list[EntityMatch]:
        """Re-rank ``matches``, boosting the remembered choice."""
        with self._lock:
            chosen = self.choices.get(normalize_label(phrase))
        if chosen is None:
            return matches
        boosted = [
            EntityMatch(m.iri, m.label,
                        min(1.0, m.score + _FEEDBACK_BOOST)
                        if m.iri == chosen else m.score,
                        m.kind)
            for m in matches
        ]
        return sorted(boosted, key=lambda m: (-m.score, m.label))

    def snapshot(self) -> dict[str, IRI]:
        """A consistent copy of the recorded choices."""
        with self._lock:
            return dict(self.choices)


@dataclass
class GeneralQueryResult:
    """Everything the composer needs from the general generator."""

    triples: list[ProtoTriple]
    entity_bindings: dict[int, IRI]
    class_bindings: dict[int, IRI]
    coreferences: dict[int, int]
    target: DepNode | None
    mentions: list[Mention]
    disambiguations: list[tuple[str, IRI]]

    def resolve_index(self, index: int) -> int:
        """Follow coreference links to the canonical node index."""
        seen = set()
        while index in self.coreferences and index not in seen:
            seen.add(index)
            index = self.coreferences[index]
        return index


class GeneralQueryGenerator:
    """Ontology-lookup-based NL-to-SPARQL generator (FREyA stand-in)."""

    def __init__(self, ontology: Ontology,
                 feedback: FeedbackStore | None = None):
        self.ontology = ontology
        self.feedback = feedback or FeedbackStore()

    # -- public API --------------------------------------------------------------

    def generate(
        self,
        graph: DepGraph,
        interaction: InteractionProvider,
    ) -> GeneralQueryResult:
        """Translate the general parts of ``graph`` into proto-triples."""
        result = GeneralQueryResult(
            triples=[], entity_bindings={}, class_bindings={},
            coreferences={}, target=None, mentions=[],
            disambiguations=[],
        )
        mentions = self._detect_mentions(graph)
        result.mentions = mentions

        result.target = self._find_target(graph)
        self._apply_type_noun_idiom(graph, result)

        for mention in mentions:
            self._link_mention(graph, mention, result, interaction)

        self._wh_adverb_classes(graph, result)
        self._relation_triples(graph, result)
        self._order_triples(result)
        return result

    # -- mention detection ----------------------------------------------------------

    def _detect_mentions(self, graph: DepGraph) -> list[Mention]:
        mentions: list[Mention] = []
        consumed: set[int] = set()

        for node in graph.nodes():
            if node.index in consumed or not node.is_noun:
                continue
            if node.tag in ("PRP", "WP"):
                continue
            # Skip nouns that are satellites of a later head.
            parent_edge = graph.parent_edge(node)
            if parent_edge is not None and parent_edge.label in (
                "nn", "appos"
            ):
                continue
            span = self._mention_span(graph, node)
            consumed |= {n.index for n in span}
            phrase = graph.text_span(list(span))
            kind = "proper" if any(n.is_proper_noun for n in span) else (
                "common"
            )
            mentions.append(
                Mention(head=node, span=tuple(span), phrase=phrase,
                        kind=kind)
            )
        return mentions

    def _mention_span(self, graph: DepGraph, head: DepNode) -> list[DepNode]:
        """The mention's tokens: compounds, appositions, adjectives."""
        span = [head]
        for child in graph.children(head, "nn"):
            span.append(child)
        for child in graph.children(head, "appos"):
            span.append(child)
            span.extend(graph.children(child, "nn"))
        # Adjectival modifiers join common-noun spans ("digital camera",
        # "thrill ride") but opinion adjectives are filtered later by
        # lookup failure ("interesting places" falls back to "places").
        for child in graph.children(head, "amod"):
            span.append(child)
        return sorted(span, key=lambda n: n.index)

    # -- target detection ----------------------------------------------------------

    def _find_target(self, graph: DepGraph) -> DepNode | None:
        head = graph.head
        if head is None:
            return None
        # Copular wh-question: root is the predicate NP with attr wh.
        if graph.children(head, "attr") and head.is_noun:
            return head
        # wh-determiner: "Which hotel ...".
        for node in graph.nodes():
            if node.tag in ("WDT",):
                parent = graph.parent(node)
                if parent is not None and (
                    graph.label_between(parent, node) == "det"
                ):
                    return parent
        # Fronted wh object under inversion: dobj that precedes the verb.
        if head.is_verb:
            for obj in graph.children(head, "dobj"):
                if obj.index < head.index and obj.is_noun:
                    return obj
            # wh adverb: "Where do you ...".
            for adv in graph.children(head, "advmod"):
                if adv.tag == "WRB" and adv.lower in _WH_CLASSES:
                    return adv
            # Imperative: "Recommend a hotel ..." — the object.
            for obj in graph.children(head, "dobj"):
                if obj.is_noun:
                    return obj
        if head.is_noun:
            return head
        return None

    def _apply_type_noun_idiom(
        self, graph: DepGraph, result: GeneralQueryResult
    ) -> None:
        """"What type of camera" — retarget from "type" to "camera".

        The two nodes co-refer: the habit triple about "type" must use
        the same variable as the class triple about "camera".
        """
        target = result.target
        if target is None or target.lemma not in _TYPE_NOUNS:
            return
        for prep in graph.children(target, "prep"):
            if prep.lemma != "of":
                continue
            for pobj in graph.children(prep, "pobj"):
                if pobj.is_noun:
                    result.coreferences[target.index] = pobj.index
                    result.target = pobj
                    return

    # -- entity linking ---------------------------------------------------------------

    def _link_mention(
        self,
        graph: DepGraph,
        mention: Mention,
        result: GeneralQueryResult,
        interaction: InteractionProvider,
    ) -> None:
        kinds = ("entity",) if mention.kind == "proper" else (
            "class", "entity"
        )
        matches, matched_nodes = self._ranked_candidates(mention, kinds)
        if not matches:
            return

        top = matches[0]
        contenders = [
            m for m in matches
            if m.score > top.score - _AMBIGUITY_BAND and m.score >= 0.8
        ]
        if len(contenders) > 1 and len({m.iri for m in contenders}) > 1:
            choice = interaction.ask(DisambiguationRequest(
                phrase=mention.phrase,
                candidates=tuple(contenders),
                sentence=graph.sentence,
            ))
            top = contenders[int(choice)]
            self.feedback.record(mention.phrase, top.iri)
            result.disambiguations.append((mention.phrase, top.iri))

        if top.kind == "class":
            result.class_bindings[mention.index] = top.iri
            aligned = self._aligned_nodes(matched_nodes, mention.head, top)
            result.triples.append(ProtoTriple(
                s=NodeTerm(mention.head),
                p=KB.instanceOf,
                o=top.iri,
                origin="general",
                source_nodes=frozenset(n.index for n in aligned),
            ))
        else:
            result.entity_bindings[mention.index] = top.iri

    @staticmethod
    def _aligned_nodes(
        span: tuple[DepNode, ...], head: DepNode, match: EntityMatch
    ) -> tuple[DepNode, ...]:
        """The span tokens that actually aligned with the matched label.

        A triple's source must not include words that merely sat inside
        the mention span ("best" in "best thrill ride") — otherwise
        composition would delete the class triple for overlapping an
        IX it never used.
        """
        label_tokens = set(
            normalize_label(match.label).replace(",", " ").split()
        )
        aligned = tuple(
            n for n in span
            if n.lower in label_tokens or n.lemma in label_tokens
            or normalize_label(n.text) in label_tokens
        )
        return aligned or (head,)

    def _ranked_candidates(
        self, mention: Mention, kinds: tuple[str, ...]
    ) -> tuple[list[EntityMatch], tuple[DepNode, ...]]:
        """Candidates for the mention, plus the nodes that matched.

        The full span is tried first; on failure, the bare head.  The
        returned nodes become the triple's source — so a triple whose
        match never used an (IX) adjective is not deleted for
        overlapping it.
        """
        lemma_phrase = " ".join(n.lemma for n in mention.span)
        attempts: list[tuple[str, tuple[DepNode, ...]]] = [
            (mention.phrase, mention.span),
        ]
        if lemma_phrase.lower() != mention.phrase.lower():
            attempts.append((lemma_phrase, mention.span))
        if len(mention.span) > 1:
            attempts.append((mention.head.text, (mention.head,)))
            attempts.append((mention.head.lemma, (mention.head,)))
        elif mention.head.lemma != mention.head.lower:
            attempts.append((mention.head.lemma, (mention.head,)))

        for phrase, matched_nodes in attempts:
            matches = [
                m for m in self.ontology.lookup(phrase, kinds)
                if m.score >= _MIN_SCORE
            ]
            if matches:
                return (
                    self.feedback.boost(mention.phrase, matches),
                    matched_nodes,
                )
        return [], mention.span

    def _wh_adverb_classes(
        self, graph: DepGraph, result: GeneralQueryResult
    ) -> None:
        """"Where ..." asks for a Place; "When ..." for a Season."""
        for node in graph.nodes():
            if node.tag == "WRB" and node.lower in _WH_CLASSES:
                class_iri = KB[_WH_CLASSES[node.lower]]
                result.class_bindings[node.index] = class_iri
                result.triples.append(ProtoTriple(
                    s=NodeTerm(node),
                    p=KB.instanceOf,
                    o=class_iri,
                    origin="general",
                    source_nodes=frozenset({node.index}),
                ))

    # -- relation triples ----------------------------------------------------------------

    def _relation_triples(
        self, graph: DepGraph, result: GeneralQueryResult
    ) -> None:
        linked = set(result.entity_bindings) | set(result.class_bindings)

        def is_concept(node: DepNode) -> bool:
            return result.resolve_index(node.index) in linked or (
                node.index in linked
            )

        for edge in graph.edges():
            if edge.label != "prep":
                continue
            prep = edge.dependent
            head = edge.head
            for pobj in graph.children(prep, "pobj"):
                if not is_concept(pobj):
                    continue
                if pobj.lemma in TEMPORAL_NOUNS:
                    # Temporal context belongs to the individual parts
                    # (Figure 1: "[] in Fall" is mined, not selected).
                    continue
                anchor = head
                if anchor.is_noun and anchor.lemma in TEMPORAL_NOUNS:
                    # "eat for lunch in Paris": the PP constrains the
                    # habit's target, never the temporal noun.
                    parent = graph.parent(anchor)
                    while parent is not None and not (
                        parent.is_verb or parent.is_root
                    ):
                        parent = graph.parent(parent)
                    if parent is None or parent.is_root:
                        continue
                    anchor = parent
                if not is_concept(anchor) and anchor.is_noun:
                    # The PP hangs off a non-concept noun ("celebrate my
                    # birthday in Paris"): climb to the governing verb.
                    parent = graph.parent(anchor)
                    if parent is not None and parent.is_verb:
                        anchor = parent
                if not is_concept(anchor) and anchor.is_verb:
                    # A locative PP on the verb constrains the asked-for
                    # entity: "Where do you visit in Buffalo?" selects
                    # places located in Buffalo.
                    anchor = self._verb_pp_anchor(graph, anchor, result)
                if anchor is None or not is_concept(anchor):
                    continue
                prop = self._property_for(prep, pobj, result)
                if prop is None:
                    continue
                result.triples.append(ProtoTriple(
                    s=self._term_for(anchor, result),
                    p=prop,
                    o=self._term_for(pobj, result),
                    origin="general",
                    source_nodes=frozenset(
                        {anchor.index, prep.index, pobj.index}
                    ),
                ))

        # Hyphenated nutrient compounds: "fiber-rich dishes" selects
        # dishes rich in fiber (the dietician scenario of the intro).
        for node in graph.nodes():
            if "-rich" not in node.lower and "-high" not in node.lower:
                continue
            parent_edge = graph.parent_edge(node)
            if parent_edge is None or parent_edge.label not in ("nn",
                                                                "amod"):
                continue
            head = parent_edge.head
            if not is_concept(head):
                continue
            nutrient = node.lower.rsplit("-", 1)[0]
            match = self.ontology.best_match(
                nutrient, kinds=("entity",), threshold=0.8
            )
            if match is None:
                continue
            result.triples.append(ProtoTriple(
                s=self._term_for(head, result),
                p=KB.richIn,
                o=match.iri,
                origin="general",
                source_nodes=frozenset({node.index, head.index}),
            ))

        # Ontology-property verbs: "Which hotel has the best ride?"
        for node in graph.nodes():
            if not node.is_verb or node.tag == "MD":
                continue
            subjects = [s for s in graph.children(node, "nsubj")
                        if is_concept(s)]
            objects = [o for o in graph.children(node, "dobj")
                       if is_concept(o)]
            if not subjects or not objects:
                continue
            matches = self._property_matches(node)
            if not matches:
                continue
            result.triples.append(ProtoTriple(
                s=self._term_for(subjects[0], result),
                p=matches[0].iri,
                o=self._term_for(objects[0], result),
                origin="general",
                source_nodes=frozenset(
                    {node.index, subjects[0].index, objects[0].index}
                ),
            ))

    def _verb_pp_anchor(
        self, graph: DepGraph, verb: DepNode, result: GeneralQueryResult
    ) -> DepNode | None:
        """The concept a verb-attached PP really constrains."""
        for adv in graph.children(verb, "advmod"):
            if adv.tag == "WRB" and adv.lower in _WH_CLASSES:
                return adv
        for obj in graph.children(verb, "dobj"):
            if obj.is_noun:
                return obj
        # Relative clause: "places we should see in Paris" — the PP
        # constrains the antecedent.
        parent_edge = graph.parent_edge(verb)
        if parent_edge is not None and parent_edge.label == "rcmod":
            return parent_edge.head
        return None

    def _property_matches(self, node: DepNode) -> list[EntityMatch]:
        """Property candidates for a word, by surface form then lemma."""
        for phrase in (node.lower, node.lemma):
            matches = self.ontology.lookup(phrase, kinds=("property",))
            matches = [m for m in matches if m.score >= 0.8]
            if matches:
                return matches
        return []

    def _property_for(
        self, prep: DepNode, pobj: DepNode, result: GeneralQueryResult
    ) -> IRI | None:
        """Map a preposition to an ontology property."""
        entity = result.entity_bindings.get(
            result.resolve_index(pobj.index),
            result.entity_bindings.get(pobj.index),
        )
        # "in"/"at" before a city or place entity means location.
        if prep.lemma in ("in", "at", "inside", "within") and entity is not None:
            types = self.ontology.types_of(entity)
            if KB.City in types or KB.Place in types:
                return KB.locatedIn
        matches = self._property_matches(prep)
        return matches[0].iri if matches else None

    def _term_for(self, node: DepNode, result: GeneralQueryResult):
        index = result.resolve_index(node.index)
        entity = result.entity_bindings.get(index)
        if entity is not None:
            return entity
        return NodeTerm(node)

    @staticmethod
    def _order_triples(result: GeneralQueryResult) -> None:
        """instanceOf triples first, then relations (Figure 1's order)."""
        result.triples.sort(
            key=lambda t: (0 if t.p == KB.instanceOf else 1,
                           min(t.source_nodes, default=0)),
        )
