"""Cost-based BGP query planner: statistics-driven join ordering,
shape-keyed plan caching, and compiled step execution.

The seed evaluator (:func:`repro.rdf.sparql.evaluate_bgp`) is greedy
and forgetful: it re-scores selectivity with ``store.count()`` at every
recursion node and throws the memo away when the call returns.  This
module makes planning a first-class, persistent activity:

* **Cost model** — join order is chosen *once per query shape* from the
  store's incremental cardinality statistics
  (:meth:`~repro.rdf.store.TripleStore.estimate`) with bound-variable
  propagation: after a pattern is placed, its variables count as bound
  when estimating the rest.  No per-binding re-scoring, no ``count()``
  index sums.
* **Shape-keyed plan cache** — plans are cached under the query's
  *shape*: variables canonicalized to first-occurrence indexes and
  subject/object constants abstracted to their stat class (a generic
  bound-constant marker — the estimate depends only on the co-occurring
  predicate, so any constant in that position reuses the plan).
  Predicates keep their identity because statistics are per-predicate.
  The cache is a bounded LRU with hit/miss/invalidation counters;
  entries are invalidated by the store's mutation :attr:`epoch`.
* **Compiled execution** — each plan step is compiled to a specialized
  closure that knows which index to probe, which positions to bind,
  and which filters to run, replacing the interpretive
  ``isinstance``-dispatch inner loop.  Execution is an explicit-stack
  generator, so solutions **stream**: ``LIMIT``-style consumers stop
  the join early instead of materializing every solution.

Filters are attached to the earliest step at which all their variables
are bound (matching the seed's push-down); filters that mention a
variable no pattern ever binds are never evaluated — also the seed's
behavior.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.rdf.sparql import FilterExpr, Solution, TriplePattern
from repro.rdf.store import TripleStore
from repro.rdf.terms import Term, Variable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Plan", "PlanExplain", "PlannerStats", "QueryPlanner", "StepExplain",
    "default_planner", "query_shape",
]

#: Position states inside a compiled plan step: ``C`` constant, ``B``
#: variable bound by an earlier step (or the initial bindings), ``N``
#: new variable first bound here, ``D`` duplicate of a variable that
#: another position of the *same* pattern binds.
_CONST, _BOUND, _NEW, _DUP = "C", "B", "N", "D"


def query_shape(
    patterns: Iterable[TriplePattern],
    filters: Iterable[FilterExpr] = (),
    initial_vars: Iterable[str] = (),
) -> tuple:
    """The canonical shape of a BGP: the plan-cache key.

    Variables are renamed to first-occurrence indexes, subject/object
    constants are abstracted to a single bound-constant stat class, and
    predicates stay concrete (the cost model is per-predicate).  Two
    queries with the same shape get the same join order, so they share
    one cached plan.  Filters contribute only their (canonicalized)
    variable sets — which is all that affects scheduling — and the
    initially-bound variables contribute theirs.
    """
    var_ids: dict[str, int] = {}

    def vid(name: str) -> int:
        got = var_ids.get(name)
        if got is None:
            got = var_ids[name] = len(var_ids)
        return got

    shaped = []
    for pat in patterns:
        row = []
        for position, term in enumerate((pat.s, pat.p, pat.o)):
            if isinstance(term, Variable):
                row.append(("v", vid(term.name)))
            elif position == 1:
                row.append(("p", term))
            else:
                row.append(("c",))
        shaped.append(tuple(row))
    shaped_filters = tuple(
        tuple(sorted(vid(name) for name in sorted(f.variables())))
        for f in filters
    )
    shaped_initial = tuple(
        sorted(var_ids[name] for name in initial_vars if name in var_ids)
    )
    return (tuple(shaped), shaped_filters, shaped_initial)


@dataclass(frozen=True)
class Plan:
    """A shape-level plan: join order, position states, filter points.

    The plan never references concrete constants or variable names —
    those come from the actual patterns at bind time — which is what
    lets one cached plan serve every query of its shape.
    """

    shape: tuple
    order: tuple[int, ...]
    states: tuple[str, ...]
    step_filters: tuple[tuple[int, ...], ...]
    pre_filters: tuple[int, ...]
    estimates: tuple[float, ...]


@dataclass(frozen=True)
class PlannerStats:
    """Plan-cache counter snapshot."""

    hits: int
    misses: int
    invalidations: int
    compiled: int
    cache_size: int
    cache_capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidations

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class StepExplain:
    """One plan step's estimate vs. measured reality."""

    pattern: str
    states: str
    estimated: float
    input_rows: int = 0
    output_rows: int = 0


@dataclass
class PlanExplain:
    """What ``--explain`` shows: order, estimates, actuals, cache fate."""

    cache: str
    order: tuple[int, ...]
    steps: list[StepExplain]
    rows: int

    def render(self) -> str:
        lines = ["== query plan =="]
        lines.append(f"plan cache: {self.cache}")
        lines.append(
            "join order: "
            + (" -> ".join(f"p{i}" for i in self.order) or "(empty)")
        )
        if self.steps:
            headers = ["step", "pattern", "states", "est", "in", "out"]
            rows = [
                [str(n + 1), s.pattern, s.states, f"{s.estimated:.1f}",
                 str(s.input_rows), str(s.output_rows)]
                for n, s in enumerate(self.steps)
            ]
            widths = [
                max(len(headers[i]), *(len(r[i]) for r in rows))
                for i in range(len(headers))
            ]

            def line(cells: list[str]) -> str:
                return "  ".join(
                    c.ljust(w) for c, w in zip(cells, widths)
                )

            lines.append(line(headers))
            lines.append(line(["-" * w for w in widths]))
            lines.extend(line(r) for r in rows)
        lines.append(f"rows: {self.rows}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Planning: cost-based join ordering over the store statistics
# ---------------------------------------------------------------------------

def _estimate(store: TripleStore, pat: TriplePattern,
              bound: set[str]) -> float:
    """Estimated match count of ``pat`` given already-bound variables."""
    s_b = not isinstance(pat.s, Variable) or pat.s.name in bound
    o_b = not isinstance(pat.o, Variable) or pat.o.name in bound
    if isinstance(pat.p, Variable):
        est = store.estimate(s_b, None, o_b)
        if pat.p.name in bound:
            # A bound variable predicate is *one* predicate out of all.
            est /= max(1, store.predicate_count())
        return est
    return store.estimate(s_b, pat.p, o_b)


def _position_states(pat: TriplePattern, bound: set[str]) -> str:
    """Per-position states of a pattern placed with ``bound`` vars."""
    states = []
    new_here: dict[str, int] = {}
    for term in (pat.s, pat.p, pat.o):
        if not isinstance(term, Variable):
            states.append(_CONST)
        elif term.name in bound:
            states.append(_BOUND)
        elif term.name in new_here:
            states.append(_DUP)
        else:
            new_here[term.name] = 1
            states.append(_NEW)
    return "".join(states)


def _build_plan(
    store: TripleStore,
    patterns: list[TriplePattern],
    filters: list[FilterExpr],
    initial_vars: frozenset[str],
    shape: tuple,
) -> Plan:
    bound = set(initial_vars)
    remaining = list(range(len(patterns)))
    order: list[int] = []
    states: list[str] = []
    estimates: list[float] = []
    while remaining:
        best_i = remaining[0]
        best_est = _estimate(store, patterns[best_i], bound)
        for i in remaining[1:]:
            est = _estimate(store, patterns[i], bound)
            if est < best_est:
                best_i, best_est = i, est
        remaining.remove(best_i)
        order.append(best_i)
        estimates.append(best_est)
        states.append(_position_states(patterns[best_i], bound))
        bound |= patterns[best_i].variables()

    # Filter attachment: the earliest step after which every variable
    # of the filter is bound.  Index -1 means "before the first step"
    # (constant filters, or filters over initially-bound variables);
    # filters whose variables are never all bound are dropped — the
    # seed evaluator never runs those either.
    bound_after: list[set[str]] = []
    acc = set(initial_vars)
    for i in order:
        acc = acc | patterns[i].variables()
        bound_after.append(set(acc))
    pre: list[int] = []
    per_step: list[list[int]] = [[] for _ in order]
    for f_idx, f in enumerate(filters):
        f_vars = f.variables()
        if f_vars <= initial_vars:
            pre.append(f_idx)
            continue
        for step, have in enumerate(bound_after):
            if f_vars <= have:
                per_step[step].append(f_idx)
                break
    return Plan(
        shape=shape,
        order=tuple(order),
        states=tuple(states),
        step_filters=tuple(tuple(fs) for fs in per_step),
        pre_filters=tuple(pre),
        estimates=tuple(estimates),
    )


# ---------------------------------------------------------------------------
# Compilation: one specialized closure per plan step
# ---------------------------------------------------------------------------

#: A compiled step: solution -> iterator of extended solutions.
StepFn = Callable[[Solution], Iterator[Solution]]


def _compile_step(
    store: TripleStore,
    pattern: TriplePattern,
    states: str,
    filters: tuple[FilterExpr, ...],
) -> StepFn:
    """Compile one plan step against concrete pattern terms.

    The closure captures the store index to probe and the concrete
    constants; ``B`` positions resolve from the solution at call time.
    The common shapes get specialized closures that walk one index row
    directly; patterns with duplicate variables or an open predicate
    next to open subject *and* object fall back to a generic probe.
    """
    spo, pos, osp = store._spo, store._pos, store._osp
    s_t, p_t, o_t = pattern.s, pattern.p, pattern.o
    s_st, p_st, o_st = states

    def known(term: Term, state: str):
        """(constant, name): exactly one is set for a known position."""
        if state == _CONST:
            return term, None
        return None, term.name  # _BOUND

    def check(solution: Solution) -> bool:
        for f in filters:
            if not f.evaluate(solution):
                return False
        return True

    knowns = (
        s_st in (_CONST, _BOUND),
        p_st in (_CONST, _BOUND),
        o_st in (_CONST, _BOUND),
    )
    if _DUP not in states:
        if knowns == (True, True, False):
            s_c, s_n = known(s_t, s_st)
            p_c, p_n = known(p_t, p_st)
            o_name = o_t.name

            def step(solution: Solution) -> Iterator[Solution]:
                row = spo.get(
                    s_c if s_c is not None else solution[s_n]
                )
                if row:
                    for o in row.get(
                        p_c if p_c is not None else solution[p_n], ()
                    ):
                        new = dict(solution)
                        new[o_name] = o
                        if check(new):
                            yield new

            return step
        if knowns == (False, True, True):
            p_c, p_n = known(p_t, p_st)
            o_c, o_n = known(o_t, o_st)
            s_name = s_t.name

            def step(solution: Solution) -> Iterator[Solution]:
                row = pos.get(
                    p_c if p_c is not None else solution[p_n]
                )
                if row:
                    for s in row.get(
                        o_c if o_c is not None else solution[o_n], ()
                    ):
                        new = dict(solution)
                        new[s_name] = s
                        if check(new):
                            yield new

            return step
        if knowns == (True, False, True):
            s_c, s_n = known(s_t, s_st)
            o_c, o_n = known(o_t, o_st)
            p_name = p_t.name

            def step(solution: Solution) -> Iterator[Solution]:
                row = osp.get(
                    o_c if o_c is not None else solution[o_n]
                )
                if row:
                    for p in row.get(
                        s_c if s_c is not None else solution[s_n], ()
                    ):
                        new = dict(solution)
                        new[p_name] = p
                        if check(new):
                            yield new

            return step
        if knowns == (True, True, True):
            s_c, s_n = known(s_t, s_st)
            p_c, p_n = known(p_t, p_st)
            o_c, o_n = known(o_t, o_st)

            def step(solution: Solution) -> Iterator[Solution]:
                row = spo.get(
                    s_c if s_c is not None else solution[s_n]
                )
                if row is not None:
                    o = o_c if o_c is not None else solution[o_n]
                    p = p_c if p_c is not None else solution[p_n]
                    if o in row.get(p, ()) and check(solution):
                        yield solution

            return step
        if knowns == (False, True, False):
            p_c, p_n = known(p_t, p_st)
            s_name, o_name = s_t.name, o_t.name

            def step(solution: Solution) -> Iterator[Solution]:
                row = pos.get(
                    p_c if p_c is not None else solution[p_n]
                )
                if row:
                    for o, subjects in row.items():
                        for s in subjects:
                            new = dict(solution)
                            new[s_name] = s
                            new[o_name] = o
                            if check(new):
                                yield new

            return step
        if knowns == (True, False, False):
            s_c, s_n = known(s_t, s_st)
            p_name, o_name = p_t.name, o_t.name

            def step(solution: Solution) -> Iterator[Solution]:
                row = spo.get(
                    s_c if s_c is not None else solution[s_n]
                )
                if row:
                    for p, objs in row.items():
                        for o in objs:
                            new = dict(solution)
                            new[p_name] = p
                            new[o_name] = o
                            if check(new):
                                yield new

            return step
        if knowns == (False, False, True):
            o_c, o_n = known(o_t, o_st)
            s_name, p_name = s_t.name, p_t.name

            def step(solution: Solution) -> Iterator[Solution]:
                row = osp.get(
                    o_c if o_c is not None else solution[o_n]
                )
                if row:
                    for s, preds in row.items():
                        for p in preds:
                            new = dict(solution)
                            new[s_name] = s
                            new[p_name] = p
                            if check(new):
                                yield new

            return step

    # Generic fallback: fully-open scans and duplicate-variable
    # patterns (e.g. ``?x kb:near ?x``) — rare enough that the
    # interpretive probe is fine.
    def step(solution: Solution) -> Iterator[Solution]:
        def resolve(term: Term):
            if isinstance(term, Variable):
                return solution.get(term.name)
            return term

        s, p, o = resolve(s_t), resolve(p_t), resolve(o_t)
        for ts, tp, to in store.triples(s, p, o):
            new = dict(solution)
            ok = True
            for term, value in ((s_t, ts), (p_t, tp), (o_t, to)):
                if isinstance(term, Variable):
                    if new.get(term.name, value) != value:
                        ok = False
                        break
                    new[term.name] = value
            if ok and check(new):
                yield new

    return step


def _execute(steps: list[StepFn], solution: Solution
             ) -> Iterator[Solution]:
    """Explicit-stack nested-loop join: streams, never recurses."""
    n = len(steps)
    if not n:
        yield solution
        return
    stack = [steps[0](solution)]
    while stack:
        depth = len(stack)
        sol = next(stack[-1], None)
        if sol is None:
            stack.pop()
        elif depth == n:
            yield sol
        else:
            stack.append(steps[depth](sol))


@dataclass
class BoundPlan:
    """A cached plan bound to one query's concrete patterns/filters."""

    plan: Plan
    steps: list[StepFn]
    pre_filters: list[FilterExpr]
    cache_outcome: str

    def solutions(self, initial: Solution | None = None
                  ) -> Iterator[Solution]:
        solution = dict(initial or {})
        for f in self.pre_filters:
            if not f.evaluate(solution):
                return
        yield from _execute(self.steps, solution)


# ---------------------------------------------------------------------------
# The planner: cost model + bounded LRU plan cache + counters
# ---------------------------------------------------------------------------

class QueryPlanner:
    """Plans, caches and compiles BGP evaluations for triple stores.

    Thread-safe: the cache is guarded by a lock; plan construction runs
    outside it (two threads may race to compile the same shape — both
    plans are correct, last writer wins).  One planner may serve many
    stores: keys include the store's process-unique token, and entries
    are dropped (counted as invalidations) when the store's mutation
    epoch moved since the plan was cached.
    """

    def __init__(self, cache_size: int = 256):
        if cache_size < 1:
            raise ValueError("plan cache size must be >= 1")
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, tuple[int, Plan]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.compiled = 0
        self._m_cache = None
        self._m_compiled = None

    # -- observability -----------------------------------------------------------

    def bind_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror the plan-cache counters into ``registry``."""
        self._m_cache = registry.counter(
            "planner_plan_cache_total",
            "Plan-cache lookups by result (hit/miss/invalidated).",
            labelnames=("result",),
        )
        self._m_compiled = registry.counter(
            "planner_plans_compiled_total",
            "Query plans compiled (cache misses + invalidations).",
        )
        registry.gauge(
            "planner_plan_cache_size",
            "Query plans currently cached.",
            callback=lambda: float(len(self._cache)),
        )

    def snapshot(self) -> PlannerStats:
        with self._lock:
            return PlannerStats(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                compiled=self.compiled,
                cache_size=len(self._cache),
                cache_capacity=self.cache_size,
            )

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._cache.clear()

    # -- planning ----------------------------------------------------------------

    def plan(
        self,
        store: TripleStore,
        patterns: Iterable[TriplePattern],
        filters: Iterable[FilterExpr] = (),
        initial_vars: Iterable[str] = (),
    ) -> BoundPlan:
        """The compiled plan for a BGP, from cache when shape-fresh."""
        patterns = list(patterns)
        filters = list(filters)
        initial_vars = frozenset(initial_vars)
        shape = query_shape(patterns, filters, initial_vars)
        key = (store.token, shape)
        epoch = store.epoch
        plan: Plan | None = None
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                cached_epoch, cached_plan = entry
                if cached_epoch == epoch:
                    self.hits += 1
                    outcome = "hit"
                    plan = cached_plan
                    self._cache.move_to_end(key)
                else:
                    self.invalidations += 1
                    outcome = "invalidated"
                    del self._cache[key]
            else:
                self.misses += 1
                outcome = "miss"
        if self._m_cache is not None:
            self._m_cache.labels(result=outcome).inc()
        if plan is None:
            plan = _build_plan(
                store, patterns, filters, initial_vars, shape
            )
            with self._lock:
                self.compiled += 1
                self._cache[key] = (epoch, plan)
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
            if self._m_compiled is not None:
                self._m_compiled.inc()
        steps = [
            _compile_step(
                store,
                patterns[plan.order[n]],
                plan.states[n],
                tuple(filters[fi] for fi in plan.step_filters[n]),
            )
            for n in range(len(plan.order))
        ]
        return BoundPlan(
            plan=plan,
            steps=steps,
            pre_filters=[filters[fi] for fi in plan.pre_filters],
            cache_outcome=outcome,
        )

    def solutions(
        self,
        store: TripleStore,
        patterns: Iterable[TriplePattern],
        filters: Iterable[FilterExpr] = (),
        initial: Solution | None = None,
    ) -> Iterator[Solution]:
        """Plan (cached) and stream the BGP's solution mappings."""
        bound = self.plan(
            store, patterns, filters,
            initial_vars=frozenset(initial or ()),
        )
        return bound.solutions(initial)

    # -- explain -----------------------------------------------------------------

    def explain(
        self,
        store: TripleStore,
        patterns: Iterable[TriplePattern],
        filters: Iterable[FilterExpr] = (),
        initial: Solution | None = None,
    ) -> PlanExplain:
        """Run the plan with per-step instrumentation.

        Returns the chosen join order, the estimated cardinality of
        every step next to the rows it actually produced, and whether
        this request hit the plan cache.
        """
        patterns = list(patterns)
        filters = list(filters)
        bound = self.plan(
            store, patterns, filters,
            initial_vars=frozenset(initial or ()),
        )
        plan = bound.plan
        step_stats = [
            StepExplain(
                pattern=str(patterns[plan.order[n]]),
                states=plan.states[n],
                estimated=plan.estimates[n],
            )
            for n in range(len(plan.order))
        ]

        def instrument(n: int, fn: StepFn) -> StepFn:
            stat = step_stats[n]

            def wrapped(solution: Solution) -> Iterator[Solution]:
                stat.input_rows += 1
                for sol in fn(solution):
                    stat.output_rows += 1
                    yield sol

            return wrapped

        bound.steps = [
            instrument(n, fn) for n, fn in enumerate(bound.steps)
        ]
        rows = sum(1 for _ in bound.solutions(initial))
        return PlanExplain(
            cache=bound.cache_outcome,
            order=plan.order,
            steps=step_stats,
            rows=rows,
        )


_DEFAULT_PLANNER = QueryPlanner()


def default_planner() -> QueryPlanner:
    """The process-wide shared planner (used by ``planner="cost"``)."""
    return _DEFAULT_PLANNER
