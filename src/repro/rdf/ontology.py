"""Ontology service: label index, entity lookup and schema views.

The general query generator (paper Section 2.4) aligns noun phrases of
the user's question with ontology concepts — entities, classes and
properties — and asks the user to disambiguate when several candidates
match ("Buffalo, NY vs. Buffalo, IL", Section 4.1).  This module builds
the lexical index that makes those lookups fast and rankable.

Conventions of our ontology snapshots (see ``repro/data/*.ttl``):

* ``kb:instanceOf`` links instances to classes (mirroring the paper's
  Figure 1 which uses ``instanceOf`` rather than ``rdf:type``);
* ``rdfs:label`` carries the preferred display label;
* ``kb:alias`` carries alternative surface forms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, Namespace, RDFS, Term
from repro.rdf.turtle import parse_turtle

__all__ = ["Ontology", "EntityMatch", "KB"]

#: The namespace every ontology snapshot uses for its terms.
KB = Namespace("http://repro.example/kb/")


_NON_WORD = re.compile(r"[^\w\s,]")
_COMMA_RUN = re.compile(r"\s*,\s*")
_SPACE_RUN = re.compile(r"\s+")


@lru_cache(maxsize=4096)
def normalize_label(text: str) -> str:
    """Lower-case, collapse whitespace/underscores, strip punctuation.

    Pure string -> string, and the same surface forms recur constantly
    (index construction, entity lookup, every lint pass), so the cache
    turns repeat normalization into a dict hit.
    """
    text = _NON_WORD.sub("", text.replace("_", " ").lower())
    text = _COMMA_RUN.sub(", ", text)
    return _SPACE_RUN.sub(" ", text).strip()


@dataclass(frozen=True, slots=True)
class EntityMatch:
    """A candidate alignment of a text phrase with an ontology term.

    ``score`` is in (0, 1]; 1.0 is an exact preferred-label match.
    ``kind`` is ``entity``, ``class`` or ``property``.
    """

    iri: IRI
    label: str
    score: float
    kind: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.label} <{self.iri.value}> ({self.kind}, {self.score:.2f})"


@dataclass
class _LabelEntry:
    iri: IRI
    label: str
    preferred: bool
    kind: str
    tokens: frozenset[str] = field(default_factory=frozenset)
    degree: int = 0


class Ontology:
    """A triple store plus lexical and schema indexes."""

    def __init__(self, store: TripleStore):
        self.store = store
        self._entries: dict[str, list[_LabelEntry]] = {}
        self._by_token: dict[str, list[_LabelEntry]] = {}
        self._classes: set[IRI] = set()
        self._properties: set[IRI] = set()
        self._build_indexes()

    @classmethod
    def from_turtle(cls, text: str) -> "Ontology":
        """Build an ontology from a Turtle document."""
        return cls(parse_turtle(text))

    @classmethod
    def merged(cls, *ontologies: "Ontology") -> "Ontology":
        """Union of several ontologies (e.g. LinkedGeoData + DBpedia)."""
        store = TripleStore()
        for onto in ontologies:
            store.add_all(onto.store.triples())
            store.prefixes.update(onto.store.prefixes)
        return cls(store)

    def freeze(self) -> "Ontology":
        """Freeze the backing store (see :meth:`TripleStore.freeze`).

        The lexical/schema indexes are derived from the store at
        construction; freezing guarantees they can never drift from it.
        Returns ``self`` for chaining.
        """
        self.store.freeze()
        return self

    def copy(self) -> "Ontology":
        """A mutable deep copy: fresh store, freshly built indexes.

        This is how callers holding a frozen (cached) ontology obtain
        one they may mutate — e.g. the seeded mutation tests that delete
        a triple and re-lint.
        """
        return Ontology(self.store.copy())

    # -- index construction ------------------------------------------------------

    def _build_indexes(self) -> None:
        instance_of = KB.instanceOf
        alias = KB.alias

        for s, _, o in self.store.triples(None, instance_of, None):
            if isinstance(o, IRI):
                self._classes.add(o)
        self._properties = {
            p for p in self.store.predicates()
            if isinstance(p, IRI) and p not in (RDFS.label, alias)
        }

        def classify(iri: IRI) -> str:
            if iri in self._classes:
                return "class"
            if iri in self._properties:
                return "property"
            return "entity"

        subjects = {
            s for s, _, _ in self.store.triples() if isinstance(s, IRI)
        }
        objects = {
            o for _, _, o in self.store.triples() if isinstance(o, IRI)
        }
        for iri in sorted(subjects | objects | self._properties,
                          key=lambda t: t.value):
            labels: list[tuple[str, bool]] = []
            for _, _, o in self.store.triples(iri, RDFS.label, None):
                if isinstance(o, Literal):
                    labels.append((str(o.value), True))
            for _, _, o in self.store.triples(iri, alias, None):
                if isinstance(o, Literal):
                    labels.append((str(o.value), False))
            if not labels:
                labels.append((iri.local_name.replace("_", " "), True))
            for text, preferred in labels:
                self._add_entry(iri, text, preferred, classify(iri))

    def _add_entry(
        self, iri: IRI, label: str, preferred: bool, kind: str
    ) -> None:
        normalized = normalize_label(label)
        if not normalized:
            return
        entry = _LabelEntry(
            iri=iri,
            label=label,
            preferred=preferred,
            kind=kind,
            tokens=frozenset(normalized.replace(",", " ").split()),
            degree=self._degree(iri),
        )
        self._entries.setdefault(normalized, []).append(entry)
        for token in entry.tokens:
            self._by_token.setdefault(token, []).append(entry)

    def _degree(self, iri: IRI) -> int:
        """How prominent an entity is: its number of incident triples.

        Used to break ranking ties the way FREyA's ontology-based
        scores do — "Buffalo" prefers the Buffalo with the most facts
        (and incoming links) about it.
        """
        return self.store.count(iri, None, None) + self.store.count(
            None, None, iri
        )

    # -- lexical lookup --------------------------------------------------------------

    def lookup(self, phrase: str, kinds: tuple[str, ...] | None = None
               ) -> list[EntityMatch]:
        """Rank ontology terms matching ``phrase``.

        Scoring: 1.0 exact preferred label; 0.9 exact alias; otherwise
        token-overlap Jaccard scaled to (0, 0.8].  Ties break by entity
        prominence (incident-triple degree), then label.
        """
        normalized = normalize_label(phrase)
        if not normalized:
            return []
        query_tokens = frozenset(normalized.replace(",", " ").split())

        scored: dict[IRI, EntityMatch] = {}
        degrees: dict[IRI, int] = {}

        def consider(entry: _LabelEntry, score: float) -> None:
            if kinds is not None and entry.kind not in kinds:
                return
            current = scored.get(entry.iri)
            if current is None or score > current.score:
                # Matches display the *preferred* label, so candidates
                # that matched via a shared alias ("Buffalo") are still
                # distinguishable in the disambiguation dialogue.
                scored[entry.iri] = EntityMatch(
                    iri=entry.iri, label=self.label_of(entry.iri),
                    score=score, kind=entry.kind,
                )
                degrees[entry.iri] = entry.degree

        for entry in self._entries.get(normalized, []):
            consider(entry, 1.0 if entry.preferred else 0.9)

        candidates: set[int] = set()
        seen_entries: list[_LabelEntry] = []
        for token in query_tokens:
            for entry in self._by_token.get(token, []):
                if id(entry) not in candidates:
                    candidates.add(id(entry))
                    seen_entries.append(entry)
        for entry in seen_entries:
            overlap = len(entry.tokens & query_tokens)
            if not overlap:
                continue
            union = len(entry.tokens | query_tokens)
            jaccard = overlap / union
            if jaccard >= 0.99:
                continue  # exact matches handled above
            consider(entry, 0.8 * jaccard)

        return sorted(
            scored.values(),
            key=lambda m: (-m.score, -degrees.get(m.iri, 0), m.label,
                           m.iri.value),
        )

    def best_match(self, phrase: str,
                   kinds: tuple[str, ...] | None = None,
                   threshold: float = 0.3) -> EntityMatch | None:
        """The top match for ``phrase`` above ``threshold``, if any."""
        matches = self.lookup(phrase, kinds)
        if matches and matches[0].score >= threshold:
            return matches[0]
        return None

    # -- schema views -------------------------------------------------------------------

    @property
    def classes(self) -> frozenset[IRI]:
        """All IRIs used as classes (objects of ``instanceOf``)."""
        return frozenset(self._classes)

    @property
    def properties(self) -> frozenset[IRI]:
        """All predicate IRIs (minus label/alias bookkeeping)."""
        return frozenset(self._properties)

    def label_of(self, iri: IRI) -> str:
        """The preferred label of ``iri`` (falls back to the local name)."""
        value = self.store.value(iri, RDFS.label, None)
        if isinstance(value, Literal):
            return str(value.value)
        return iri.local_name.replace("_", " ")

    def instances_of(self, cls: IRI) -> list[IRI]:
        """All instances of a class, in stable order."""
        return sorted(
            (s for s in self.store.subjects(KB.instanceOf, cls)
             if isinstance(s, IRI)),
            key=lambda t: t.value,
        )

    def types_of(self, iri: IRI) -> list[IRI]:
        """All classes an entity is an instance of."""
        return sorted(
            (o for o in self.store.objects(iri, KB.instanceOf)
             if isinstance(o, IRI)),
            key=lambda t: t.value,
        )

    def vocabulary_words(self) -> set[str]:
        """Every token occurring in a label — feeds the tagger lexicon."""
        return set(self._by_token)

    def __len__(self) -> int:
        return len(self.store)
