"""RDF term types: IRIs, literals, blank nodes and query variables.

All terms are immutable and hashable, so they can live in the store's
set-based indexes and in solution bindings.  Terms are ``__slots__``
classes with their hash precomputed at construction: join evaluation
hashes the same terms millions of times as index keys and solution
values, so ``__hash__`` must be a plain attribute read rather than a
field-tuple hash on every call.  A :class:`Namespace` is a small
convenience for minting IRIs::

    KB = Namespace("http://repro.example/kb/")
    KB.Place            # IRI('http://repro.example/kb/Place')
    KB["Forest Hotel"]  # spaces are percent-free but underscored
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "IRI", "Literal", "BNode", "Variable", "Term", "Triple", "Namespace",
    "RDF", "RDFS", "XSD",
]


@dataclass(frozen=True, slots=True)
class IRI:
    """An IRI reference, e.g. ``http://repro.example/kb/Place``."""

    value: str
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash(("IRI", self.value)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self.value:
                return self.value.rsplit(sep, 1)[1]
        return self.value

    @property
    def namespace(self) -> str:
        """Everything up to and including the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self.value:
                return self.value.rsplit(sep, 1)[0] + sep
        return ""

    def n3(self) -> str:
        """N-Triples / Turtle rendering."""
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with optional datatype IRI or language tag."""

    value: str | int | float | bool
    datatype: IRI | None = None
    lang: str | None = None
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        if self.datatype is not None and self.lang is not None:
            raise ValueError("a literal cannot have both datatype and lang")
        object.__setattr__(
            self,
            "_hash",
            hash(("Literal", self.value, self.datatype, self.lang)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float)) and not isinstance(
            self.value, bool
        )

    def as_python(self):
        """The underlying Python value."""
        return self.value

    def n3(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, (int, float)):
            return repr(self.value)
        escaped = (
            str(self.value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        if self.lang:
            return f'"{escaped}"@{self.lang}'
        if self.datatype:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class BNode:
    """A blank node with a local identifier."""

    id: str
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash(("BNode", self.id)))

    def __hash__(self) -> int:
        return self._hash

    def n3(self) -> str:
        return f"_:{self.id}"

    def __str__(self) -> str:
        return f"_:{self.id}"


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable (``?x`` in SPARQL, ``$x`` in OASSIS-QL)."""

    name: str
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash(("Variable", self.name)))

    def __hash__(self) -> int:
        return self._hash

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"


Term = Union[IRI, Literal, BNode, Variable]
Triple = tuple[Term, Term, Term]


class Namespace:
    """IRI factory bound to a base prefix."""

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self.base = base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self.base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self.base + name.replace(" ", "_"))

    def __contains__(self, term: object) -> bool:
        return isinstance(term, IRI) and term.value.startswith(self.base)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Namespace({self.base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
