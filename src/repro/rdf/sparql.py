"""SPARQL SELECT subset: parser and evaluator.

This is the query machinery behind the WHERE clause of OASSIS-QL (which
is "a SPARQL-like selection query on the ontology", paper Section 2.1)
and behind the FREyA-style general query generator.  Supported:

* ``PREFIX`` declarations; ``SELECT [DISTINCT] ?x ... | *``;
* basic graph patterns with ``.`` separators and ``a`` for rdf:type;
* ``FILTER`` with ``&& || !``, comparisons, ``REGEX``, ``CONTAINS``,
  ``STRSTARTS``, ``STR``, ``LCASE``, ``BOUND``;
* ``ORDER BY [ASC|DESC](?x)``, ``LIMIT``, ``OFFSET``.

Evaluation is a selectivity-ordered index-nested-loop join over the
store's triple indexes, with filters pushed to the earliest point where
their variables are bound.  Two evaluators share that contract: the
*greedy* evaluator below (re-scores selectivity under the accumulated
bindings at every join level) and the *cost-based* planner in
:mod:`repro.rdf.planner` (orders once from store statistics and caches
the compiled plan per query shape).  Both stream solutions, so
``LIMIT`` without ``ORDER BY`` stops evaluation early.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Iterator

from repro.errors import SPARQLEvaluationError, SPARQLSyntaxError
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, RDF, Term, Variable

__all__ = [
    "TriplePattern", "FilterExpr", "SelectQuery", "parse_sparql",
    "evaluate_bgp", "iter_bgp", "sparql_select", "Solution",
]

#: One solution row: variable name -> bound term.
Solution = dict[str, Term]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern; any position may be a Variable."""

    s: Term
    p: Term
    o: Term

    def variables(self) -> set[str]:
        return {
            t.name for t in (self.s, self.p, self.o)
            if isinstance(t, Variable)
        }

    def __str__(self) -> str:
        return f"{_term_str(self.s)} {_term_str(self.p)} {_term_str(self.o)}"


def _term_str(t: Term) -> str:
    return t.n3() if hasattr(t, "n3") else str(t)


# ---------------------------------------------------------------------------
# Filter expression AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FilterExpr:
    """A boolean filter expression tree.

    ``op`` is one of ``and or not cmp call var term``; children depend on
    the op.  Evaluation happens against a solution mapping.
    """

    op: str
    args: tuple = ()

    def variables(self) -> set[str]:
        out: set[str] = set()
        if self.op == "var":
            out.add(self.args[0])
        else:
            for arg in self.args:
                if isinstance(arg, FilterExpr):
                    out |= arg.variables()
        return out

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, solution: Solution):
        if self.op == "term":
            return self.args[0]
        if self.op == "var":
            name = self.args[0]
            if name not in solution:
                raise SPARQLEvaluationError(f"unbound variable ?{name}")
            return solution[name]
        if self.op == "and":
            return all(a.evaluate(solution) for a in self.args)
        if self.op == "or":
            return any(a.evaluate(solution) for a in self.args)
        if self.op == "not":
            return not self.args[0].evaluate(solution)
        if self.op == "cmp":
            cmp_op, left, right = self.args
            return _compare(cmp_op, left.evaluate(solution),
                            right.evaluate(solution))
        if self.op == "call":
            name, *fn_args = self.args
            values = [a.evaluate(solution) for a in fn_args]
            return _call_function(name, values)
        raise SPARQLEvaluationError(f"unknown filter op {self.op!r}")


def _effective_value(term):
    if isinstance(term, Literal):
        return term.value
    if isinstance(term, IRI):
        return term.value
    return term


def _compare(op: str, left, right) -> bool:
    lv, rv = _effective_value(left), _effective_value(right)
    try:
        if op == "=":
            return lv == rv
        if op == "!=":
            return lv != rv
        if op == "<":
            return lv < rv
        if op == "<=":
            return lv <= rv
        if op == ">":
            return lv > rv
        if op == ">=":
            return lv >= rv
    except TypeError as exc:
        raise SPARQLEvaluationError(
            f"type error comparing {left!r} {op} {right!r}"
        ) from exc
    raise SPARQLEvaluationError(f"unknown comparison {op!r}")


def _call_function(name: str, values: list):
    name = name.upper()
    if name == "STR":
        return str(_effective_value(values[0]))
    if name == "LCASE":
        return str(_effective_value(values[0])).lower()
    if name == "UCASE":
        return str(_effective_value(values[0])).upper()
    if name == "CONTAINS":
        return str(_effective_value(values[1])) in str(
            _effective_value(values[0])
        )
    if name == "STRSTARTS":
        return str(_effective_value(values[0])).startswith(
            str(_effective_value(values[1]))
        )
    if name == "REGEX":
        flags = re.IGNORECASE if len(values) > 2 and "i" in str(
            _effective_value(values[2])
        ) else 0
        return re.search(
            str(_effective_value(values[1])),
            str(_effective_value(values[0])), flags
        ) is not None
    if name == "BOUND":
        return values[0] is not None
    if name == "LANG":
        term = values[0]
        return term.lang or "" if isinstance(term, Literal) else ""
    raise SPARQLEvaluationError(f"unknown function {name}()")


# ---------------------------------------------------------------------------
# Query AST
# ---------------------------------------------------------------------------

@dataclass
class SelectQuery:
    """A parsed SELECT query."""

    variables: list[str]          # empty list means SELECT *
    patterns: list[TriplePattern] = field(default_factory=list)
    filters: list[FilterExpr] = field(default_factory=list)
    distinct: bool = False
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    prefixes: dict[str, str] = field(default_factory=dict)

    def all_variables(self) -> set[str]:
        out: set[str] = set()
        for p in self.patterns:
            out |= p.variables()
        return out


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_SPARQL_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>\s]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<var>[?$][A-Za-z_][\w]*)
  | (?P<number>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<pname>[A-Za-z][\w-]*)?:(?P<plocal>[\w.,%-]*)
  | (?P<word>[A-Za-z][\w]*)
  | (?P<op><=|>=|!=|&&|\|\||[=<>!(){}.,;*])
  | (?P<space>\s+)
""",
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "DISTINCT", "WHERE", "FILTER", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "OFFSET", "PREFIX", "A", "TRUE", "FALSE",
}


class _SparqlParser:
    def __init__(self, text: str):
        self.tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _SPARQL_TOKEN_RE.match(text, pos)
            if m is None:
                raise SPARQLSyntaxError(
                    f"unexpected character {text[pos]!r} at offset {pos}"
                )
            kind = m.lastgroup
            if kind == "plocal":
                kind = "pname_full"
            if kind not in ("space", "comment"):
                self.tokens.append((kind, m.group()))
            pos = m.end()
        self.pos = 0
        self.query = SelectQuery(variables=[])

    # -- token helpers --------------------------------------------------------

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise SPARQLSyntaxError("unexpected end of query")
        self.pos += 1
        return tok

    def accept_word(self, word: str) -> bool:
        tok = self.peek()
        if tok and tok[0] == "word" and tok[1].upper() == word:
            self.pos += 1
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            tok = self.peek()
            raise SPARQLSyntaxError(
                f"expected {word}, got {tok[1] if tok else 'EOF'!r}"
            )

    def accept_op(self, op: str) -> bool:
        tok = self.peek()
        if tok and tok[0] == "op" and tok[1] == op:
            self.pos += 1
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            tok = self.peek()
            raise SPARQLSyntaxError(
                f"expected {op!r}, got {tok[1] if tok else 'EOF'!r}"
            )

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> SelectQuery:
        while self.accept_word("PREFIX"):
            kind, value = self.next()
            if kind != "pname_full" or not value.endswith(":"):
                raise SPARQLSyntaxError(f"bad prefix name {value!r}")
            prefix = value[:-1]
            kind, iri = self.next()
            if kind != "iri":
                raise SPARQLSyntaxError(f"expected IRI, got {iri!r}")
            self.query.prefixes[prefix] = iri[1:-1]

        self.expect_word("SELECT")
        if self.accept_word("DISTINCT"):
            self.query.distinct = True
        if self.accept_op("*"):
            pass
        else:
            while True:
                tok = self.peek()
                if tok and tok[0] == "var":
                    self.query.variables.append(self.next()[1][1:])
                else:
                    break
            if not self.query.variables:
                raise SPARQLSyntaxError("SELECT needs variables or *")

        self.expect_word("WHERE")
        self.expect_op("{")
        self._parse_group()
        self._parse_solution_modifiers()
        if self.peek() is not None:
            raise SPARQLSyntaxError(
                f"trailing tokens after query: {self.peek()[1]!r}"
            )
        return self.query

    def _parse_group(self) -> None:
        while True:
            tok = self.peek()
            if tok is None:
                raise SPARQLSyntaxError("unterminated group: missing '}'")
            if tok == ("op", "}"):
                self.next()
                return
            if tok[0] == "word" and tok[1].upper() == "FILTER":
                self.next()
                self.expect_op("(")
                self.query.filters.append(self._parse_or())
                self.expect_op(")")
                self.accept_op(".")
                continue
            pattern = self._parse_pattern()
            self.query.patterns.append(pattern)
            self.accept_op(".")

    def _parse_pattern(self) -> TriplePattern:
        s = self._parse_term(position="subject")
        p = self._parse_term(position="predicate")
        o = self._parse_term(position="object")
        return TriplePattern(s, p, o)

    def _parse_term(self, position: str) -> Term:
        kind, value = self.next()
        if kind == "var":
            return Variable(value[1:])
        if kind == "iri":
            return IRI(value[1:-1])
        if kind == "pname_full":
            prefix, _, local = value.partition(":")
            if prefix not in self.query.prefixes:
                raise SPARQLSyntaxError(f"undeclared prefix {prefix!r}")
            return IRI(self.query.prefixes[prefix] + local)
        if kind == "word" and value == "a" and position == "predicate":
            return RDF.type
        if kind == "string":
            return Literal(value[1:-1].replace('\\"', '"'))
        if kind == "number":
            is_float = any(c in value for c in ".eE")
            return Literal(float(value) if is_float else int(value))
        if kind == "word" and value.upper() in ("TRUE", "FALSE"):
            return Literal(value.upper() == "TRUE")
        raise SPARQLSyntaxError(
            f"unexpected token {value!r} as pattern {position}"
        )

    # -- filter expressions -------------------------------------------------------

    def _parse_or(self) -> FilterExpr:
        left = self._parse_and()
        while self.accept_op("||"):
            right = self._parse_and()
            left = FilterExpr("or", (left, right))
        return left

    def _parse_and(self) -> FilterExpr:
        left = self._parse_unary()
        while self.accept_op("&&"):
            right = self._parse_unary()
            left = FilterExpr("and", (left, right))
        return left

    def _parse_unary(self) -> FilterExpr:
        if self.accept_op("!"):
            return FilterExpr("not", (self._parse_unary(),))
        if self.accept_op("("):
            inner = self._parse_or()
            self.expect_op(")")
            return self._maybe_comparison(inner)
        return self._maybe_comparison(self._parse_primary())

    def _maybe_comparison(self, left: FilterExpr) -> FilterExpr:
        tok = self.peek()
        if tok and tok[0] == "op" and tok[1] in ("=", "!=", "<", "<=", ">",
                                                 ">="):
            op = self.next()[1]
            right = self._parse_primary()
            return FilterExpr("cmp", (op, left, right))
        return left

    def _parse_primary(self) -> FilterExpr:
        kind, value = self.next()
        if kind == "var":
            return FilterExpr("var", (value[1:],))
        if kind == "string":
            return FilterExpr(
                "term", (Literal(value[1:-1].replace('\\"', '"')),)
            )
        if kind == "number":
            is_float = any(c in value for c in ".eE")
            num = float(value) if is_float else int(value)
            return FilterExpr("term", (Literal(num),))
        if kind == "iri":
            return FilterExpr("term", (IRI(value[1:-1]),))
        if kind == "pname_full":
            prefix, _, local = value.partition(":")
            if prefix not in self.query.prefixes:
                raise SPARQLSyntaxError(f"undeclared prefix {prefix!r}")
            return FilterExpr(
                "term", (IRI(self.query.prefixes[prefix] + local),)
            )
        if kind == "word":
            name = value
            self.expect_op("(")
            args: list[FilterExpr] = []
            if not self.accept_op(")"):
                while True:
                    args.append(self._parse_or())
                    if self.accept_op(","):
                        continue
                    self.expect_op(")")
                    break
            return FilterExpr("call", (name, *args))
        raise SPARQLSyntaxError(f"unexpected token {value!r} in filter")

    # -- solution modifiers ----------------------------------------------------------

    def _parse_solution_modifiers(self) -> None:
        if self.accept_word("ORDER"):
            self.expect_word("BY")
            while True:
                tok = self.peek()
                if tok is None:
                    break
                if tok[0] == "var":
                    self.query.order_by.append((self.next()[1][1:], False))
                elif tok[0] == "word" and tok[1].upper() in ("ASC", "DESC"):
                    descending = self.next()[1].upper() == "DESC"
                    self.expect_op("(")
                    kind, value = self.next()
                    if kind != "var":
                        raise SPARQLSyntaxError(
                            f"expected variable in ORDER BY, got {value!r}"
                        )
                    self.expect_op(")")
                    self.query.order_by.append((value[1:], descending))
                else:
                    break
            if not self.query.order_by:
                raise SPARQLSyntaxError("empty ORDER BY")
        if self.accept_word("LIMIT"):
            kind, value = self.next()
            if kind != "number":
                raise SPARQLSyntaxError(f"bad LIMIT {value!r}")
            self.query.limit = int(value)
        if self.accept_word("OFFSET"):
            kind, value = self.next()
            if kind != "number":
                raise SPARQLSyntaxError(f"bad OFFSET {value!r}")
            self.query.offset = int(value)


def parse_sparql(text: str) -> SelectQuery:
    """Parse a SPARQL SELECT query string."""
    return _SparqlParser(text).parse()


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------

def _substitute(pattern: TriplePattern, solution: Solution) -> TriplePattern:
    def sub(term: Term) -> Term:
        if isinstance(term, Variable) and term.name in solution:
            return solution[term.name]
        return term

    return TriplePattern(sub(pattern.s), sub(pattern.p), sub(pattern.o))


def _selectivity(store: TripleStore, pattern: TriplePattern) -> int:
    s = None if isinstance(pattern.s, Variable) else pattern.s
    p = None if isinstance(pattern.p, Variable) else pattern.p
    o = None if isinstance(pattern.o, Variable) else pattern.o
    return store.count(s, p, o)


def _greedy_stream(
    store: TripleStore,
    patterns: Iterable[TriplePattern],
    filters: Iterable[FilterExpr] = (),
    initial: Solution | None = None,
) -> Iterator[Solution]:
    """Greedy selectivity-ordered join, streamed.

    Pattern choice is re-scored under the accumulated bindings at every
    join level (cheapest next, via memoized ``store.count``); filters
    run as soon as every variable they mention is bound.  The join tree
    is walked with an explicit stack of match iterators — depth is
    bounded by the pattern count, never by the interpreter's recursion
    limit — and solutions are yielded as the walk reaches the leaves,
    so consumers can stop early.

    The store must not be mutated while the evaluation runs: selectivity
    counts are memoized per bound pattern for the duration of the call,
    since the same (pattern, bindings) shape recurs across sibling
    branches of the join tree.
    """
    pending_filters = [(f, frozenset(f.variables())) for f in filters]

    count_cache: dict[tuple[Term | None, Term | None, Term | None], int] = {}

    def counted(pattern: TriplePattern) -> int:
        s = None if isinstance(pattern.s, Variable) else pattern.s
        p = None if isinstance(pattern.p, Variable) else pattern.p
        o = None if isinstance(pattern.o, Variable) else pattern.o
        key = (s, p, o)
        cached = count_cache.get(key)
        if cached is None:
            cached = count_cache[key] = store.count(s, p, o)
        return cached

    # A node is (solution, todo patterns, pending filters).  open_node
    # resolves one node: None when a filter prunes it, an ("emit", sol)
    # leaf, or ("children", iterator) whose items are child nodes.
    def open_node(solution: Solution,
                  todo: list[TriplePattern],
                  unchecked: list[tuple[FilterExpr, frozenset[str]]]):
        # Partition filters in one pass (by position, not O(n^2)
        # equality scans) into those whose variables are now all bound
        # and those still pending.
        still_pending = unchecked
        if unchecked:
            bound_names = solution.keys()
            still_pending = []
            for entry in unchecked:
                f, f_vars = entry
                if f_vars <= bound_names:
                    if not f.evaluate(solution):
                        return None
                else:
                    still_pending.append(entry)
        if not todo:
            return ("emit", solution)
        # Cheapest pattern next, under current bindings; min() is a
        # single O(n) scan (no need to rank the rest — they are
        # re-scored at the next join level anyway).
        if len(todo) == 1:
            chosen = todo[0]
            rest: list[TriplePattern] = []
        else:
            chosen = min(
                todo, key=lambda pt: counted(_substitute(pt, solution))
            )
            rest = [pt for pt in todo if pt is not chosen]
        bound = _substitute(chosen, solution)
        s = None if isinstance(bound.s, Variable) else bound.s
        p = None if isinstance(bound.p, Variable) else bound.p
        o = None if isinstance(bound.o, Variable) else bound.o

        def children() -> Iterator[tuple]:
            for ts, tp, to in store.triples(s, p, o):
                new_solution = dict(solution)
                ok = True
                for term, value in (
                    (bound.s, ts), (bound.p, tp), (bound.o, to)
                ):
                    if isinstance(term, Variable):
                        if new_solution.get(term.name, value) != value:
                            ok = False
                            break
                        new_solution[term.name] = value
                if ok:
                    yield (new_solution, rest, still_pending)

        return ("children", children())

    root = (dict(initial or {}), list(patterns), pending_filters)
    stack: list[Iterator[tuple]] = [iter((root,))]
    while stack:
        node = next(stack[-1], None)
        if node is None:
            stack.pop()
            continue
        opened = open_node(*node)
        if opened is None:
            continue
        kind, payload = opened
        if kind == "emit":
            yield payload
        else:
            stack.append(payload)


def iter_bgp(
    store: TripleStore,
    patterns: Iterable[TriplePattern],
    filters: Iterable[FilterExpr] = (),
    initial: Solution | None = None,
    planner=None,
) -> Iterator[Solution]:
    """Stream the solution mappings of a basic graph pattern.

    ``planner`` selects the evaluator: ``None`` or ``"greedy"`` use the
    greedy per-level re-scoring join; ``"cost"`` uses the process-wide
    :func:`repro.rdf.planner.default_planner`; a
    :class:`~repro.rdf.planner.QueryPlanner` instance uses that planner
    (and its plan cache).  All evaluators produce the same solution
    multiset; enumeration order may differ between them.
    """
    if isinstance(planner, str):
        if planner == "greedy":
            planner = None
        elif planner == "cost":
            from repro.rdf.planner import default_planner

            planner = default_planner()
        else:
            raise ValueError(
                f"unknown planner {planner!r}; "
                "expected 'cost' or 'greedy'"
            )
    if planner is None:
        return _greedy_stream(store, patterns, filters, initial)
    return planner.solutions(store, patterns, filters, initial)


def evaluate_bgp(
    store: TripleStore,
    patterns: Iterable[TriplePattern],
    filters: Iterable[FilterExpr] = (),
    initial: Solution | None = None,
    planner=None,
) -> list[Solution]:
    """Evaluate a basic graph pattern; returns all solution mappings.

    Patterns are joined in selectivity order (cheapest first, given the
    bindings accumulated so far); filters run as soon as every variable
    they mention is bound.  Materializing wrapper over
    :func:`iter_bgp`; ``planner`` is forwarded unchanged.
    """
    return list(iter_bgp(store, patterns, filters, initial, planner))


def _sort_key(term: Term):
    if isinstance(term, Literal):
        value = term.value
        if isinstance(value, bool):
            return (0, int(value))
        if isinstance(value, (int, float)):
            return (0, value)
        return (1, str(value))
    return (2, str(term))


def _distinct_stream(rows: Iterator[Solution]) -> Iterator[Solution]:
    """Incremental DISTINCT: first occurrence wins, order preserved."""
    seen: set[tuple] = set()
    for row in rows:
        key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            yield row


def sparql_select(
    store: TripleStore, query: str | SelectQuery, planner=None
) -> list[Solution]:
    """Run a SELECT query; returns solution rows (dicts of bindings).

    Rows are projected to the SELECT variables; ``SELECT *`` keeps every
    variable of the pattern.  Evaluation streams: without ``ORDER BY``
    the ``OFFSET``/``LIMIT`` window is sliced off the solution stream
    and the join stops early, and ``DISTINCT`` dedups incrementally
    rather than after materializing every row.  ``planner`` is
    forwarded to :func:`iter_bgp`.
    """
    if isinstance(query, str):
        query = parse_sparql(query)

    project = query.variables or sorted(query.all_variables())
    rows: Iterator[Solution] = (
        {name: sol[name] for name in project if name in sol}
        for sol in iter_bgp(
            store, query.patterns, query.filters, planner=planner
        )
    )
    if query.distinct:
        rows = _distinct_stream(rows)

    if not query.order_by:
        stop = (
            None if query.limit is None
            else query.offset + query.limit
        )
        return list(islice(rows, query.offset, stop))

    out = list(rows)
    for name, descending in reversed(query.order_by):
        out.sort(
            key=lambda row: _sort_key(row.get(name, Literal(""))),
            reverse=descending,
        )
    if query.offset:
        out = out[query.offset:]
    if query.limit is not None:
        out = out[: query.limit]
    return out
