"""RDF substrate: data model, triple store, Turtle I/O, SPARQL subset.

OASSIS-QL queries are evaluated against an RDF ontology (paper
Section 2.1); this package provides the store and query machinery the
paper gets from an off-the-shelf RDF stack.

Typical use::

    from repro.rdf import TripleStore, parse_turtle, sparql_select

    store = parse_turtle(open("geo.ttl").read())
    rows = sparql_select(store, '''
        SELECT ?x WHERE { ?x <http://repro.example/kb/instanceOf>
                             <http://repro.example/kb/Place> }
    ''')
"""

from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Namespace,
    Term,
    Triple,
    Variable,
)
from repro.rdf.store import PredicateStats, StoreStats, TripleStore
from repro.rdf.turtle import parse_turtle, serialize_turtle
from repro.rdf.sparql import (
    SelectQuery,
    TriplePattern,
    evaluate_bgp,
    iter_bgp,
    parse_sparql,
    sparql_select,
)
from repro.rdf.planner import PlanExplain, QueryPlanner, default_planner
from repro.rdf.ontology import EntityMatch, Ontology

__all__ = [
    "IRI",
    "Literal",
    "BNode",
    "Variable",
    "Term",
    "Triple",
    "Namespace",
    "TripleStore",
    "PredicateStats",
    "StoreStats",
    "parse_turtle",
    "serialize_turtle",
    "SelectQuery",
    "TriplePattern",
    "parse_sparql",
    "sparql_select",
    "evaluate_bgp",
    "iter_bgp",
    "QueryPlanner",
    "PlanExplain",
    "default_planner",
    "Ontology",
    "EntityMatch",
]
