"""Turtle reader and writer for the subset used by the ontology snapshots.

Supported syntax:

* ``@prefix p: <iri> .`` declarations and prefixed names (``geo:Place``);
* full IRIs in angle brackets;
* ``a`` as shorthand for ``rdf:type``;
* string literals (with ``@lang`` or ``^^datatype``), integers, decimals
  and booleans;
* predicate lists with ``;`` and object lists with ``,``;
* blank nodes ``_:b1``;
* ``#`` comments.

Not supported (not needed by our data): collections ``( )``, anonymous
blank nodes ``[ ]``, multi-line ``\"\"\"`` literals, ``@base``.
"""

from __future__ import annotations

import re

from repro.errors import TurtleSyntaxError
from repro.rdf.store import TripleStore
from repro.rdf.terms import IRI, Literal, BNode, RDF, Term, XSD

__all__ = ["parse_turtle", "serialize_turtle"]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>\s]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<langtag>@[A-Za-z][A-Za-z0-9-]*)
  | (?P<dtsep>\^\^)
  | (?P<bnode>_:[A-Za-z0-9_-]+)
  | (?P<pname>[A-Za-z][\w.-]*)?:(?P<plocal>[\w.,%-]*)
  | (?P<number>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<keyword>\ba\b|true|false|@prefix)
  | (?P<punct>[;,.])
  | (?P<word>[A-Za-z][\w-]*)
  | (?P<space>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    """Tokenize into (kind, value, line) triples."""
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise TurtleSyntaxError(
                f"unexpected character {text[pos]!r}", line
            )
        kind = match.lastgroup
        value = match.group()
        line += value.count("\n")
        if kind == "plocal":  # prefixed name matched via pname/plocal
            kind = "pname_full"
        if kind not in ("space", "comment"):
            # '@prefix' is caught by langtag pattern; reclassify.
            if kind == "langtag" and value == "@prefix":
                kind = "keyword"
            if kind == "word" and value == "a":
                kind = "keyword"
            if kind == "word" and value in ("true", "false"):
                kind = "keyword"
            tokens.append((kind, value, line))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.prefixes: dict[str, str] = {}
        self.store = TripleStore()

    def peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            last_line = self.tokens[-1][2] if self.tokens else 1
            raise TurtleSyntaxError("unexpected end of input", last_line)
        self.pos += 1
        return tok

    def expect_punct(self, char: str) -> None:
        kind, value, line = self.next()
        if kind != "punct" or value != char:
            raise TurtleSyntaxError(f"expected {char!r}, got {value!r}", line)

    def parse(self) -> TripleStore:
        while self.peek() is not None:
            kind, value, line = self.peek()
            if kind == "keyword" and value == "@prefix":
                self._parse_prefix()
            else:
                self._parse_statement()
        self.store.prefixes = dict(self.prefixes)
        return self.store

    def _parse_prefix(self) -> None:
        self.next()  # @prefix
        kind, value, line = self.next()
        if kind != "pname_full" or not value.endswith(":"):
            raise TurtleSyntaxError(
                f"expected prefix name, got {value!r}", line
            )
        prefix = value[:-1]
        kind, iri, line = self.next()
        if kind != "iri":
            raise TurtleSyntaxError(f"expected IRI, got {iri!r}", line)
        self.prefixes[prefix] = iri[1:-1]
        self.expect_punct(".")

    def _parse_statement(self) -> None:
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                self.store.add(subject, predicate, obj)
                tok = self.peek()
                if tok and tok[0] == "punct" and tok[1] == ",":
                    self.next()
                    continue
                break
            tok = self.peek()
            if tok and tok[0] == "punct" and tok[1] == ";":
                self.next()
                # allow trailing ';' before '.'
                nxt = self.peek()
                if nxt and nxt[0] == "punct" and nxt[1] == ".":
                    break
                continue
            break
        self.expect_punct(".")

    def _parse_term(self, position: str) -> Term:
        kind, value, line = self.next()
        if kind == "iri":
            return IRI(value[1:-1])
        if kind == "pname_full":
            prefix, _, local = value.partition(":")
            if prefix not in self.prefixes:
                raise TurtleSyntaxError(
                    f"undeclared prefix {prefix!r}", line
                )
            return IRI(self.prefixes[prefix] + local)
        if kind == "bnode":
            return BNode(value[2:])
        if kind == "keyword" and value == "a":
            if position != "predicate":
                raise TurtleSyntaxError(
                    "'a' is only valid as a predicate", line
                )
            return RDF.type
        if position != "object" and kind in ("string", "number", "keyword"):
            raise TurtleSyntaxError(
                f"literal not allowed as {position}", line
            )
        if kind == "string":
            text = self._unescape(value[1:-1])
            nxt = self.peek()
            if nxt and nxt[0] == "langtag":
                self.next()
                return Literal(text, lang=nxt[1][1:])
            if nxt and nxt[0] == "dtsep":
                self.next()
                dtype = self._parse_term(position="datatype")
                if not isinstance(dtype, IRI):
                    raise TurtleSyntaxError("datatype must be an IRI", line)
                return self._typed_literal(text, dtype)
            return Literal(text)
        if kind == "number":
            if any(c in value for c in ".eE"):
                return Literal(float(value), datatype=XSD.decimal)
            return Literal(int(value), datatype=XSD.integer)
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value == "true", datatype=XSD.boolean)
        raise TurtleSyntaxError(
            f"unexpected token {value!r} as {position}", line
        )

    @staticmethod
    def _typed_literal(text: str, dtype: IRI) -> Literal:
        if dtype == XSD.integer:
            return Literal(int(text), datatype=dtype)
        if dtype in (XSD.decimal, XSD.double, XSD.float):
            return Literal(float(text), datatype=dtype)
        if dtype == XSD.boolean:
            return Literal(text == "true", datatype=dtype)
        return Literal(text, datatype=dtype)

    #: Escape sequences understood in string literals; the serializer
    #: emits the first three (``Literal.n3``), ``\t`` is accepted from
    #: hand-written documents.
    _ESCAPES = {"\\": "\\", '"': '"', "n": "\n", "t": "\t"}

    @classmethod
    def _unescape(cls, raw: str) -> str:
        # Processed left-to-right so "\\n" decodes to backslash + 'n',
        # not a newline — str.replace chains get this wrong.  Unknown
        # escapes keep both characters (lenient, as before).
        if "\\" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch == "\\" and i + 1 < len(raw):
                nxt = raw[i + 1]
                decoded = cls._ESCAPES.get(nxt)
                if decoded is None:
                    out.append(ch)
                    out.append(nxt)
                else:
                    out.append(decoded)
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)


def parse_turtle(text: str) -> TripleStore:
    """Parse a Turtle document into a new :class:`TripleStore`."""
    return _Parser(text).parse()


def serialize_turtle(store: TripleStore) -> str:
    """Serialize a store to Turtle, using its registered prefixes.

    Triples are grouped by subject with ``;`` continuation; the output
    round-trips through :func:`parse_turtle`.
    """
    def shorten(term: Term) -> str:
        if isinstance(term, IRI):
            for prefix, base in store.prefixes.items():
                if term.value.startswith(base) and len(term.value) > len(base):
                    local = term.value[len(base):]
                    if re.fullmatch(r"[\w.,%-]*", local):
                        return f"{prefix}:{local}"
            return term.n3()
        return term.n3()

    lines = [
        f"@prefix {prefix}: <{base}> ."
        for prefix, base in sorted(store.prefixes.items())
    ]
    if lines:
        lines.append("")

    by_subject: dict[Term, list[tuple[Term, Term]]] = {}
    for s, p, o in store:
        by_subject.setdefault(s, []).append((p, o))

    for subject in sorted(by_subject, key=lambda t: str(t)):
        pairs = sorted(by_subject[subject], key=lambda po: (str(po[0]),
                                                            str(po[1])))
        rendered = [f"{shorten(p)} {shorten(o)}" for p, o in pairs]
        body = " ;\n    ".join(rendered)
        lines.append(f"{shorten(subject)} {body} .")
    return "\n".join(lines) + "\n"
