"""Indexed in-memory triple store.

The store keeps three permutation indexes (SPO, POS, OSP) so that any
triple pattern with at least one bound position is answered by hash
lookups rather than scans — the standard design of in-memory RDF stores.
Pattern positions are bound by passing a term and left open by passing
``None`` (or a :class:`~repro.rdf.terms.Variable`, which is treated as
open for convenience when evaluating query patterns).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.rdf.terms import IRI, Literal, BNode, Term, Triple, Variable

__all__ = ["TripleStore"]

# Concrete (non-variable) term types allowed in stored triples.
_CONCRETE = (IRI, Literal, BNode)


def _as_pattern(term: Term | None) -> Term | None:
    """Variables act as wildcards in pattern positions."""
    return None if isinstance(term, Variable) else term


class TripleStore:
    """A set of RDF triples with SPO/POS/OSP hash indexes.

    The store also carries a prefix table used by the Turtle serializer
    and for debugging output.
    """

    def __init__(self, triples: Iterable[Triple] = ()):
        self._spo: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._size = 0
        self.prefixes: dict[str, str] = {}
        for s, p, o in triples:
            self.add(s, p, o)

    # -- mutation ---------------------------------------------------------------

    def add(self, s: Term, p: Term, o: Term) -> bool:
        """Add one triple; returns False if it was already present.

        Raises:
            TypeError: if any position is a variable or a non-RDF value.
        """
        for pos_name, term in (("subject", s), ("predicate", p),
                               ("object", o)):
            if not isinstance(term, _CONCRETE):
                raise TypeError(
                    f"{pos_name} must be IRI/Literal/BNode, got "
                    f"{type(term).__name__}"
                )
        if o in self._spo.get(s, {}).get(p, ()):  # type: ignore[arg-type]
            return False
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    def remove(self, s: Term, p: Term, o: Term) -> bool:
        """Remove one triple; returns False if it was not present.

        Emptied nested dicts/sets are pruned from all three indexes, so
        wildcard scans and :meth:`count` stay proportional to the live
        triples after heavy add/remove churn.
        """
        row = self._spo.get(s)
        objs = row.get(p) if row is not None else None
        if objs is None or o not in objs:
            return False
        objs.remove(o)
        if not objs:
            del row[p]
            if not row:
                del self._spo[s]
        by_o = self._pos[p]
        subjs = by_o[o]
        subjs.discard(s)
        if not subjs:
            del by_o[o]
            if not by_o:
                del self._pos[p]
        by_s = self._osp[o]
        preds = by_s[s]
        preds.discard(p)
        if not preds:
            del by_s[s]
            if not by_s:
                del self._osp[o]
        self._size -= 1
        return True

    def bind_prefix(self, prefix: str, base: str) -> None:
        """Register a namespace prefix for serialization."""
        self.prefixes[prefix] = base

    # -- lookup -------------------------------------------------------------------

    def triples(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """All triples matching the pattern (None/Variable = wildcard)."""
        s, p, o = _as_pattern(s), _as_pattern(p), _as_pattern(o)
        if s is not None:
            if s not in self._spo:
                return
            by_p = self._spo[s]
            if p is not None:
                for obj in by_p.get(p, ()):
                    if o is None or obj == o:
                        yield (s, p, obj)
            else:
                for pred, objs in by_p.items():
                    for obj in objs:
                        if o is None or obj == o:
                            yield (s, pred, obj)
        elif p is not None:
            if p not in self._pos:
                return
            by_o = self._pos[p]
            if o is not None:
                for subj in by_o.get(o, ()):
                    yield (subj, p, o)
            else:
                for obj, subjs in by_o.items():
                    for subj in subjs:
                        yield (subj, p, obj)
        elif o is not None:
            if o not in self._osp:
                return
            for subj, preds in self._osp[o].items():
                for pred in preds:
                    yield (subj, pred, o)
        else:
            for subj, by_p in self._spo.items():
                for pred, objs in by_p.items():
                    for obj in objs:
                        yield (subj, pred, obj)

    def contains(self, s: Term, p: Term, o: Term) -> bool:
        """True if the concrete triple is in the store."""
        return o in self._spo.get(s, {}).get(p, set())

    def count(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> int:
        """Number of triples matching the pattern.

        Fully-open and single-position patterns are O(1)/O(index-row);
        used by the query planner for selectivity ordering.
        """
        s, p, o = _as_pattern(s), _as_pattern(p), _as_pattern(o)
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(v) for v in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(v) for v in self._pos.get(p, {}).values())
        return sum(len(v) for v in self._osp.get(o, {}).values())

    def subjects(self, p: Term | None = None, o: Term | None = None
                 ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, p, o)``."""
        seen: set[Term] = set()
        for s, _, _ in self.triples(None, p, o):
            if s not in seen:
                seen.add(s)
                yield s

    def objects(self, s: Term | None = None, p: Term | None = None
                ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(s, p, ?)``."""
        seen: set[Term] = set()
        for _, _, o in self.triples(s, p, None):
            if o not in seen:
                seen.add(o)
                yield o

    def predicates(self) -> Iterator[Term]:
        """All distinct predicates in the store."""
        return iter(self._pos.keys())

    def value(self, s: Term | None = None, p: Term | None = None,
              o: Term | None = None) -> Term | None:
        """The single term completing the pattern, or None.

        Exactly one of the three positions must be left open.
        """
        open_positions = [x is None for x in (s, p, o)]
        if sum(open_positions) != 1:
            raise ValueError("value() requires exactly one open position")
        for triple in self.triples(s, p, o):
            return triple[open_positions.index(True)]
        return None

    # -- pythonic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return self.contains(s, p, o)

    def copy(self) -> "TripleStore":
        """A shallow copy (terms are immutable, so this is a full copy)."""
        clone = TripleStore(self.triples())
        clone.prefixes = dict(self.prefixes)
        return clone
