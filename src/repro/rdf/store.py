"""Indexed in-memory triple store.

The store keeps three permutation indexes (SPO, POS, OSP) so that any
triple pattern with at least one bound position is answered by hash
lookups rather than scans — the standard design of in-memory RDF stores.
Pattern positions are bound by passing a term and left open by passing
``None`` (or a :class:`~repro.rdf.terms.Variable`, which is treated as
open for convenience when evaluating query patterns).

The store also maintains **persistent cardinality statistics** for the
cost-based query planner (:mod:`repro.rdf.planner`): total size,
per-predicate triple counts, and per-predicate distinct subject/object
counts, all updated incrementally in :meth:`add`/:meth:`remove` — no
rescans, ever.  :meth:`stats` snapshots them and :meth:`estimate`
answers O(1) selectivity questions that :meth:`count` would answer with
O(index-row) sums.  Every successful mutation bumps :attr:`epoch`,
which is how cached query plans detect staleness.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import FrozenStoreError
from repro.rdf.terms import IRI, Literal, BNode, Term, Triple, Variable

__all__ = ["PredicateStats", "StoreStats", "TripleStore"]

#: Distinct tokens for store identity (plan-cache keys survive id()
#: reuse because tokens are never recycled).
_STORE_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class PredicateStats:
    """Cardinality summary of one predicate.

    ``triples / distinct_subjects`` is the average out-degree (objects
    per subject); ``triples / distinct_objects`` the average in-degree.
    """

    triples: int
    distinct_subjects: int
    distinct_objects: int


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time snapshot of the store's cardinality statistics.

    All numbers are maintained incrementally by ``add``/``remove``;
    taking the snapshot copies the per-predicate table but performs no
    index scans.
    """

    size: int
    distinct_subjects: int
    distinct_objects: int
    epoch: int
    predicates: dict[Term, PredicateStats]

# Concrete (non-variable) term types allowed in stored triples.
_CONCRETE = (IRI, Literal, BNode)


def _as_pattern(term: Term | None) -> Term | None:
    """Variables act as wildcards in pattern positions."""
    return None if isinstance(term, Variable) else term


class TripleStore:
    """A set of RDF triples with SPO/POS/OSP hash indexes.

    The store also carries a prefix table used by the Turtle serializer
    and for debugging output.
    """

    def __init__(self, triples: Iterable[Triple] = ()):
        self._spo: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: dict[Term, dict[Term, set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._size = 0
        # Incremental cardinality statistics (see module docstring).
        self._pred_triples: dict[Term, int] = {}
        self._pred_subjects: dict[Term, int] = {}
        self._pred_objects: dict[Term, int] = {}
        self._epoch = 0
        self._token = next(_STORE_TOKENS)
        self._frozen = False
        self.prefixes: dict[str, str] = {}
        for s, p, o in triples:
            self.add(s, p, o)

    @property
    def epoch(self) -> int:
        """Mutation counter; bumped by every successful add/remove."""
        return self._epoch

    @property
    def token(self) -> int:
        """Process-unique store identity (never recycled, unlike id())."""
        return self._token

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has been called."""
        return self._frozen

    def freeze(self) -> "TripleStore":
        """Make the store immutable: ``add``/``remove`` raise afterwards.

        Used by the ``lru_cache``'d ontology loaders so a shared cached
        snapshot cannot be mutated in place (which would silently poison
        every later caller).  Freezing is one-way; take a :meth:`copy`
        for a mutable clone.  Returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    # -- mutation ---------------------------------------------------------------

    def add(self, s: Term, p: Term, o: Term) -> bool:
        """Add one triple; returns False if it was already present.

        Raises:
            TypeError: if any position is a variable or a non-RDF value.
            FrozenStoreError: if the store has been frozen.
        """
        if self._frozen:
            raise FrozenStoreError(
                "cannot add to a frozen store; use copy() for a "
                "mutable clone"
            )
        for pos_name, term in (("subject", s), ("predicate", p),
                               ("object", o)):
            if not isinstance(term, _CONCRETE):
                raise TypeError(
                    f"{pos_name} must be IRI/Literal/BNode, got "
                    f"{type(term).__name__}"
                )
        row = self._spo.get(s)
        objs = row.get(p) if row is not None else None
        if objs is not None and o in objs:
            return False
        # Statistics bookkeeping needs the *pre-insert* index state:
        # s is a new subject of p iff s had no p-edge yet, and o a new
        # object of p iff the POS row for (p, o) did not exist.
        new_subject = objs is None
        by_o = self._pos.get(p)
        new_object = by_o is None or o not in by_o
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._pred_triples[p] = self._pred_triples.get(p, 0) + 1
        if new_subject:
            self._pred_subjects[p] = self._pred_subjects.get(p, 0) + 1
        if new_object:
            self._pred_objects[p] = self._pred_objects.get(p, 0) + 1
        self._epoch += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    def remove(self, s: Term, p: Term, o: Term) -> bool:
        """Remove one triple; returns False if it was not present.

        Emptied nested dicts/sets are pruned from all three indexes, so
        wildcard scans and :meth:`count` stay proportional to the live
        triples after heavy add/remove churn.

        Raises:
            FrozenStoreError: if the store has been frozen.
        """
        if self._frozen:
            raise FrozenStoreError(
                "cannot remove from a frozen store; use copy() for a "
                "mutable clone"
            )
        row = self._spo.get(s)
        objs = row.get(p) if row is not None else None
        if objs is None or o not in objs:
            return False
        objs.remove(o)
        if not objs:
            # s lost its last p-edge: one fewer distinct subject of p.
            self._pred_subjects[p] -= 1
            if not self._pred_subjects[p]:
                del self._pred_subjects[p]
            del row[p]
            if not row:
                del self._spo[s]
        by_o = self._pos[p]
        subjs = by_o[o]
        subjs.discard(s)
        if not subjs:
            # o is no longer an object of p.
            self._pred_objects[p] -= 1
            if not self._pred_objects[p]:
                del self._pred_objects[p]
            del by_o[o]
            if not by_o:
                del self._pos[p]
        by_s = self._osp[o]
        preds = by_s[s]
        preds.discard(p)
        if not preds:
            del by_s[s]
            if not by_s:
                del self._osp[o]
        self._pred_triples[p] -= 1
        if not self._pred_triples[p]:
            del self._pred_triples[p]
        self._size -= 1
        self._epoch += 1
        return True

    def bind_prefix(self, prefix: str, base: str) -> None:
        """Register a namespace prefix for serialization."""
        self.prefixes[prefix] = base

    # -- lookup -------------------------------------------------------------------

    def triples(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> Iterator[Triple]:
        """All triples matching the pattern (None/Variable = wildcard)."""
        s, p, o = _as_pattern(s), _as_pattern(p), _as_pattern(o)
        if s is not None:
            if s not in self._spo:
                return
            by_p = self._spo[s]
            if p is not None:
                for obj in by_p.get(p, ()):
                    if o is None or obj == o:
                        yield (s, p, obj)
            else:
                for pred, objs in by_p.items():
                    for obj in objs:
                        if o is None or obj == o:
                            yield (s, pred, obj)
        elif p is not None:
            if p not in self._pos:
                return
            by_o = self._pos[p]
            if o is not None:
                for subj in by_o.get(o, ()):
                    yield (subj, p, o)
            else:
                for obj, subjs in by_o.items():
                    for subj in subjs:
                        yield (subj, p, obj)
        elif o is not None:
            if o not in self._osp:
                return
            for subj, preds in self._osp[o].items():
                for pred in preds:
                    yield (subj, pred, o)
        else:
            for subj, by_p in self._spo.items():
                for pred, objs in by_p.items():
                    for obj in objs:
                        yield (subj, pred, obj)

    def contains(self, s: Term, p: Term, o: Term) -> bool:
        """True if the concrete triple is in the store."""
        return o in self._spo.get(s, {}).get(p, set())

    def predicate_index(self):
        """Live predicate-major view: ``(p, {o: {s, ...}})`` pairs.

        Bulk access for single-pass analyzers (OntologyLint streams
        the whole store once and per-triple generator dispatch is the
        dominant cost at that size).  The nested containers are the
        store's own indexes: callers must treat them as read-only.
        """
        return self._pos.items()

    def subject_keys(self):
        """Live read-only view of every subject with outgoing triples.

        Companion to :meth:`predicate_index`: analyzers get the
        distinct-subject set without re-deriving it triple by triple.
        """
        return self._spo.keys()

    def count(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
    ) -> int:
        """Number of triples matching the pattern.

        Fully-open and single-position patterns are O(1)/O(index-row);
        used by the query planner for selectivity ordering.
        """
        s, p, o = _as_pattern(s), _as_pattern(p), _as_pattern(o)
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(v) for v in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(v) for v in self._pos.get(p, {}).values())
        return sum(len(v) for v in self._osp.get(o, {}).values())

    # -- cardinality statistics ---------------------------------------------------

    def stats(self) -> StoreStats:
        """Snapshot of the incrementally maintained statistics.

        O(#predicates) to copy the per-predicate table; no index scans.
        The snapshot is what the planner's cost model reads and what the
        stats-consistency fuzz suite checks against a from-scratch
        recount.
        """
        return StoreStats(
            size=self._size,
            distinct_subjects=len(self._spo),
            distinct_objects=len(self._osp),
            epoch=self._epoch,
            predicates={
                p: PredicateStats(
                    triples=n,
                    distinct_subjects=self._pred_subjects.get(p, 0),
                    distinct_objects=self._pred_objects.get(p, 0),
                )
                for p, n in self._pred_triples.items()
            },
        )

    def estimate(
        self, s_bound: bool, p: Term | None, o_bound: bool
    ) -> float:
        """O(1) estimated match count for a triple-pattern class.

        ``s_bound``/``o_bound`` say whether the subject/object position
        is bound (to *some* constant — which one does not matter, that
        is the point: the estimate depends only on the pattern's stat
        class); ``p`` is the concrete predicate or ``None`` when the
        predicate position is open.  Unlike :meth:`count`, unbound-
        position estimates never sum index rows — they divide the
        incremental per-predicate counters.
        """
        if p is not None:
            n = self._pred_triples.get(p)
            if n is None:
                return 0.0
            if s_bound and o_bound:
                return 1.0
            if s_bound:
                return n / self._pred_subjects[p]
            if o_bound:
                return n / self._pred_objects[p]
            return float(n)
        if not self._size:
            return 0.0
        if s_bound and o_bound:
            return max(
                1.0, self._size / (len(self._spo) * len(self._osp))
            )
        if s_bound:
            return self._size / len(self._spo)
        if o_bound:
            return self._size / len(self._osp)
        return float(self._size)

    def predicate_count(self) -> int:
        """Number of distinct predicates currently in the store."""
        return len(self._pos)

    def subjects(self, p: Term | None = None, o: Term | None = None
                 ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, p, o)``."""
        seen: set[Term] = set()
        for s, _, _ in self.triples(None, p, o):
            if s not in seen:
                seen.add(s)
                yield s

    def objects(self, s: Term | None = None, p: Term | None = None
                ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(s, p, ?)``."""
        seen: set[Term] = set()
        for _, _, o in self.triples(s, p, None):
            if o not in seen:
                seen.add(o)
                yield o

    def predicates(self) -> Iterator[Term]:
        """All distinct predicates in the store."""
        return iter(self._pos.keys())

    def value(self, s: Term | None = None, p: Term | None = None,
              o: Term | None = None) -> Term | None:
        """The single term completing the pattern, or None.

        Exactly one of the three positions must be left open.
        """
        open_positions = [x is None for x in (s, p, o)]
        if sum(open_positions) != 1:
            raise ValueError("value() requires exactly one open position")
        for triple in self.triples(s, p, o):
            return triple[open_positions.index(True)]
        return None

    # -- pythonic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return self.contains(s, p, o)

    def copy(self) -> "TripleStore":
        """A shallow copy (terms are immutable, so this is a full copy).

        The clone is always mutable, even when the source is frozen.
        """
        clone = TripleStore(self.triples())
        clone.prefixes = dict(self.prefixes)
        return clone
