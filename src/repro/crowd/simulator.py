"""The simulated crowd population.

Each member has a latent personal value for every fact-set — their own
habit frequency or agreement level — drawn deterministically around the
ground-truth support.  Determinism matters twice: experiments are
reproducible under a seed, and a member asked the same question twice
gives the same answer (as a consistent human would).

The sampling model: member ``m``'s personal value for fact-set ``f``
with true support ``s`` is::

    value = clip(s + bias_m + noise_{m,f}, 0, 1)

where ``bias_m ~ N(0, noise/2)`` is the member's disposition (some
people do everything more) and ``noise_{m,f} ~ N(0, noise)`` is
idiosyncratic.  With ``noise -> 0`` every member reports the truth; the
experiments sweep it.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass

import numpy as np

from repro.crowd.model import FactSet, GroundTruth

__all__ = ["CrowdMember", "SimulatedCrowd"]


def _unit_gaussian(*key_parts: object) -> float:
    """A deterministic standard-normal draw keyed by ``key_parts``.

    Hash-based so that (member, fact-set) pairs can be sampled lazily in
    any order and still reproduce.
    """
    digest = hashlib.sha256(
        "\x1f".join(str(p) for p in key_parts).encode("utf-8")
    ).digest()
    # Two 32-bit uniforms -> one Box-Muller normal.
    a, b = struct.unpack("<II", digest[:8])
    u1 = (a + 1) / 4294967297.0
    u2 = (b + 1) / 4294967297.0
    return float(np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2))


@dataclass(frozen=True)
class CrowdMember:
    """One simulated crowd member."""

    member_id: int
    bias: float

    def personal_value(
        self, fact_set: FactSet, truth: float, noise: float, seed: int
    ) -> float:
        """The member's latent frequency/agreement for ``fact_set``."""
        idiosyncratic = noise * _unit_gaussian(
            seed, self.member_id, fact_set.key()
        )
        return float(np.clip(truth + self.bias + idiosyncratic, 0.0, 1.0))


class SimulatedCrowd:
    """A population of crowd members over a ground truth.

    Args:
        ground_truth: true support per fact-set.
        size: population size.
        noise: answer noise level (std of the idiosyncratic term).
        seed: determinism seed.
    """

    def __init__(
        self,
        ground_truth: GroundTruth,
        size: int = 100,
        noise: float = 0.1,
        seed: int = 0,
    ):
        if size <= 0:
            raise ValueError("crowd size must be positive")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.ground_truth = ground_truth
        self.size = size
        self.noise = noise
        self.seed = seed
        self._members = [
            CrowdMember(
                member_id=i,
                bias=(noise / 2.0) * _unit_gaussian(seed, "bias", i),
            )
            for i in range(size)
        ]
        # Wrappers (ResilientCrowd, ChaosCrowd) and concurrent engine
        # evaluations may ask from several threads; `+= 1` on a plain
        # int drops increments under contention, so the counter is
        # guarded.  Answers themselves are pure hashes and need none.
        self._count_lock = threading.Lock()
        self.questions_asked = 0

    # -- engine-facing API -------------------------------------------------------

    def members(self) -> list[CrowdMember]:
        return list(self._members)

    def member(self, member_id: int) -> CrowdMember:
        return self._members[member_id]

    def ask(self, member: CrowdMember, fact_set: FactSet) -> float:
        """Ask one member about one fact-set; returns a value in [0, 1].

        The answer is the member's latent personal value — how often
        they engage in the habit, or how strongly they agree.
        """
        with self._count_lock:
            self.questions_asked += 1
        truth = self.ground_truth.support(fact_set)
        return member.personal_value(
            fact_set, truth, self.noise, self.seed
        )

    def true_support(self, fact_set: FactSet) -> float:
        """Ground-truth support (for evaluation only, not the engine)."""
        return self.ground_truth.support(fact_set)

    def population_support(self, fact_set: FactSet) -> float:
        """The full-population mean answer (the estimable quantity)."""
        truth = self.ground_truth.support(fact_set)
        values = [
            m.personal_value(fact_set, truth, self.noise, self.seed)
            for m in self._members
        ]
        return float(np.mean(values))

    def reset_counters(self) -> None:
        with self._count_lock:
            self.questions_asked = 0
