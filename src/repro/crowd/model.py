"""Fact-sets and crowd ground truth.

A *fact-set* (paper Section 2.1) is the unit the crowd is asked about: a
set of ground triples describing a single habit or opinion, e.g.
``{[] visit Delaware_Park. [] in Fall}`` or
``{Delaware_Park hasLabel "interesting"}``.  Its *support* is "a habit
frequency or a level of agreement to a statement, aggregated from the
answers of several crowd members".

:class:`GroundTruth` maps fact-sets to their true support — the latent
quantity the simulated crowd's answers are sampled around, and the
reference the evaluation harness scores against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oassisql.ast import Anything, QueryTriple
from repro.rdf.ontology import Ontology
from repro.rdf.terms import IRI, Literal

__all__ = ["FactSet", "GroundTruth", "verbalize_fact_set"]


def _term_key(term) -> str:
    if isinstance(term, Anything):
        return "[]"
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, Literal):
        return f'"{term.value}"'
    raise TypeError(f"fact-set terms must be ground, got {term!r}")


@dataclass(frozen=True)
class FactSet:
    """A canonical, hashable set of ground triples.

    Build one from OASSIS-QL triples whose variables have been bound;
    only IRIs, literals and ``[]`` may remain.
    """

    triples: tuple[QueryTriple, ...]

    def __post_init__(self):
        canonical = tuple(sorted(
            self.triples,
            key=lambda t: tuple(_term_key(x) for x in t.terms()),
        ))
        object.__setattr__(self, "triples", canonical)

    def key(self) -> str:
        """A stable string key (used for seeding and ground truth)."""
        return " & ".join(
            " ".join(_term_key(x) for x in t.terms())
            for t in self.triples
        )

    def __hash__(self) -> int:
        return hash(self.key())

    def __eq__(self, other) -> bool:
        return isinstance(other, FactSet) and self.key() == other.key()

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.key()


@dataclass
class GroundTruth:
    """True support per fact-set, with a default for unlisted ones.

    The default models the long tail: most arbitrary habit patterns have
    a small but nonzero support in a real crowd.
    """

    supports: dict[FactSet, float] = field(default_factory=dict)
    default: float = 0.02

    def support(self, fact_set: FactSet) -> float:
        return self.supports.get(fact_set, self.default)

    def set(self, fact_set: FactSet, support: float) -> None:
        if not 0.0 <= support <= 1.0:
            raise ValueError(f"support must be in [0, 1], got {support}")
        self.supports[fact_set] = support

    def __len__(self) -> int:
        return len(self.supports)


def verbalize_fact_set(
    fact_set: FactSet, ontology: Ontology | None = None
) -> str:
    """Render a fact-set as the crowd-task question a member would see.

    Habit fact-sets ("[] visit X [& [] in Fall]") become "How often do
    you visit X (in Fall)?"; opinion fact-sets ("X hasLabel L") become
    "Would you say that X is L?".  This mirrors the tasks the OASSIS UI
    generates in the demo's second stage.
    """
    def name(term) -> str:
        if isinstance(term, Anything):
            return "you"
        if isinstance(term, IRI):
            if ontology is not None:
                return ontology.label_of(term)
            return term.local_name.replace("_", " ")
        return str(term)

    opinion = next(
        (t for t in fact_set.triples
         if isinstance(t.p, IRI) and t.p.local_name == "hasLabel"),
        None,
    )
    if opinion is not None:
        return (
            f"Would you say that {name(opinion.s)} is "
            f"\"{opinion.o}\"?"
        )

    prepositions = {"in", "on", "at", "for", "during", "with", "to"}
    habit_triples = [
        t for t in fact_set.triples if isinstance(t.s, Anything)
    ]
    main = next(
        (t for t in habit_triples
         if isinstance(t.p, IRI) and t.p.local_name not in prepositions),
        habit_triples[0] if habit_triples else fact_set.triples[0],
    )
    verb = main.p.local_name if isinstance(main.p, IRI) else str(main.p)
    parts = [f"How often do you {verb} {name(main.o)}"]
    for t in fact_set.triples:
        if t is main:
            continue
        prep = t.p.local_name if isinstance(t.p, IRI) else str(t.p)
        parts.append(f"{prep} {name(t.o)}")
    return " ".join(parts) + "?"
