"""Simulated crowd: the population OASSIS mines instead of web users.

The paper's demo posts crowd tasks to real people through the OASSIS
UI.  Offline, we simulate the crowd: a population of members, each with
a latent personal frequency/agreement value for every fact-set, sampled
around a configurable ground truth.  This preserves the engine-facing
behaviour (ask a member about a fact-set, get a noisy answer) while
making experiments deterministic and ground-truth-evaluable.
"""

from repro.crowd.model import FactSet, GroundTruth, verbalize_fact_set
from repro.crowd.simulator import CrowdMember, SimulatedCrowd

__all__ = [
    "FactSet",
    "GroundTruth",
    "verbalize_fact_set",
    "CrowdMember",
    "SimulatedCrowd",
]
