"""Ready-made crowd scenarios for the demo domains.

Each scenario builds a :class:`~repro.crowd.model.GroundTruth` for one
of the paper's settings — the Buffalo travelers, the Vegas thrill-ride
question, the dietician's fiber study — so examples and benchmarks can
run end-to-end with known right answers.
"""

from __future__ import annotations

from repro.crowd.model import FactSet, GroundTruth
from repro.oassisql.ast import ANYTHING, QueryTriple
from repro.rdf.ontology import KB
from repro.rdf.terms import IRI, Literal

__all__ = [
    "habit_fact_set",
    "opinion_fact_set",
    "buffalo_travel_truth",
    "vegas_rides_truth",
    "dietician_truth",
]


def habit_fact_set(
    verb: str, target: IRI, context: tuple[str, IRI] | None = None
) -> FactSet:
    """``{[] <verb> <target> [. [] <prep> <context>]}``."""
    triples = [QueryTriple(ANYTHING, KB[verb], target)]
    if context is not None:
        prep, entity = context
        triples.append(QueryTriple(ANYTHING, KB[prep], entity))
    return FactSet(tuple(triples))


def opinion_fact_set(target: IRI, label: str) -> FactSet:
    """``{<target> hasLabel "<label>"}``."""
    return FactSet((QueryTriple(target, KB.hasLabel, Literal(label)),))


def buffalo_travel_truth() -> GroundTruth:
    """The running example's world: Buffalo sights in the fall.

    Interestingness opinions and fall-visiting habits are set so that
    the "most interesting places to visit in the fall" have a clear
    ground-truth answer: Delaware Park and the Zoo lead, Anchor Bar
    trails, Elmwood Village is liked but rarely visited in fall.
    """
    truth = GroundTruth(default=0.02)
    interesting = {
        "Delaware_Park": 0.82,
        "Buffalo_Zoo": 0.74,
        "Albright_Knox_Art_Gallery": 0.66,
        "Buffalo_Museum_of_Science": 0.48,
        "Elmwood_Village": 0.58,
        "Anchor_Bar": 0.35,
    }
    fall_visit = {
        "Delaware_Park": 0.55,
        "Buffalo_Zoo": 0.38,
        "Albright_Knox_Art_Gallery": 0.33,
        "Buffalo_Museum_of_Science": 0.25,
        # Clearly below the demo's 0.1 threshold even under answer
        # noise (clipping at 0 inflates near-zero supports slightly).
        "Elmwood_Village": 0.03,
        "Anchor_Bar": 0.22,
    }
    for name, support in interesting.items():
        truth.set(opinion_fact_set(KB[name], "interesting"), support)
    for name, support in fall_visit.items():
        truth.set(
            habit_fact_set("visit", KB[name], ("in", KB.Fall)), support
        )
    return truth


def vegas_rides_truth() -> GroundTruth:
    """Goodness opinions about the Vegas thrill rides."""
    truth = GroundTruth(default=0.05)
    goodness = {
        "Big_Shot": 0.78,
        "X_Scream": 0.62,
        "Big_Apple_Coaster": 0.70,
        "Adventuredome_Canyon_Blaster": 0.44,
    }
    for name, support in goodness.items():
        truth.set(opinion_fact_set(KB[name], "good"), support)
    return truth


def dietician_truth() -> GroundTruth:
    """Eating habits for the dietician's fiber-rich-breakfast study."""
    truth = GroundTruth(default=0.03)
    breakfast = {
        "Oatmeal": 0.62,
        "Lentil_Soup": 0.07,
        "Hummus": 0.18,
        "Black_Bean_Burrito": 0.12,
        "Quinoa_Salad": 0.09,
        "Cheeseburger": 0.04,
        "Sushi": 0.02,
    }
    for name, support in breakfast.items():
        truth.set(
            habit_fact_set("eat", KB[name], ("for", KB.Breakfast)),
            support,
        )
    return truth
