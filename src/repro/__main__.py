"""Command-line interface: translate questions from the terminal.

Usage::

    python -m repro "Where do you go hiking in the winter?"
    python -m repro --interactive           # prompt loop
    python -m repro --admin "question"      # show the module trace
    python -m repro --execute "question"    # also run it on the demo crowd
    python -m repro --batch questions.txt   # concurrent batch translation

The demo crowd merges the three packaged scenarios (Buffalo travel,
Vegas rides, the dietician's study) with a small default support for
everything else.

Batch mode reads one question per line (blank lines and ``#`` comments
skipped), translates them through the caching
:class:`~repro.service.TranslationService` with ``--workers`` threads,
and prints each query; ``--admin`` appends the service stats panel.

Static analysis (exit status 1 when any ERROR-level diagnostic fires)::

    python -m repro --lint query.oql        # one saved OASSIS-QL query
    python -m repro --lint questions.txt    # translate + lint each line
    python -m repro --lint-patterns         # the IX pattern bank
    python -m repro --lint-kb               # every embedded KB snapshot
    python -m repro --lint-pack packs/demo  # one scenario-pack directory
    python -m repro --lint q.oql --lint-report counts.json

``--lint`` sniffs the file: if the first non-comment line starts with
``SELECT`` it is a query file, otherwise a question batch.  All four
lint flags compose: their reports merge into one run with one exit
status (0 clean, 1 any ERROR diagnostic, 2 unreadable input) and one
``--lint-report`` JSON artifact with per-rule counts keyed by analyzer
family.

Accuracy scoring (see ``docs/scenarios.md``)::

    python -m repro --score                      # every builtin pack
    python -m repro --score --pack packs/demo    # one pack directory
    python -m repro --score --json accuracy.json # also write artifact

``--score`` runs the per-domain accuracy harness
(:mod:`repro.eval.accuracy`) over every builtin scenario pack (or the
one named by ``--pack``): POS accuracy with a known/unknown split and
confusion matrix, dependency UAS/LAS, and gold-query translation
quality — each computed for both the rules tagger and the trained
perceptron, so the two can be A/B-compared.

Query planning (see ``docs/performance.md``)::

    python -m repro --explain query.oql      # join order + cardinalities
    python -m repro --explain questions.txt  # translate, then explain
    python -m repro --planner greedy --execute "question"   # A/B

``--explain`` sniffs the file like ``--lint`` and prints one plan panel
per query: the chosen join order, estimated vs. actual per-step
cardinalities, and whether the request hit the plan cache.  The
``--planner`` mode ("cost" by default) selects the WHERE-clause
evaluator for translation and ``--execute``.

Observability (see ``docs/observability.md``)::

    python -m repro --batch q.txt --metrics-out metrics.prom
    python -m repro --interactive --serve-metrics 9464
    python -m repro --batch q.txt --slow-log 50   # dump traces > 50 ms

Every translation goes through one shared
:class:`~repro.service.TranslationService`, so ``--metrics-out``
(Prometheus text file at exit), ``--serve-metrics`` (live ``/metrics``
endpoint) and ``--slow-log`` (span trees of slow translations, to
stderr at exit) observe single-question, interactive and batch modes
alike.

Sharded serving (see ``docs/serving.md``)::

    python -m repro --serve --port 8080 --shards 4
    python -m repro --serve --port 0 --shards 2 --max-pending 16

``--serve`` starts the multi-process serving tier: an HTTP/JSON
front-end (``POST /translate``, ``POST /batch``, ``POST /lint``,
``GET /stats``, ``GET /healthz``, ``GET /metrics``) over ``--shards``
worker processes routed by consistent hash of the normalized question.
SIGTERM/SIGINT drains in-flight requests, prints the final serving
panel to stderr, flushes ``--metrics-out`` and joins the workers.

Fault tolerance (see ``docs/resilience.md``)::

    python -m repro --batch q.txt --retries 3
    python -m repro --batch q.txt --stage-timeout-ms 500
    python -m repro --batch q.txt --inject-faults rate=0.3,seed=7 --admin

``--retries`` turns on the resilience layer: interaction failures are
retried with deterministic backoff behind a circuit breaker and then
answered from defaults (flagged ``degraded`` in the batch output and
counted in the stats panel).  ``--inject-faults`` wires the
deterministic chaos harness under the retry layer.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import (
    EngineConfig,
    NL2CM,
    OassisEngine,
    SimulatedCrowd,
    VerificationError,
)
from repro.crowd.model import GroundTruth
from repro.crowd.scenarios import (
    buffalo_travel_truth,
    dietician_truth,
    vegas_rides_truth,
)
from repro.data.ontologies import load_merged_ontology
from repro.errors import ReproError
from repro.obs import MetricsRegistry, SlowQueryLog
from repro.resilience import FaultPlan, ResilienceConfig
from repro.service import TranslationService
from repro.ui.interaction import ConsoleInteraction


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NL2CM: translate NL questions into OASSIS-QL "
                    "crowd-mining queries.",
    )
    parser.add_argument("question", nargs="*",
                        help="the question to translate")
    parser.add_argument("--interactive", action="store_true",
                        help="answer clarification dialogs on stdin")
    parser.add_argument("--admin", action="store_true",
                        help="print the admin-mode module trace")
    parser.add_argument("--execute", action="store_true",
                        help="run the query on the packaged demo crowd")
    parser.add_argument("--crowd-size", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch", metavar="FILE",
                        help="translate every question in FILE "
                             "(one per line) concurrently")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread count for --batch (default 4)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="translation cache capacity for --batch "
                             "(0 disables caching)")
    parser.add_argument("--explain", metavar="FILE",
                        help="show the query plan of FILE (an "
                             "OASSIS-QL query, or a question batch to "
                             "translate first): join order, estimated "
                             "vs. actual cardinalities, plan-cache "
                             "outcome")
    parser.add_argument("--planner", choices=("cost", "greedy"),
                        default="cost",
                        help="BGP evaluator for WHERE clauses: "
                             "'cost' (statistics-ordered cached plans, "
                             "default) or 'greedy' (per-call "
                             "re-scoring, for A/B comparison)")
    parser.add_argument("--lint", metavar="FILE",
                        help="statically analyze FILE (an OASSIS-QL "
                             "query, or a question batch to translate "
                             "and lint); exit 1 on errors")
    parser.add_argument("--lint-patterns", action="store_true",
                        help="statically analyze the IX detection "
                             "pattern bank; exit 1 on errors")
    parser.add_argument("--lint-kb", action="store_true",
                        help="statically analyze every embedded "
                             "ontology snapshot plus the default "
                             "scenario pack; exit 1 on errors")
    parser.add_argument("--lint-pack", metavar="DIR",
                        help="statically analyze the scenario pack in "
                             "DIR (*.ttl + patterns.txt + optional "
                             "vocabularies/ and corpus.json); exit 1 "
                             "on errors")
    parser.add_argument("--lint-report", metavar="FILE",
                        help="also write the diagnostic counts of a "
                             "lint run to FILE as JSON")
    parser.add_argument("--score", action="store_true",
                        help="run the per-domain accuracy harness "
                             "(POS/parse/translation vs. gold) over "
                             "every builtin scenario pack")
    parser.add_argument("--pack", metavar="DIR",
                        help="with --score: score only the scenario "
                             "pack in DIR instead of the builtin "
                             "packs")
    parser.add_argument("--json", metavar="FILE", dest="json_out",
                        help="with --score: also write the accuracy "
                             "report to FILE as JSON")
    parser.add_argument("--serve", action="store_true",
                        help="serve translations over HTTP from a "
                             "multi-process worker tier (see "
                             "docs/serving.md)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --serve "
                             "(default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port for --serve (0 picks a free "
                             "port, printed to stderr)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker-process count for --serve "
                             "(default 2)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="per-shard admission limit for --serve; "
                             "beyond it requests are shed with "
                             "HTTP 429 (default 64)")
    parser.add_argument("--warmup-keys", type=int, default=64,
                        help="hot cache entries replayed into a "
                             "restarted worker before it rejoins the "
                             "ring (default 64; 0 disables warm "
                             "restarts)")
    parser.add_argument("--start-method",
                        choices=("spawn", "fork", "forkserver",
                                 "thread"),
                        default="spawn",
                        help="worker start method for --serve "
                             "('thread' runs workers in-process — "
                             "debugging only, no CPU scaling)")
    parser.add_argument("--request-timeout", type=float, default=30.0,
                        metavar="S",
                        help="per-request front-end deadline for "
                             "--serve, in seconds (default 30)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write Prometheus text-format metrics to "
                             "FILE on exit")
    parser.add_argument("--serve-metrics", metavar="PORT", type=int,
                        help="serve live /metrics on PORT (0 picks a "
                             "free port, printed to stderr)")
    parser.add_argument("--slow-log", metavar="MS", type=float,
                        help="log translations slower than MS "
                             "milliseconds; span trees are dumped to "
                             "stderr on exit")
    parser.add_argument("--retries", type=int, default=None,
                        metavar="N",
                        help="enable the resilience layer: retry "
                             "failing interactions N times, then "
                             "degrade to defaults")
    parser.add_argument("--stage-timeout-ms", type=float, default=None,
                        metavar="MS",
                        help="per-stage pipeline deadline; a stage "
                             "that overruns fails the translation "
                             "with DeadlineExceeded")
    parser.add_argument("--inject-faults", metavar="SPEC",
                        type=FaultPlan.parse, default=None,
                        help="deterministic fault injection for chaos "
                             "testing, e.g. 'rate=0.3,seed=7' or "
                             "'indices=0:2,error=runtime' (implies "
                             "the resilience layer)")
    return parser


def demo_engine(ontology, size: int, seed: int,
                registry: MetricsRegistry | None = None,
                planner: str | None = None) -> OassisEngine:
    truth = GroundTruth(default=0.05)
    for scenario in (buffalo_travel_truth(), vegas_rides_truth(),
                     dietician_truth()):
        truth.supports.update(scenario.supports)
    crowd = SimulatedCrowd(truth, size=size, noise=0.08, seed=seed)
    return OassisEngine(ontology, crowd, EngineConfig(),
                        registry=registry, planner=planner)


def run_question(service: TranslationService, args, question: str,
                 engine: OassisEngine | None) -> int:
    try:
        result = service.translate(question)
    except VerificationError as err:
        print(f"not supported: {err}", file=sys.stderr)
        for tip in err.tips:
            print(f"  tip: {tip}", file=sys.stderr)
        return 2
    except ReproError as err:
        print(f"translation failed: {err}", file=sys.stderr)
        return 1

    if args.admin:
        print(result.trace.render())
    else:
        print(result.query_text)

    if engine is not None:
        print()
        execution = engine.evaluate(result.query)
        print(f"# crowd tasks: {execution.tasks_used}")
        ontology = service.nl2cm.ontology
        for outcome in execution.accepted:
            rendered = ", ".join(
                f"${name} = {ontology.label_of(term)}"
                if hasattr(term, "local_name") else f"${name} = {term}"
                for name, term in sorted(outcome.binding.items())
            ) or "(boolean: pattern is significant)"
            supports = ", ".join(
                f"{s:.2f}" for s in outcome.supports.values()
            )
            print(f"  {rendered}  [support {supports}]")
        if not execution.accepted:
            print("  (no significant bindings)")
    return 0


def run_batch(service: TranslationService, args) -> int:
    from repro.ui.admin import render_service_stats

    path = Path(args.batch)
    try:
        lines = path.read_text("utf-8").splitlines()
    except OSError as err:
        print(f"cannot read batch file: {err}", file=sys.stderr)
        return 2
    questions = [
        line.strip() for line in lines
        if line.strip() and not line.lstrip().startswith("#")
    ]
    if not questions:
        print("batch file contains no questions", file=sys.stderr)
        return 2

    items = service.translate_batch(questions)
    failed = 0
    for item in items:
        print(f"# {item.text}")
        if item.ok:
            if item.degraded:
                print("# degraded: some interactions were answered "
                      "with defaults after provider failures")
            print(item.query_text)
        else:
            failed += 1
            print(f"error: {item.error}")
        print()
    if args.admin:
        print(render_service_stats(service.stats()))
    return 1 if failed else 0


def _looks_like_query(text: str) -> bool:
    """True when the first non-comment line is an OASSIS-QL SELECT."""
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        return stripped.upper().startswith("SELECT")
    return False


def run_lint(args) -> int:
    import json

    from repro.analysis import (
        LintOutcome,
        lint_knowledge_base,
        lint_pattern_bank,
        lint_query_source,
        lint_questions,
        lint_scenario_pack,
    )

    outcome = LintOutcome()
    if args.lint_patterns:
        outcome.merge(lint_pattern_bank())
    if args.lint_kb:
        outcome.merge(lint_knowledge_base())
    if args.lint_pack:
        from repro.data.scenario import load_pack
        from repro.errors import ScenarioPackError

        try:
            pack = load_pack(args.lint_pack)
        except (OSError, ScenarioPackError) as err:
            print(f"cannot load scenario pack: {err}", file=sys.stderr)
            return 2
        outcome.merge(lint_scenario_pack(pack))
    if args.lint:
        path = Path(args.lint)
        try:
            text = path.read_text("utf-8")
        except OSError as err:
            print(f"cannot read lint file: {err}", file=sys.stderr)
            return 2
        if _looks_like_query(text):
            sub = lint_query_source(
                text,
                ontology=load_merged_ontology(),
                subject=path.name,
            )
        else:
            questions = [
                line.strip() for line in text.splitlines()
                if line.strip() and not line.lstrip().startswith("#")
            ]
            if not questions:
                print("lint file contains no questions", file=sys.stderr)
                return 2
            sub = lint_questions(
                questions, NL2CM(ontology=load_merged_ontology())
            )
        outcome.merge(sub)
    print(outcome.render())
    if args.lint_report:
        try:
            Path(args.lint_report).write_text(
                json.dumps(outcome.counts(), indent=2) + "\n", "utf-8"
            )
        except OSError as err:
            print(f"cannot write lint report: {err}", file=sys.stderr)
            return 2
    return outcome.exit_code


def run_score(args) -> int:
    from repro.data.scenario import load_pack
    from repro.errors import ScenarioPackError
    from repro.eval.accuracy import evaluate_accuracy

    packs = None
    if args.pack:
        try:
            packs = [load_pack(args.pack)]
        except ScenarioPackError as err:
            print(f"cannot load scenario pack: {err}", file=sys.stderr)
            return 2
    report = evaluate_accuracy(packs)
    print(report.format())
    if args.json_out:
        try:
            report.write_json(args.json_out)
        except OSError as err:
            print(f"cannot write {args.json_out}: {err}",
                  file=sys.stderr)
            return 2
    return 0


def run_explain(args) -> int:
    from repro.oassis.engine import OassisEngine
    from repro.oassisql import parse_oassisql
    from repro.rdf.planner import QueryPlanner
    from repro.ui.admin import render_plan

    path = Path(args.explain)
    try:
        text = path.read_text("utf-8")
    except OSError as err:
        print(f"cannot read explain file: {err}", file=sys.stderr)
        return 2
    ontology = load_merged_ontology()
    if _looks_like_query(text):
        try:
            queries = [(path.name, parse_oassisql(text))]
        except ReproError as err:
            print(f"cannot parse query: {err}", file=sys.stderr)
            return 1
    else:
        questions = [
            line.strip() for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
        if not questions:
            print("explain file contains no questions", file=sys.stderr)
            return 2
        nl2cm = NL2CM(ontology=ontology, planner=args.planner)
        queries = []
        for question in questions:
            try:
                queries.append(
                    (question, nl2cm.translate(question).query)
                )
            except ReproError as err:
                print(f"cannot translate {question!r}: {err}",
                      file=sys.stderr)
                return 1
    # One planner across the file, so repeated query shapes show up as
    # plan-cache hits in the panel.
    planner = QueryPlanner()
    for subject, query in queries:
        patterns = [OassisEngine._to_pattern(t) for t in query.where]
        print(f"# {subject}")
        print(render_plan(planner.explain(ontology.store, patterns)))
        print()
    return 0


def run_serve(args) -> int:
    """The ``--serve`` loop: tier up, wait for a signal, drain down.

    Shutdown order matters and is the graceful-drain contract: the HTTP
    server stops accepting and joins its in-flight handlers first (so
    every accepted request gets its response), the final stats panel
    and ``--metrics-out`` flush are taken while the workers still
    answer, and only then are the workers told to shut down and joined.
    """
    import signal
    import threading

    from repro.serving import HTTPFrontend, ShardManager, WorkerSpec
    from repro.ui.admin import render_serving_stats

    spec = WorkerSpec(
        planner=args.planner,
        cache_size=args.cache_size,
        retries=args.retries,
        seed=args.seed,
        faults=args.inject_faults,
        stage_timeout_ms=args.stage_timeout_ms,
        slow_log_ms=args.slow_log,
    )
    try:
        manager = ShardManager(
            max(1, args.shards),
            spec,
            start_method=args.start_method,
            max_pending=args.max_pending,
            request_timeout=args.request_timeout,
            warmup_keys=args.warmup_keys,
        )
    except ReproError as err:
        print(f"cannot start the worker tier: {err}", file=sys.stderr)
        return 1
    frontend = HTTPFrontend(manager, host=args.host, port=args.port)

    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
    }
    print(
        f"serving {manager.shards} shard(s) on {frontend.address} "
        f"(SIGTERM or ^C to drain and stop)",
        file=sys.stderr,
    )
    status = 0
    try:
        stop.wait()
    finally:
        frontend.close()          # stop accepting, drain handlers
        final = None
        try:
            final = manager.stats()
        except ReproError:        # a shard died during drain
            status = 1
        if args.metrics_out:
            try:
                Path(args.metrics_out).write_text(
                    manager.registry.expose(), "utf-8"
                )
            except OSError as err:
                print(
                    f"cannot write metrics file: {err}", file=sys.stderr
                )
                status = 2
        manager.close()           # workers drain + join last
        if final is not None:
            print(render_serving_stats(final), file=sys.stderr)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return status


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.lint or args.lint_patterns or args.lint_kb or args.lint_pack:
        return run_lint(args)
    if args.score:
        return run_score(args)
    if args.explain:
        return run_explain(args)
    if args.serve:
        return run_serve(args)

    interaction = ConsoleInteraction() if args.interactive else None
    ontology = load_merged_ontology()
    nl2cm = NL2CM(ontology=ontology, interaction=interaction,
                  planner=args.planner,
                  stage_timeout_ms=args.stage_timeout_ms)

    registry = MetricsRegistry()
    slow_log = (
        SlowQueryLog(threshold_ms=args.slow_log)
        if args.slow_log is not None else None
    )
    resilience = None
    if args.retries is not None or args.inject_faults is not None:
        resilience = ResilienceConfig(
            retries=args.retries if args.retries is not None else 3,
            seed=args.seed,
            faults=args.inject_faults,
        )
    service = TranslationService(
        nl2cm,
        workers=max(1, args.workers),
        cache=args.cache_size if args.cache_size > 0 else None,
        registry=registry,
        slow_log=slow_log,
        resilience=resilience,
    )
    engine = (
        demo_engine(ontology, args.crowd_size, args.seed,
                    registry=registry, planner=args.planner)
        if args.execute else None
    )

    server = None
    if args.serve_metrics is not None:
        from repro.obs import start_metrics_server

        server = start_metrics_server(registry, port=args.serve_metrics)
        print(
            f"serving /metrics on port {server.server_address[1]}",
            file=sys.stderr,
        )

    try:
        if args.batch:
            status = run_batch(service, args)
        elif args.question:
            status = run_question(
                service, args, " ".join(args.question), engine
            )
        else:
            print("NL2CM — type a question (empty line to quit)")
            status = 0
            while True:
                try:
                    line = input("? ").strip()
                except EOFError:
                    break
                if not line:
                    break
                status = run_question(service, args, line, engine)
    finally:
        if slow_log is not None and slow_log.seen:
            print(slow_log.render(), file=sys.stderr)
        if args.metrics_out:
            try:
                Path(args.metrics_out).write_text(
                    registry.expose(), "utf-8"
                )
            except OSError as err:
                print(
                    f"cannot write metrics file: {err}", file=sys.stderr
                )
                status = 2
        if server is not None:
            server.shutdown()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
