"""Baseline B1: general-only translation (no crowd mining).

Runs the same parsing and general-query-generation machinery as NL2CM
but skips IX detection, individual triple creation and the SATISFYING
clause entirely — producing the plain SPARQL-equivalent query an
off-the-shelf NL interface would.  Individual information needs are
silently dropped, which is exactly the gap experiment E7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compose import _VariableAllocator
from repro.core.verification import Verifier
from repro.data.ontologies import load_merged_ontology
from repro.errors import CompositionError, VerificationError
from repro.freya.generator import GeneralQueryGenerator
from repro.nlp.depparse import DependencyParser
from repro.nlp.graph import DepGraph
from repro.oassisql.ast import OassisQuery, QueryTriple, SelectClause
from repro.oassisql.printer import print_oassisql
from repro.rdf.ontology import Ontology
from repro.ui.interaction import AutoInteraction, InteractionProvider

__all__ = ["GeneralOnlyTranslator", "GeneralOnlyResult"]


@dataclass
class GeneralOnlyResult:
    """The baseline's output."""

    text: str
    query: OassisQuery
    query_text: str
    graph: DepGraph


class GeneralOnlyTranslator:
    """NL-to-SPARQL with no notion of individual information needs."""

    def __init__(
        self,
        ontology: Ontology | None = None,
        interaction: InteractionProvider | None = None,
    ):
        self.ontology = ontology or load_merged_ontology()
        self.interaction = interaction or AutoInteraction()
        self.verifier = Verifier()
        self.parser = DependencyParser()
        self.generator = GeneralQueryGenerator(self.ontology)

    def translate(self, text: str) -> GeneralOnlyResult:
        """Translate the general parts only; SATISFYING is always empty.

        Raises:
            VerificationError: for unsupported question forms.
            CompositionError: when not even a general query part can be
                derived (common for habit-only questions — the baseline
                has nothing to say about them).
        """
        verification = self.verifier.verify(text)
        if not verification.ok:
            raise VerificationError(
                verification.message, tips=verification.tips
            )
        graph = self.parser.parse(text)
        general = self.generator.generate(graph, self.interaction)
        if not general.triples:
            raise CompositionError(
                "the general-only baseline derived no query parts"
            )
        allocator = _VariableAllocator(general)
        where = tuple(
            QueryTriple(
                allocator.resolve(t.s),
                allocator.resolve(t.p),
                allocator.resolve(t.o),
            )
            for t in general.triples
        )
        query = OassisQuery(
            select=SelectClause(), where=where, satisfying=()
        )
        query.validate()
        return GeneralOnlyResult(
            text=text,
            query=query,
            query_text=print_oassisql(query),
            graph=graph,
        )
