"""Baselines B2 and B3: weaker IX detectors.

Both expose ``detect_anchors(graph) -> set[str]`` (lower-cased anchor
words), the interface the IX-detection-quality experiment scores.
"""

from __future__ import annotations

from repro.core.ixdetect import IXDetector, load_default_patterns
from repro.data.ontologies import load_merged_ontology
from repro.data.vocabularies import load_vocabularies
from repro.nlp.graph import DepGraph, DepNode
from repro.rdf.ontology import Ontology

__all__ = ["SentimentOnlyDetector", "KBMismatchDetector",
           "full_detector_anchors"]

# Words that are never individual anchors regardless of KB coverage.
_FUNCTION_TAGS = ("DT", "IN", "TO", "CC", "MD", "PRP", "PRP$", "WDT",
                  "WP", "WRB", "EX", "POS", "RP", "UH", "PDT")


def full_detector_anchors(graph: DepGraph,
                          detector: IXDetector | None = None) -> set[str]:
    """NL2CM's own anchors, for comparison."""
    detector = detector or IXDetector()
    return {ix.anchor.lower for ix in detector.detect(graph)}


class SentimentOnlyDetector:
    """B2: only sentiment/subjectivity words are individual.

    Related work "considers identifying expressions of sentiment or
    subjectivity in texts, but these expressions are only a subset of
    individual expressions.  For instance, they do not capture
    individual habits" (paper Section 2.3).  Implemented by running
    only the ``lexical_opinion`` pattern.
    """

    def __init__(self):
        patterns = [
            p for p in load_default_patterns() if p.ix_type == "lexical"
        ]
        self._detector = IXDetector(
            patterns=patterns, vocabularies=load_vocabularies()
        )

    def detect_anchors(self, graph: DepGraph) -> set[str]:
        return {ix.anchor.lower for ix in self._detector.detect(graph)}


class KBMismatchDetector:
    """B3: whatever fails to match the knowledge base is individual.

    The naïve strategy the introduction rules out: "checking which
    parts of the query do not match to the knowledge base cannot
    facilitate this task since most knowledge bases are incomplete."
    Every content word without an ontology match is flagged — so
    general words a finite KB happens to miss become false positives,
    and individual words the KB happens to contain (e.g. a place called
    "Fall") are missed.
    """

    def __init__(self, ontology: Ontology | None = None,
                 threshold: float = 0.8):
        self.ontology = ontology or load_merged_ontology()
        self.threshold = threshold

    def detect_anchors(self, graph: DepGraph) -> set[str]:
        anchors: set[str] = set()
        for node in graph.nodes():
            if not node.is_word or node.tag in _FUNCTION_TAGS:
                continue
            if self._in_kb(node):
                continue
            anchors.add(node.lower)
        return anchors

    def _in_kb(self, node: DepNode) -> bool:
        for phrase in (node.lower, node.lemma):
            matches = self.ontology.lookup(phrase)
            if matches and matches[0].score >= self.threshold:
                return True
        return False
