"""Baselines the paper argues against (DESIGN.md S23).

* :class:`GeneralOnlyTranslator` — an NL-to-SPARQL pipeline with no IX
  detection at all: what the pre-NL2CM state of the art (FREyA, NaLIX,
  DEANNA, ...) can do with a mixed question.  Used by experiment E7 to
  quantify the fraction of information needs such tools cover.
* :class:`SentimentOnlyDetector` — IX detection restricted to sentiment
  words, modeling the related-work observation that "existing NL tools
  can identify only individual expressions of sentiments and opinions,
  but do not account, e.g., for individual habits" (Section 1).
* :class:`KBMismatchDetector` — the "naïve approach" the introduction
  dismisses: flag as individual whatever does not match the knowledge
  base.  Fails because "most knowledge bases are incomplete".
"""

from repro.baselines.general_only import GeneralOnlyTranslator
from repro.baselines.ix_baselines import (
    KBMismatchDetector,
    SentimentOnlyDetector,
)

__all__ = [
    "GeneralOnlyTranslator",
    "SentimentOnlyDetector",
    "KBMismatchDetector",
]
