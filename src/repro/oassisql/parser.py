"""Parser for OASSIS-QL query text.

Accepts the syntax of the paper's Figure 1.  Entity names are resolved
into the ``kb:`` namespace (the inverse of the printer's local-name
rendering), so ``parse_oassisql(print_oassisql(q)) == q`` for every
query over that namespace.
"""

from __future__ import annotations

import re

from repro.errors import OassisQLSyntaxError
from repro.oassisql.ast import (
    ANYTHING,
    OassisQuery,
    QueryTerm,
    QueryTriple,
    SatisfyingClause,
    SelectClause,
    SupportThreshold,
    TopK,
)
from repro.rdf.ontology import KB
from repro.rdf.terms import Literal, Variable

__all__ = ["parse_oassisql"]

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<var>\$[A-Za-z_]\w*)
  | (?P<anything>\[\])
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_]\w*(?:,_\w*(?:,_?\w+)*|(?:,\w+)*))
  | (?P<punct>[{}.,=()])
  | (?P<newline>\n)
  | (?P<space>[^\S\n]+)
""",
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "VARIABLES", "WHERE", "SATISFYING", "ORDER", "BY", "DESC",
    "ASC", "SUPPORT", "LIMIT", "AND", "WITH", "THRESHOLD",
}


class _Lexer:
    def __init__(self, text: str):
        self.tokens: list[tuple[str, str, int]] = []
        line = 1
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise OassisQLSyntaxError(
                    f"unexpected character {text[pos]!r}", line
                )
            kind = m.lastgroup
            value = m.group()
            if kind == "newline":
                line += 1
            elif kind not in ("space", "comment"):
                if kind == "name" and value.upper() in _KEYWORDS:
                    # Keep the original spelling: keyword words are
                    # legal entity names in term position ("[] with
                    # Coffee"), where case matters.
                    kind = "keyword"
                self.tokens.append((kind, value, line))
            pos = m.end()
        self.pos = 0

    def peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            last = self.tokens[-1][2] if self.tokens else 1
            raise OassisQLSyntaxError("unexpected end of query", last)
        self.pos += 1
        return tok

    @staticmethod
    def _value_matches(kind: str, actual: str, expected: str) -> bool:
        if kind == "keyword":
            return actual.upper() == expected.upper()
        return actual == expected

    def accept(self, kind: str, value: str | None = None) -> bool:
        tok = self.peek()
        if tok and tok[0] == kind and (
            value is None or self._value_matches(kind, tok[1], value)
        ):
            self.pos += 1
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None or tok[0] != kind or (
            value is not None
            and not self._value_matches(kind, tok[1], value)
        ):
            got = tok[1] if tok else "EOF"
            line = tok[2] if tok else (
                self.tokens[-1][2] if self.tokens else 1
            )
            raise OassisQLSyntaxError(
                f"expected {value or kind}, got {got!r}", line
            )
        self.pos += 1
        return tok


def parse_oassisql(text: str, validate: bool = True) -> OassisQuery:
    """Parse OASSIS-QL text into an :class:`OassisQuery`.

    The parsed query is validated (``query.validate()``) before being
    returned, so a syntactically legal but semantically broken query —
    e.g. ``LIMIT 0`` — raises rather than round-tripping.  Pass
    ``validate=False`` to get the raw AST anyway — QueryLint does, so it
    can *report* what validation would have raised instead of dying on
    the first problem.
    """
    lexer = _Lexer(text)

    select = _parse_select(lexer)
    where: list[QueryTriple] = []
    if lexer.accept("keyword", "WHERE"):
        where = _parse_block(lexer)
    satisfying: list[SatisfyingClause] = []
    if lexer.accept("keyword", "SATISFYING"):
        satisfying.append(_parse_satisfying_clause(lexer))
        while lexer.accept("keyword", "AND"):
            satisfying.append(_parse_satisfying_clause(lexer))
    if lexer.peek() is not None:
        kind, value, line = lexer.peek()
        raise OassisQLSyntaxError(f"trailing token {value!r}", line)

    query = OassisQuery(
        select=select, where=tuple(where), satisfying=tuple(satisfying)
    )
    if validate:
        query.validate()
    return query


def _parse_select(lexer: _Lexer) -> SelectClause:
    lexer.expect("keyword", "SELECT")
    if lexer.accept("keyword", "VARIABLES"):
        return SelectClause(variables=None)
    names: list[str] = []
    while True:
        kind, value, line = lexer.expect("var")
        names.append(value[1:])
        if not lexer.accept("punct", ","):
            break
    return SelectClause(variables=tuple(names))


def _parse_block(lexer: _Lexer) -> list[QueryTriple]:
    lexer.expect("punct", "{")
    triples: list[QueryTriple] = []
    while True:
        triples.append(_parse_triple(lexer))
        if lexer.accept("punct", "."):
            if lexer.accept("punct", "}"):
                break
            continue
        lexer.expect("punct", "}")
        break
    if not triples:
        kind, value, line = lexer.peek() or ("", "", 1)
        raise OassisQLSyntaxError("empty clause block", line)
    return triples


def _parse_triple(lexer: _Lexer) -> QueryTriple:
    s = _parse_term(lexer)
    p = _parse_term(lexer)
    o = _parse_term(lexer)
    return QueryTriple(s, p, o)


#: Escape sequences the printer emits (see ``Literal.n3``); the exact
#: inverse lives here so string literals round-trip byte-for-byte.
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape(body: str) -> str:
    """Decode a quoted string literal's body.

    Processed left-to-right so ``\\\\n`` decodes to backslash + ``n``,
    not a newline — ``str.replace`` chains get this wrong.  Unknown
    escapes keep the escaped character (lenient, like the old parser).
    """
    if "\\" not in body:
        return body
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_term(lexer: _Lexer) -> QueryTerm:
    kind, value, line = lexer.next()
    if kind == "var":
        return Variable(value[1:])
    if kind == "anything":
        return ANYTHING
    if kind == "string":
        return Literal(_unescape(value[1:-1]))
    if kind == "number":
        is_float = any(c in value for c in ".eE")
        return Literal(float(value) if is_float else int(value))
    if kind == "name":
        return KB[value]
    if kind == "keyword":
        # Keywords are legal entity names in term position (e.g. an
        # entity called "Support" would be unusual but harmless).
        return KB[value]
    raise OassisQLSyntaxError(f"unexpected token {value!r} in triple", line)


def _parse_satisfying_clause(lexer: _Lexer) -> SatisfyingClause:
    triples = _parse_block(lexer)
    qualifier = _parse_qualifier(lexer)
    return SatisfyingClause(triples=tuple(triples), qualifier=qualifier)


def _parse_qualifier(lexer: _Lexer):
    if lexer.accept("keyword", "ORDER"):
        lexer.expect("keyword", "BY")
        tok = lexer.next()
        if tok[0] != "keyword" or tok[1].upper() not in ("DESC", "ASC"):
            raise OassisQLSyntaxError(
                f"expected DESC or ASC, got {tok[1]!r}", tok[2]
            )
        descending = tok[1].upper() == "DESC"
        lexer.expect("punct", "(")
        lexer.expect("keyword", "SUPPORT")
        lexer.expect("punct", ")")
        lexer.expect("keyword", "LIMIT")
        kind, value, line = lexer.expect("number")
        if "." in value:
            raise OassisQLSyntaxError(f"LIMIT must be an integer", line)
        return TopK(k=int(value), descending=descending)
    if lexer.accept("keyword", "WITH"):
        lexer.expect("keyword", "SUPPORT")
        lexer.expect("keyword", "THRESHOLD")
        lexer.expect("punct", "=")
        kind, value, line = lexer.expect("number")
        return SupportThreshold(threshold=float(value))
    tok = lexer.peek()
    got = tok[1] if tok else "EOF"
    line = tok[2] if tok else 1
    raise OassisQLSyntaxError(
        f"expected a support qualifier (ORDER BY/WITH), got {got!r}", line
    )
