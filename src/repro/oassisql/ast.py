"""Abstract syntax tree for OASSIS-QL queries.

Terms inside query triples reuse the RDF term types
(:class:`~repro.rdf.terms.IRI`, :class:`~repro.rdf.terms.Literal`,
:class:`~repro.rdf.terms.Variable`) plus :data:`ANYTHING` — the ``[]``
placeholder that "stands, intuitively, for anything" (paper
Section 2.1) and projects an individual participant out of a fact-set.

Entity IRIs live in the ``kb:`` namespace; the printer renders them by
local name, which is how Figure 1 displays them
(``Forest_Hotel,_Buffalo,_NY``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import OassisQLValidationError
from repro.rdf.terms import IRI, Literal, Variable

__all__ = [
    "Anything", "ANYTHING", "QueryTerm", "QueryTriple", "SelectClause",
    "TopK", "SupportThreshold", "SupportQualifier", "SatisfyingClause",
    "OassisQuery",
]


class Anything:
    """The ``[]`` wildcard: an existential that is projected out.

    A process-wide singleton, so ``term is ANYTHING`` works everywhere.
    Equality and hashing are defined defensively anyway (any two
    ``Anything`` instances are equal), and copying/pickling returns the
    singleton — AST analysis passes may ``copy.deepcopy`` a query and
    must still see ``ANYTHING`` identity preserved.
    """

    _instance: "Anything | None" = None

    def __new__(cls) -> "Anything":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Anything)

    def __hash__(self) -> int:
        return hash(Anything)

    def __copy__(self) -> "Anything":
        return self

    def __deepcopy__(self, memo: dict) -> "Anything":
        return self

    def __reduce__(self):
        # Unpickling calls Anything(), which returns the singleton.
        return (Anything, ())

    def __repr__(self) -> str:
        return "[]"

    def __str__(self) -> str:
        return "[]"


#: The singleton ``[]`` term.
ANYTHING = Anything()

QueryTerm = Union[IRI, Literal, Variable, Anything]


@dataclass(frozen=True, slots=True)
class QueryTriple:
    """One subject-predicate-object triple of a query clause."""

    s: QueryTerm
    p: QueryTerm
    o: QueryTerm

    def variables(self) -> set[str]:
        """Names of the variables this triple mentions."""
        return {
            t.name for t in (self.s, self.p, self.o)
            if isinstance(t, Variable)
        }

    def terms(self) -> tuple[QueryTerm, QueryTerm, QueryTerm]:
        return (self.s, self.p, self.o)

    def has_anything(self) -> bool:
        """True if any position is the ``[]`` wildcard."""
        return any(isinstance(t, Anything) for t in self.terms())


@dataclass(frozen=True, slots=True)
class SelectClause:
    """The SELECT clause.

    ``variables=None`` renders as ``SELECT VARIABLES`` — no projection,
    bindings of every variable are returned (the paper's default).  A
    tuple of names projects onto that subset.
    """

    variables: tuple[str, ...] | None = None

    @property
    def projects_all(self) -> bool:
        return self.variables is None


@dataclass(frozen=True, slots=True)
class TopK:
    """``ORDER BY DESC(SUPPORT) LIMIT k`` — the k best-supported patterns.

    ``descending=False`` gives bottom-k (``ORDER BY ASC(SUPPORT)``).
    """

    k: int
    descending: bool = True

    def validate(self) -> None:
        if self.k <= 0:
            raise OassisQLValidationError(f"LIMIT must be positive, got "
                                          f"{self.k}")


@dataclass(frozen=True, slots=True)
class SupportThreshold:
    """``WITH SUPPORT THRESHOLD = θ`` — keep patterns with support >= θ."""

    threshold: float

    def validate(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise OassisQLValidationError(
                f"support threshold must be in [0, 1], got {self.threshold}"
            )


SupportQualifier = Union[TopK, SupportThreshold]


@dataclass(frozen=True, slots=True)
class SatisfyingClause:
    """One ``{...}`` subclause of SATISFYING: a fact-set plus qualifier.

    The fact-set describes a single event or property to be mined from
    the crowd; all its triples are asked about together (paper
    Section 2.6: the visit and its season share a subclause).
    """

    triples: tuple[QueryTriple, ...]
    qualifier: SupportQualifier

    def variables(self) -> set[str]:
        out: set[str] = set()
        for t in self.triples:
            out |= t.variables()
        return out

    def validate(self) -> None:
        if not self.triples:
            raise OassisQLValidationError("empty SATISFYING subclause")
        self.qualifier.validate()


@dataclass(frozen=True, slots=True)
class OassisQuery:
    """A complete OASSIS-QL query."""

    select: SelectClause
    where: tuple[QueryTriple, ...]
    satisfying: tuple[SatisfyingClause, ...]

    # -- introspection -------------------------------------------------------

    def where_variables(self) -> set[str]:
        out: set[str] = set()
        for t in self.where:
            out |= t.variables()
        return out

    def satisfying_variables(self) -> set[str]:
        out: set[str] = set()
        for clause in self.satisfying:
            out |= clause.variables()
        return out

    def all_variables(self) -> set[str]:
        return self.where_variables() | self.satisfying_variables()

    def validate(self) -> None:
        """Check the semantic constraints of a well-formed query.

        Raises:
            OassisQLValidationError: on an empty query, an out-of-range
                qualifier, or a SELECT projection over unknown variables.
        """
        if not self.where and not self.satisfying:
            raise OassisQLValidationError(
                "query needs a WHERE or SATISFYING clause"
            )
        for clause in self.satisfying:
            clause.validate()
        if self.select.variables is not None:
            unknown = set(self.select.variables) - self.all_variables()
            if unknown:
                raise OassisQLValidationError(
                    "SELECT projects unknown variables: "
                    + ", ".join(sorted(unknown))
                )
