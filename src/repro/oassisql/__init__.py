"""OASSIS-QL: the crowd-mining query language NL2CM targets.

OASSIS-QL (Amsterdamer et al., SIGMOD 2014) extends SPARQL with crowd
mining.  A query has three parts (paper Section 2.1):

* ``SELECT`` — which variables' significant bindings are returned;
* ``WHERE`` — a SPARQL-like selection over the general-knowledge
  ontology;
* ``SATISFYING`` — data patterns (fact-sets) to be mined from the crowd,
  each qualified by a support criterion: top-/bottom-k
  (``ORDER BY DESC(SUPPORT)`` + ``LIMIT k``) or a minimal support
  threshold (``WITH SUPPORT THRESHOLD = θ``).

This package provides the AST (:mod:`repro.oassisql.ast`), a parser
(:mod:`repro.oassisql.parser`) and a printer
(:mod:`repro.oassisql.printer`) whose output matches the paper's
Figure 1 formatting exactly.
"""

from repro.oassisql.ast import (
    ANYTHING,
    Anything,
    OassisQuery,
    QueryTriple,
    SatisfyingClause,
    SelectClause,
    SupportThreshold,
    TopK,
)
from repro.oassisql.parser import parse_oassisql
from repro.oassisql.printer import print_oassisql

__all__ = [
    "ANYTHING",
    "Anything",
    "OassisQuery",
    "QueryTriple",
    "SatisfyingClause",
    "SelectClause",
    "SupportThreshold",
    "TopK",
    "parse_oassisql",
    "print_oassisql",
]
