"""OASSIS-QL printer, matching the paper's Figure 1 layout.

The rendering conventions, taken line-by-line from Figure 1:

* ``SELECT VARIABLES`` (or ``SELECT $x, $y`` under projection);
* each clause keyword on its own line;
* a ``{`` block with one triple per line, terminated by ``.`` except the
  last, closing ``}`` on the final triple's line;
* entity IRIs shown by local name (``Forest_Hotel,_Buffalo,_NY``);
* top-k qualifiers as ``ORDER BY DESC(SUPPORT)`` / ``LIMIT k``;
* thresholds as ``WITH SUPPORT THRESHOLD = 0.1``;
* SATISFYING subclauses joined by a line containing ``AND``.
"""

from __future__ import annotations

from repro.oassisql.ast import (
    Anything,
    OassisQuery,
    QueryTerm,
    QueryTriple,
    SatisfyingClause,
    SupportThreshold,
    TopK,
)
from repro.rdf.terms import IRI, Literal, Variable

__all__ = ["print_oassisql", "format_term", "format_triple"]


def format_term(term: QueryTerm) -> str:
    """Render one query term the way Figure 1 displays it."""
    if isinstance(term, Variable):
        return f"${term.name}"
    if isinstance(term, Anything):
        return "[]"
    if isinstance(term, IRI):
        return term.local_name
    if isinstance(term, Literal):
        return term.n3()
    raise TypeError(f"not an OASSIS-QL term: {term!r}")


def format_triple(triple: QueryTriple) -> str:
    """Render a triple as ``s p o``."""
    return " ".join(format_term(t) for t in triple.terms())


def _format_block(triples: tuple[QueryTriple, ...]) -> str:
    """Render ``{t1.\\nt2.\\n...tn}`` — Figure 1's brace block."""
    lines = [format_triple(t) for t in triples]
    return "{" + ".\n".join(lines) + "}"


def _format_qualifier(qualifier) -> list[str]:
    if isinstance(qualifier, TopK):
        direction = "DESC" if qualifier.descending else "ASC"
        return [f"ORDER BY {direction}(SUPPORT)", f"LIMIT {qualifier.k}"]
    if isinstance(qualifier, SupportThreshold):
        # repr() is the shortest string that round-trips the float.
        return [f"WITH SUPPORT THRESHOLD = {qualifier.threshold!r}"]
    raise TypeError(f"unknown qualifier: {qualifier!r}")


def _format_satisfying(clause: SatisfyingClause) -> list[str]:
    return [_format_block(clause.triples), *_format_qualifier(clause.qualifier)]


def print_oassisql(query: OassisQuery) -> str:
    """Serialize ``query`` to OASSIS-QL text (Figure 1 conventions)."""
    lines: list[str] = []
    if query.select.projects_all:
        lines.append("SELECT VARIABLES")
    else:
        rendered = ", ".join(f"${v}" for v in query.select.variables)
        lines.append(f"SELECT {rendered}")

    if query.where:
        lines.append("WHERE")
        lines.append(_format_block(query.where))

    if query.satisfying:
        lines.append("SATISFYING")
        for i, clause in enumerate(query.satisfying):
            if i > 0:
                lines.append("AND")
            lines.extend(_format_satisfying(clause))

    return "\n".join(lines)
