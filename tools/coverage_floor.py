"""Measure tier-1 line coverage of ``src/repro`` without coverage.py.

CI gates coverage with ``pytest --cov=repro --cov-fail-under=<floor>``,
but the development container deliberately carries no coverage tooling.
This harness reproduces the measurement with the standard library only:

* a :func:`sys.settrace` tracer (installed on every thread via
  :func:`threading.settrace`) records executed ``(file, line)`` pairs,
  returning ``None`` from the call event for frames outside
  ``src/repro`` so foreign code runs untraced at full speed;
* the denominator is the union of ``co_lines()`` over every code
  object compiled from each source file (walked recursively through
  ``co_consts``) — the same "executable lines" definition coverage.py
  uses.

Run from the repo root::

    PYTHONPATH=src python tools/coverage_floor.py [pytest args...]

and seed ``--cov-fail-under`` a couple of points below the printed
total, so the gate catches real coverage collapses without flaking on
line-by-line drift.
"""

import os
import sys
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_PREFIX = os.path.join(REPO_ROOT, "src", "repro") + os.sep


def executable_lines(path: str) -> set[int]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    lines: set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(
            line for _, _, line in code.co_lines() if line is not None
        )
        stack.extend(
            const for const in code.co_consts
            if isinstance(const, type(code))
        )
    return lines


def main(argv: list[str]) -> int:
    import pytest

    executed: set[tuple[str, int]] = set()

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC_PREFIX):
            return None
        if event == "line":
            executed.add((filename, frame.f_lineno))
        return tracer

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(argv or ["-x", "-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_lines = 0
    total_hit = 0
    per_file = []
    for dirpath, _, filenames in os.walk(SRC_PREFIX):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            lines = executable_lines(path)
            hit = {
                line for f, line in executed
                if f == path and line in lines
            }
            total_lines += len(lines)
            total_hit += len(hit)
            rel = os.path.relpath(path, REPO_ROOT)
            pct = 100.0 * len(hit) / len(lines) if lines else 100.0
            per_file.append((pct, rel, len(hit), len(lines)))

    per_file.sort()
    print("\nfile coverage (worst first):")
    for pct, rel, hit, lines in per_file:
        print(f"  {pct:6.1f}%  {hit:4d}/{lines:<4d}  {rel}")
    total_pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"\nTOTAL: {total_hit}/{total_lines} "
          f"executable lines = {total_pct:.1f}%")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
