"""Static lock-discipline checker for the concurrent packages.

The serving, observability and resilience layers share mutable state
across threads behind ``with self._lock:`` blocks.  The bug class that
keeps re-appearing is *partial* discipline: an attribute mutated under
the lock in one method and bare in another, so readers can observe a
torn update.  This checker finds exactly that shape with the standard
library ``ast`` module — no third-party dependency:

* for every class, every ``self.<attr> = ...`` / ``self.<attr> += ...``
  / ``del self.<attr>`` site is recorded together with whether it is
  lexically inside a ``with`` statement whose context expression looks
  like a lock (an attribute whose name contains ``lock``, ``cond`` or
  ``cv``, e.g. ``self._lock`` or ``self._state._lock``);
* ``__init__``/``__new__``/``__post_init__`` are skipped — construction
  happens before the object is shared;
* an attribute mutated *both* inside and outside lock blocks is a
  finding.  Attributes only ever mutated bare are fine (they are either
  single-threaded or somebody else's problem); attributes only mutated
  under the lock are the happy path.

Findings on the ``ALLOWLIST`` are reported as warnings and do not fail
the run — each entry documents why the mixed discipline is intentional.
Everything else is an error and exits 1, which is how CI runs it::

    python tools/locklint.py src/repro/service src/repro/obs \\
        src/repro/resilience --report locklint-counts.json
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys

#: (class name, attribute) pairs where mixed lock discipline is
#: deliberate; kept warn-only so the report still surfaces them.
ALLOWLIST: dict[tuple[str, str], str] = {
    # _maybe_half_open is a private "(locked)" helper: both callers
    # (state, allow) already hold self._lock, so its bare mutations
    # are in fact lock-protected.  The checker is lexical and cannot
    # see the caller's lock.
    ("CircuitBreaker", "_state"):
        "mutated in _maybe_half_open, whose callers hold self._lock",
    ("CircuitBreaker", "_probes_inflight"):
        "mutated in _maybe_half_open, whose callers hold self._lock",
}

#: substrings that mark a ``with`` context expression as a lock.
_LOCKISH = ("lock", "cond", "cv", "mutex")

#: methods that run before the instance is shared between threads.
_CONSTRUCTORS = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__"}
)


def _is_lockish(expr: ast.expr) -> bool:
    """True when a ``with`` item's context expression looks like a lock.

    Matches bare attribute chains (``self._lock``), calls on them
    (``self._lock.acquire_timeout(...)``) and names (``lock``).
    """
    if isinstance(expr, ast.Call):
        return _is_lockish(expr.func)
    if isinstance(expr, ast.Attribute):
        return (
            any(mark in expr.attr.lower() for mark in _LOCKISH)
            or _is_lockish(expr.value)
        )
    if isinstance(expr, ast.Name):
        return any(mark in expr.id.lower() for mark in _LOCKISH)
    return False


def _self_attr_targets(node: ast.stmt):
    """Yield attribute names of ``self.<attr>`` mutated by *node*."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target] if getattr(node, "value", True) else []
    elif isinstance(node, ast.Delete):
        targets = node.targets
    else:
        return
    for target in targets:
        # Unpack tuple/list targets: ``self.a, self.b = ...``
        stack = [target]
        while stack:
            t = stack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                stack.extend(t.elts)
            elif (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                yield t.attr


class _MethodScanner(ast.NodeVisitor):
    """Record each self-attribute mutation site with its lock depth."""

    def __init__(self, sites: list) -> None:
        self.sites = sites  # (attr, line, locked)
        self._depth = 0

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_lockish(item.context_expr)
                     for item in node.items)
        if locked:
            self._depth += 1
        self.generic_visit(node)
        if locked:
            self._depth -= 1

    visit_AsyncWith = visit_With

    def _record(self, node: ast.stmt) -> None:
        for attr in _self_attr_targets(node):
            if any(mark in attr.lower() for mark in _LOCKISH):
                continue  # assigning the lock itself
            self.sites.append((attr, node.lineno, self._depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node)
        self.generic_visit(node)

    visit_AugAssign = _record
    visit_AnnAssign = _record
    visit_Delete = _record

    # Nested defs get their own ``self``; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef


def scan_file(path: str) -> list[dict]:
    """All mixed-discipline findings in one source file."""
    with open(path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    findings = []
    for cls in (n for n in ast.walk(tree)
                if isinstance(n, ast.ClassDef)):
        # (attr) -> {"locked": [(method, line)], "bare": [...]}
        per_attr: dict[str, dict[str, list]] = {}
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name in _CONSTRUCTORS:
                continue
            sites: list = []
            scanner = _MethodScanner(sites)
            for stmt in method.body:
                scanner.visit(stmt)
            for attr, line, locked in sites:
                bucket = per_attr.setdefault(
                    attr, {"locked": [], "bare": []}
                )
                bucket["locked" if locked else "bare"].append(
                    (method.name, line)
                )
        for attr, bucket in sorted(per_attr.items()):
            if bucket["locked"] and bucket["bare"]:
                findings.append({
                    "file": path,
                    "class": cls.name,
                    "attr": attr,
                    "locked": bucket["locked"],
                    "bare": bucket["bare"],
                    "allowed": (cls.name, attr) in ALLOWLIST,
                })
    return findings


def _iter_sources(paths: list[str]):
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, _, filenames in os.walk(path):
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="find attributes mutated both inside and outside "
                    "'with self._lock' blocks",
    )
    parser.add_argument("paths", nargs="+",
                        help="source files or directories to scan")
    parser.add_argument("--report", metavar="FILE",
                        help="write finding counts to FILE as JSON")
    args = parser.parse_args(argv)

    findings = []
    files = 0
    for path in _iter_sources(args.paths):
        files += 1
        findings.extend(scan_file(path))

    errors = 0
    for f in findings:
        severity = "warning" if f["allowed"] else "error"
        if not f["allowed"]:
            errors += 1
        sites = ", ".join(
            f"{m}:{line}" for m, line in f["bare"]
        )
        print(
            f"{severity} [lock-discipline] {f['file']}: "
            f"{f['class']}.{f['attr']} is mutated under a lock "
            f"({len(f['locked'])} site(s)) but bare in {sites}"
        )
        if f["allowed"]:
            print(f"  allowlisted: {ALLOWLIST[(f['class'], f['attr'])]}")
    print(
        f"{files} file(s) scanned: {errors} error(s), "
        f"{len(findings) - errors} allowlisted warning(s)"
    )

    if args.report:
        counts = {
            "files": files,
            "errors": errors,
            "warnings": len(findings) - errors,
            "findings": [
                {k: f[k] for k in
                 ("file", "class", "attr", "allowed")}
                for f in findings
            ],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(counts, fh, indent=2)
            fh.write("\n")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
