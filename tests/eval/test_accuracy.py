"""The per-domain accuracy harness: scorers, report, serialization.

The scorer units run against hand-made gold and a fake tagger so every
counting rule is pinned exactly; the report tests are golden tables
(trailing whitespace normalized) so a formatting regression shows up as
a readable diff.
"""

import json

import pytest

from repro.data.goldnlp import parse_gold_conll, sentence_from_graph
from repro.data.scenario import domain_pack
from repro.eval.accuracy import (
    TAGGER_MODES,
    AccuracyReport,
    PackAccuracy,
    ParseAccuracy,
    PosAccuracy,
    TranslationAccuracy,
    _make_tagger,
    evaluate_accuracy,
    score_pack,
    score_parse,
    score_pos,
    score_translation,
)
from repro.eval.harness import (
    DomainQuality,
    InteractionReport,
    TranslationQualityReport,
    VerificationReport,
)
from repro.eval.metrics import PrecisionRecall
from repro.nlp.depparse import DependencyParser
from repro.nlp.postag import TaggedToken


def _norm(text):
    return "\n".join(line.rstrip() for line in text.splitlines())


GOLD = parse_gold_conll(
    "# id = g-01\n"
    "# text = We visit Buffalo.\n"
    "1\tWe\tPRP\t2\tnsubj\n"
    "2\tvisit\tVBP\t0\troot\n"
    "3\tBuffalo\tNNP\t2\tdobj\n"
    "4\t.\t.\t2\tpunct\n"
    "\n"
    "# id = g-02\n"
    "# text = We go.\n"
    "1\tWe\tPRP\t2\tnsubj\n"
    "2\tgo\tVBP\t0\troot\n"
    "3\t.\t.\t2\tpunct\n"
)


class FixedTagger:
    """Tags from a lookup table; everything else is NN and unknown."""

    def __init__(self, table):
        self.table = table

    def tag(self, tokens):
        return [
            TaggedToken(t, self.table.get(t.text, "NN"))
            for t in tokens
        ]

    def known(self, word):
        return word in self.table


class TestScorePos:
    def test_perfect_tagger(self):
        tagger = FixedTagger({
            "We": "PRP", "visit": "VBP", "Buffalo": "NNP",
            "go": "VBP", ".": ".",
        })
        acc = score_pos(tagger, GOLD)
        assert (acc.tokens, acc.correct) == (7, 7)
        assert acc.accuracy == 1.0
        assert acc.sentence_accuracy == 1.0
        assert acc.known_tokens == 7
        assert acc.unknown_tokens == 0
        assert acc.confusion == {}
        assert acc.skipped == 0

    def test_mistakes_split_by_known_and_land_in_confusion(self):
        # "Buffalo" unknown -> NN (wrong); "visit" known but mistagged.
        tagger = FixedTagger({
            "We": "PRP", "visit": "VB", "go": "VBP", ".": ".",
        })
        acc = score_pos(tagger, GOLD)
        assert acc.tokens == 7
        assert acc.correct == 5
        assert acc.sentences_correct == 1
        assert acc.known_tokens == 6
        assert acc.known_correct == 5
        assert acc.unknown_tokens == 1
        assert acc.unknown_accuracy == 0.0
        assert acc.confusion == {
            ("VBP", "VB"): 1, ("NNP", "NN"): 1,
        }

    def test_tokenization_mismatch_is_skipped_not_scored(self):
        broken = parse_gold_conll(
            "# text = We visit Buffalo.\n"
            "1\tWe\tPRP\t2\tnsubj\n"
            "2\tvisit\tVBP\t0\troot\n"
            "3\tBuffalo.\tNNP\t2\tdobj\n"
        )
        acc = score_pos(FixedTagger({}), broken)
        assert acc.skipped == 1
        assert acc.tokens == 0
        assert acc.accuracy == 1.0  # vacuous, not a crash

    def test_add_merges_counts_and_confusion(self):
        a = PosAccuracy(tokens=4, correct=3, known_tokens=4,
                        known_correct=3, sentences=1,
                        confusion={("NNP", "NN"): 1})
        b = PosAccuracy(tokens=3, correct=3, known_tokens=2,
                        known_correct=2, sentences=1,
                        sentences_correct=1,
                        confusion={("NNP", "NN"): 2, ("JJ", "NN"): 1})
        a.add(b)
        assert a.tokens == 7
        assert a.correct == 6
        assert a.confusion == {("NNP", "NN"): 3, ("JJ", "NN"): 1}


class TestScoreParse:
    def test_silver_gold_scores_perfectly(self):
        parser = DependencyParser()
        silver = tuple(
            sentence_from_graph(parser.parse(text))
            for text in ("We visit Buffalo.", "We go.")
        )
        acc = score_parse(parser, silver)
        assert acc.sentences == 2
        assert acc.uas == 1.0
        assert acc.las == 1.0
        assert acc.skipped == 0

    def test_wrong_attachment_counts_against_uas_and_las(self):
        parser = DependencyParser()
        silver = sentence_from_graph(parser.parse("We visit Buffalo."))
        # Re-point one head: gold disagrees with the parser now.
        from repro.data.goldnlp import GoldSentence, GoldToken

        tokens = list(silver.tokens)
        nsubj = tokens[0]
        tokens[0] = GoldToken(nsubj.form, nsubj.tag, 3, "dep")
        tampered = GoldSentence(
            text=silver.text, tokens=tuple(tokens), id=silver.id
        )
        acc = score_parse(parser, (tampered,))
        assert acc.tokens == 4
        assert acc.uas_correct == 3
        assert acc.las_correct == 3

    def test_label_mismatch_hits_las_only(self):
        parser = DependencyParser()
        silver = sentence_from_graph(parser.parse("We visit Buffalo."))
        from repro.data.goldnlp import GoldSentence, GoldToken

        tokens = list(silver.tokens)
        nsubj = tokens[0]
        tokens[0] = GoldToken(nsubj.form, nsubj.tag, nsubj.head, "dep")
        tampered = GoldSentence(
            text=silver.text, tokens=tuple(tokens), id=silver.id
        )
        acc = score_parse(parser, (tampered,))
        assert acc.uas == 1.0
        assert acc.las_correct == acc.tokens - 1

    def test_empty_input_gives_vacuous_scores(self):
        acc = score_parse(DependencyParser(), ())
        assert acc.uas == 1.0
        assert acc.las == 1.0


class TestScoreTranslation:
    @pytest.fixture(scope="class")
    def shopping(self):
        return domain_pack("shopping")

    def test_domain_pack_translates_to_its_gold(self, shopping):
        acc = score_translation(shopping, tagger="rules")
        assert acc.gold_queries > 0
        assert acc.exact == acc.gold_queries
        assert acc.structure_avg == 1.0
        assert acc.failures == 0

    def test_unsupported_questions_are_not_counted(self, shopping):
        acc = score_translation(shopping, tagger="rules")
        supported = [q for q in shopping.corpus if q.supported]
        assert acc.questions == len(supported)


class TestScorePackAndReport:
    @pytest.fixture(scope="class")
    def report(self):
        return evaluate_accuracy([domain_pack("shopping")])

    def test_score_pack_fills_every_mode(self):
        result = score_pack(domain_pack("shopping"))
        for mode in TAGGER_MODES:
            assert result.pos[mode].tokens > 0
            assert result.parse[mode].tokens > 0
            assert result.translation[mode].gold_queries > 0

    def test_totals_aggregate_across_packs(self, report):
        total = report.totals()
        assert total.name == "ALL"
        for mode in report.taggers:
            assert total.pos[mode].tokens == sum(
                p.pos[mode].tokens for p in report.packs
            )

    def test_pack_lookup(self, report):
        assert report.pack("shopping").name == "shopping"
        with pytest.raises(KeyError):
            report.pack("nope")

    def test_make_tagger_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="tagger mode"):
            _make_tagger("neural")

    def test_json_artifact_shape(self, report, tmp_path):
        out = tmp_path / "accuracy.json"
        report.write_json(out)
        data = json.loads(out.read_text())
        assert data["experiment"] == "accuracy"
        assert data["taggers"] == list(TAGGER_MODES)
        assert set(data["packs"]) == {"shopping"}
        for surface in ("pos", "parse", "translation"):
            assert set(data["overall"][surface]) == set(TAGGER_MODES)
        assert data["overall"]["pos"]["rules"]["tokens"] > 0
        assert isinstance(data["confusion_rules"], dict)


def _demo_report():
    pos_r = PosAccuracy(
        tokens=10, correct=9, known_tokens=8, known_correct=8,
        sentences=2, sentences_correct=1,
        confusion={("NNP", "NNPS"): 1},
    )
    pos_l = PosAccuracy(
        tokens=10, correct=10, known_tokens=10, known_correct=10,
        sentences=2, sentences_correct=2,
    )
    par_r = ParseAccuracy(
        tokens=10, uas_correct=9, las_correct=8, sentences=2
    )
    par_l = ParseAccuracy(
        tokens=10, uas_correct=10, las_correct=10, sentences=2
    )
    tr_r = TranslationAccuracy(
        questions=3, gold_queries=3, exact=2, structure_sum=2.5
    )
    tr_l = TranslationAccuracy(
        questions=3, gold_queries=3, exact=3, structure_sum=3.0
    )
    pack = PackAccuracy(
        name="demo",
        pos={"rules": pos_r, "learned": pos_l},
        parse={"rules": par_r, "learned": par_l},
        translation={"rules": tr_r, "learned": tr_l},
    )
    return AccuracyReport(packs=[pack])


GOLDEN_ACCURACY = """\
POS tagging accuracy (per pack and tagger)
pack  tagger   tokens  acc    sent-acc  known  unknown
----  -------  ------  -----  --------  -----  -------
demo  rules    10      0.900  0.500     1.000  0.500
demo  learned  10      1.000  1.000     1.000  1.000
ALL   rules    10      0.900  0.500     1.000  0.500
ALL   learned  10      1.000  1.000     1.000  1.000

Dependency attachment (per pack and tagger)
pack  tagger   tokens  UAS    LAS
----  -------  ------  -----  -----
demo  rules    10      0.900  0.800
demo  learned  10      1.000  1.000
ALL   rules    10      0.900  0.800
ALL   learned  10      1.000  1.000

Translation quality vs. gold queries
pack  tagger   n  exact  structure  failures
----  -------  -  -----  ---------  --------
demo  rules    3  2/3    0.83       0
demo  learned  3  3/3    1.00       0
ALL   rules    3  2/3    0.83       0
ALL   learned  3  3/3    1.00       0

Top confusions (rules tagger, all packs)
gold  predicted  count
----  ---------  -----
NNP   NNPS       1"""


class TestGoldenTables:
    def test_accuracy_report_format(self):
        assert _norm(_demo_report().format()) == GOLDEN_ACCURACY

    def test_accuracy_json_rounds_to_four_places(self):
        data = _demo_report().to_json()
        rules = data["overall"]["translation"]["rules"]
        assert rules["exact_rate"] == 0.6667
        assert rules["structure_avg"] == 0.8333
        assert data["confusion_rules"] == {"NNP->NNPS": 1}

    def test_verification_report_format(self):
        report = VerificationReport(
            true_accepts=9, false_accepts=1, true_rejects=4,
            false_rejects=0, reason_correct=3, reject_total=5,
            tips_covered=4,
        )
        assert _norm(report.format()) == (
            "metric                    value\n"
            "------------------------  -----\n"
            "accuracy                  0.93\n"
            "supported accepted        9/9\n"
            "unsupported rejected      4/5\n"
            "rejection reason correct  3/5\n"
            "rejections with tips      4/5"
        )

    def test_interaction_report_format(self):
        report = InteractionReport(
            counts_by_type={"Confirmation": 4, "Disambiguation": 2},
            questions=10, questions_with_any=5,
            disambiguations_first_pass=2,
            disambiguations_second_pass=1,
        )
        expected = (
            "interaction                                        count\n"
            "-------------------------------------------------  -----\n"
            "Confirmation                                       4\n"
            "Disambiguation                                     2\n"
            "questions                                          10\n"
            "questions with interaction                         5\n"
            "disambiguation dialogs, 1st pass                   2\n"
            "disambiguation dialogs, 2nd pass (after feedback)  1"
        )
        assert _norm(report.format()) == expected

    def test_translation_quality_report_format(self):
        quality = DomainQuality(
            questions=2, ix=PrecisionRecall(2, 0, 0), wellformed=2,
            entity_hits=3, entity_total=4, exact_matches=1,
            gold_query_count=2, structure_sum=1.8,
        )
        report = TranslationQualityReport(
            per_domain={"travel": quality}, overall=quality,
            failures=[],
        )
        expected = (
            "domain  n  IX-P  IX-R  IX-F1  wellformed  "
            "entity-recall  exact  structure\n"
            "------  -  ----  ----  -----  ----------  "
            "-------------  -----  ---------\n"
            "travel  2  1.00  1.00  1.00   2/2         "
            "0.75           1/2    0.90\n"
            "ALL     2  1.00  1.00  1.00   2/2         "
            "0.75           1/2    0.90"
        )
        assert _norm(report.format()) == expected
