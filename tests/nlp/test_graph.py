"""Unit tests for the dependency-graph data structure."""

import pytest

from repro.errors import ParsingError
from repro.nlp.graph import DepGraph, DepNode


def make_node(i, text, tag="NN", lemma=None):
    return DepNode(index=i, text=text, lemma=lemma or text.lower(), tag=tag)


@pytest.fixture
def small_graph():
    """we/PRP visit/VBP parks/NNS -> root(visit), nsubj(we), dobj(parks)."""
    g = DepGraph("we visit parks")
    we = make_node(0, "we", "PRP")
    visit = make_node(1, "visit", "VBP")
    parks = make_node(2, "parks", "NNS", "park")
    for n in (we, visit, parks):
        g.add_node(n)
    g.add_edge(g.root_node, visit, "root")
    g.add_edge(visit, we, "nsubj")
    g.add_edge(visit, parks, "dobj")
    return g, we, visit, parks


class TestConstruction:
    def test_duplicate_node_rejected(self):
        g = DepGraph()
        g.add_node(make_node(0, "a"))
        with pytest.raises(ParsingError):
            g.add_node(make_node(0, "b"))

    def test_unknown_label_rejected(self, small_graph):
        g, we, visit, parks = small_graph
        with pytest.raises(ParsingError):
            g.add_edge(visit, parks, "frobnicate")

    def test_second_head_rejected(self, small_graph):
        g, we, visit, parks = small_graph
        with pytest.raises(ParsingError):
            g.add_edge(we, parks, "dobj")

    def test_edge_to_unknown_node_rejected(self):
        g = DepGraph()
        a = make_node(0, "a")
        b = make_node(1, "b")
        g.add_node(a)
        with pytest.raises(ParsingError):
            g.add_edge(a, b, "dobj")

    def test_root_cannot_be_dependent(self, small_graph):
        g, we, visit, parks = small_graph
        with pytest.raises(ParsingError):
            g.add_edge(visit, g.root_node, "dep")


class TestTraversal:
    def test_head(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.head == visit

    def test_children_by_label(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.children(visit, "nsubj") == [we]
        assert g.children(visit, "dobj") == [parks]

    def test_children_all(self, small_graph):
        g, we, visit, parks = small_graph
        assert set(g.children(visit)) == {we, parks}

    def test_parent(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.parent(we) == visit
        assert g.parent(visit) == g.root_node

    def test_parent_edge_label(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.parent_edge(parks).label == "dobj"

    def test_label_between(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.label_between(visit, we) == "nsubj"
        assert g.label_between(we, visit) is None

    def test_subtree(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.subtree(visit) == [we, visit, parks]
        assert g.subtree(parks) == [parks]

    def test_path(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.path(we, parks) == [we, visit, parks]
        assert g.path(we, we) == [we]

    def test_nodes_in_order(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.nodes() == [we, visit, parks]
        assert len(g) == 3

    def test_node_by_index(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.node(1) == visit
        with pytest.raises(KeyError):
            g.node(99)

    def test_contains(self, small_graph):
        g, we, visit, parks = small_graph
        assert we in g
        assert make_node(55, "x") not in g


class TestExportAndRendering:
    def test_text_span_orders_nodes(self, small_graph):
        g, we, visit, parks = small_graph
        assert g.text_span([parks, we]) == "we parks"

    def test_to_networkx(self, small_graph):
        g, we, visit, parks = small_graph
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4  # includes ROOT
        assert nxg.edges[1, 0]["label"] == "nsubj"

    def test_pretty_contains_all_edges(self, small_graph):
        g, *_ = small_graph
        rendered = g.pretty()
        for fragment in ("root(", "nsubj(", "dobj("):
            assert fragment in rendered


class TestNodeProperties:
    def test_verb_detection(self):
        assert make_node(0, "visit", "VBP").is_verb
        assert make_node(0, "should", "MD").is_verb
        assert not make_node(0, "park", "NN").is_verb

    def test_noun_detection(self):
        assert make_node(0, "park", "NN").is_noun
        assert make_node(0, "we", "PRP").is_noun
        assert not make_node(0, "visit", "VB").is_noun

    def test_proper_noun(self):
        assert make_node(0, "Buffalo", "NNP").is_proper_noun

    def test_adjective(self):
        assert make_node(0, "good", "JJ").is_adjective
