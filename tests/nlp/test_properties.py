"""Seeded property suite for the NLP substrate (accuracy-harness PR).

Three families of invariants the accuracy harness leans on:

* **offset round-trip** — every token's ``(start, end)`` span maps back
  to exactly its surface text, so gold alignment by form is sound;
* **tag-set closure** — both taggers only ever emit tags from
  :data:`TAGSET`, on arbitrary fuzzed input, so confusion matrices and
  gold validation share one closed label space;
* **determinism** — tagging the same input twice, or training the same
  perceptron twice, yields identical output (the A/B comparison would
  be meaningless otherwise).
"""

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.nlp.learned import PerceptronTagger
from repro.nlp.postag import PosTagger
from repro.nlp.postag_lexicon import TAGSET
from repro.nlp.tokenizer import tokenize

#: In-domain words, OOV words, contractions, numbers and punctuation —
#: enough variety to exercise the guesser paths of both taggers.
WORDS = [
    "Where", "do", "you", "visit", "in", "Buffalo", "the", "best",
    "places", "we", "should", "go", "hiking", "winter", "don't",
    "hotel's", "thrill-ride", "42", "3.5", "Zanzibar", "quokkas",
    "frobnicate", "xylophonic", "?", ",", "!", "(", ")", "McDonald",
    "e.g.", "U.S.", "it's",
]

sentences = st.lists(
    st.sampled_from(WORDS), min_size=1, max_size=10
).map(" ".join)

raw_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd", "Po", "Ps", "Pe", "Zs"),
        max_codepoint=0x2FF,
    ),
    max_size=60,
)

TRAIN_CORPUS = [
    [("Where", "WRB"), ("do", "VBP"), ("you", "PRP"),
     ("visit", "VB"), ("in", "IN"), ("Buffalo", "NNP"), ("?", ".")],
    [("Which", "WDT"), ("places", "NNS"), ("are", "VBP"),
     ("interesting", "JJ"), ("?", ".")],
    [("We", "PRP"), ("go", "VBP"), ("hiking", "VBG"),
     ("in", "IN"), ("the", "DT"), ("winter", "NN"), (".", ".")],
]


def _trained(seed=7):
    tagger = PerceptronTagger(seed=seed)
    tagger.train(TRAIN_CORPUS)
    return tagger


LEARNED = _trained()
RULES = PosTagger()


class TestTokenizerOffsets:
    @given(raw_text)
    @settings(max_examples=300)
    def test_spans_map_back_to_surface_text(self, text):
        try:
            tokens = tokenize(text)
        except ReproError:
            return  # rejecting weird input is fine; mis-mapping is not
        for token in tokens:
            assert text[token.start : token.end] == token.text

    @given(raw_text)
    @settings(max_examples=300)
    def test_spans_are_ordered_and_indices_sequential(self, text):
        try:
            tokens = tokenize(text)
        except ReproError:
            return
        for i, token in enumerate(tokens):
            assert token.index == i
            assert token.start < token.end
            if i:
                assert token.start >= tokens[i - 1].end


class TestTagsetClosure:
    @given(sentences)
    @settings(max_examples=200)
    def test_rules_tagger_stays_inside_the_tagset(self, text):
        tokens = tokenize(text)
        if not tokens:
            return
        for tagged in RULES.tag(tokens):
            assert tagged.tag in TAGSET

    @given(sentences)
    @settings(max_examples=200)
    def test_learned_tagger_stays_inside_the_tagset(self, text):
        tokens = tokenize(text)
        if not tokens:
            return
        for tagged in LEARNED.tag(tokens):
            assert tagged.tag in TAGSET


class TestDeterminism:
    @given(sentences)
    @settings(max_examples=100)
    def test_rules_tagging_is_repeatable(self, text):
        tokens = tokenize(text)
        if not tokens:
            return
        first = [(t.text, t.tag) for t in RULES.tag(tokens)]
        second = [(t.text, t.tag) for t in PosTagger().tag(tokens)]
        assert first == second

    @given(sentences)
    @settings(max_examples=50)
    def test_independently_trained_perceptrons_agree(self, text):
        tokens = tokenize(text)
        if not tokens:
            return
        twin = _trained()
        first = [(t.text, t.tag) for t in LEARNED.tag(tokens)]
        second = [(t.text, t.tag) for t in twin.tag(tokens)]
        assert first == second
