"""Unit tests for the POS-aware lemmatizer."""

import pytest
from hypothesis import given, strategies as st

from repro.nlp.lemma import Lemmatizer, lemmatize


class TestVerbLemmas:
    @pytest.mark.parametrize("form,lemma", [
        ("visits", "visit"), ("visited", "visit"), ("visiting", "visit"),
        ("goes", "go"), ("went", "go"), ("gone", "go"),
        ("eats", "eat"), ("ate", "eat"), ("eaten", "eat"),
        ("makes", "make"), ("making", "make"),
        ("stopped", "stop"), ("stopping", "stop"),
        ("tries", "try"), ("tried", "try"),
        ("watches", "watch"), ("cooks", "cook"),
        ("bought", "buy"), ("drank", "drink"),
        ("is", "be"), ("are", "be"), ("was", "be"), ("been", "be"),
        ("has", "have"), ("had", "have"),
        ("recommended", "recommend"),
    ])
    def test_verb_forms(self, form, lemma):
        assert lemmatize(form, "VBD") == lemma or lemmatize(form) == lemma

    def test_vbz_paradigm(self):
        assert lemmatize("visits", "VBZ") == "visit"
        assert lemmatize("misses", "VBZ") == "miss"

    def test_clitics(self):
        assert lemmatize("'re", "VBP") == "be"
        assert lemmatize("'ve", "VBP") == "have"
        assert lemmatize("n't", "RB") == "not"


class TestModalLemmas:
    def test_should_is_its_own_lemma(self):
        assert lemmatize("should", "MD") == "should"

    def test_contracted_modals(self):
        assert lemmatize("ca", "MD") == "can"
        assert lemmatize("wo", "MD") == "will"
        assert lemmatize("'ll", "MD") == "will"

    def test_could_maps_to_can(self):
        assert lemmatize("could", "MD") == "can"


class TestNounLemmas:
    @pytest.mark.parametrize("form,lemma", [
        ("places", "place"), ("hotels", "hotel"), ("cities", "city"),
        ("dishes", "dish"), ("children", "child"), ("people", "person"),
        ("men", "man"), ("women", "woman"), ("knives", "knife"),
        ("buses", "bus"), ("boxes", "box"), ("heroes", "hero"),
        ("kids", "kid"), ("opinions", "opinion"),
    ])
    def test_plural_forms(self, form, lemma):
        assert lemmatize(form, "NNS") == lemma

    def test_singular_untouched(self):
        assert lemmatize("place", "NN") == "place"

    def test_mass_noun_in_s(self):
        # 'glass' should not become 'glas'
        assert lemmatize("glass", "NN") == "glass"


class TestAdjectiveLemmas:
    @pytest.mark.parametrize("form,lemma", [
        ("better", "good"), ("best", "good"), ("worse", "bad"),
        ("worst", "bad"), ("bigger", "big"), ("biggest", "big"),
        ("happier", "happy"), ("happiest", "happy"),
        ("nicer", "nice"), ("nicest", "nice"),
    ])
    def test_degree_forms(self, form, lemma):
        tag = "JJR" if form.endswith("r") else "JJS"
        assert lemmatize(form, tag) == lemma


class TestPronounLemmas:
    def test_we_family(self):
        assert lemmatize("us", "PRP") == "we"
        assert lemmatize("our", "PRP$") == "we"

    def test_i_family(self):
        assert lemmatize("me", "PRP") == "i"
        assert lemmatize("I", "PRP") == "i"


class TestGeneralBehaviour:
    def test_output_is_lowercase(self):
        assert lemmatize("Visited", "VBD") == "visit"
        assert lemmatize("PLACES", "NNS") == "place"

    def test_unknown_pos_returns_word(self):
        assert lemmatize("zorp", "FW") == "zorp"

    def test_no_pos_tries_all_paradigms(self):
        assert lemmatize("visited") == "visit"
        assert lemmatize("places") == "place"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15))
    def test_idempotent_on_own_output(self, word):
        lemmatizer = Lemmatizer()
        once = lemmatizer.lemmatize(word, "NN")
        assert lemmatizer.lemmatize(once, "NN") == once

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15),
           st.sampled_from(["VB", "VBD", "VBZ", "NNS", "JJR", "MD", "NN"]))
    def test_never_returns_empty(self, word, pos):
        assert lemmatize(word, pos)
