"""Unit tests for the rule-based POS tagger."""

import pytest

from repro.errors import TaggingError
from repro.nlp.postag import PosTagger, tag
from repro.nlp.postag_lexicon import TAGSET


def tags_of(text):
    return [(t.text, t.tag) for t in tag(text)]


class TestClosedClasses:
    def test_determiners(self):
        assert dict(tags_of("the places"))["the"] == "DT"

    def test_pronouns(self):
        result = dict(tags_of("We like them"))
        assert result["We"] == "PRP"
        assert result["them"] == "PRP"

    def test_modals(self):
        assert dict(tags_of("we should visit"))["should"] == "MD"

    def test_wh_words(self):
        assert tags_of("What are places")[0] == ("What", "WP")
        assert tags_of("Where do you go")[0] == ("Where", "WRB")

    def test_what_before_noun_is_wdt(self):
        assert tags_of("What camera should I buy")[0] == ("What", "WDT")

    def test_prepositions(self):
        result = dict(tags_of("places near the hotel in Buffalo"))
        assert result["near"] == "IN"
        assert result["in"] == "IN"


class TestVerbs:
    def test_copula(self):
        assert dict(tags_of("the milk is good"))["is"] == "VBZ"

    def test_modal_followed_by_base_verb(self):
        result = tags_of("we should visit Buffalo")
        assert ("visit", "VB") in result

    def test_pronoun_disambiguates_verb(self):
        # 'store' is NN by default but a verb after a pronoun subject
        result = tags_of("should I store coffee")
        assert ("store", "VBP") in result

    def test_past_participle_after_have(self):
        result = tags_of("we have visited Buffalo")
        assert ("visited", "VBN") in result

    def test_bare_past_tense(self):
        result = tags_of("we visited Buffalo")
        assert ("visited", "VBD") in result

    def test_to_infinitive(self):
        result = tags_of("we want to visit Buffalo")
        assert ("to", "TO") in result
        assert ("visit", "VB") in result

    def test_imperative_start(self):
        result = tags_of("Recommend a good hotel")
        assert result[0][1] in ("VB", "VBP", "NNP") or result[0] == (
            "Recommend", "VB"
        )


class TestNouns:
    def test_proper_noun_capitalized_mid_sentence(self):
        result = dict(tags_of("places in Buffalo"))
        assert result["Buffalo"] == "NNP"

    def test_known_noun_capitalized_mid_sentence_is_nnp(self):
        # "Hotel" in "Forest Hotel" is part of a name.
        result = tags_of("near Forest Hotel")
        assert ("Forest", "NNP") in result
        assert ("Hotel", "NNP") in result

    def test_plural_noun(self):
        assert dict(tags_of("the best places"))["places"] == "NNS"

    def test_det_verb_ambiguity_resolved_to_noun(self):
        result = dict(tags_of("the visit was nice"))
        assert result["visit"] == "NN"

    def test_initialism(self):
        assert dict(tags_of("Buffalo, N.Y. is cold"))["N.Y."] == "NNP"


class TestAdjectivesAndAdverbs:
    def test_adjective(self):
        assert dict(tags_of("interesting places"))["interesting"] == "JJ"

    def test_superlative(self):
        result = dict(tags_of("the most interesting places"))
        assert result["most"] == "RBS"
        assert result["interesting"] == "JJ"

    def test_best_is_jjs(self):
        assert dict(tags_of("the best thrill ride"))["best"] == "JJS"

    def test_ly_adverb_guess(self):
        assert dict(tags_of("we walk slowly"))["slowly"] == "RB"


class TestUnknownWords:
    def test_tion_suffix(self):
        assert dict(tags_of("a great celebration"))["celebration"] == "NN"

    def test_able_suffix(self):
        assert dict(tags_of("a walkable city"))["walkable"] == "JJ"

    def test_number(self):
        assert dict(tags_of("we saw 42 parks"))["42"] == "CD"

    def test_ordinal(self):
        assert dict(tags_of("the 3rd day"))["3rd"] == "CD"

    def test_unknown_plural_guess(self):
        assert dict(tags_of("some zorblatts"))["zorblatts"] == "NNS"


class TestPossessive:
    def test_possessive_clitic(self):
        result = tags_of("the hotel's pool")
        assert ("'s", "POS") in result

    def test_is_clitic(self):
        result = tags_of("the hotel's serving breakfast")
        assert ("'s", "VBZ") in result


class TestApiContract:
    def test_all_tags_in_tagset(self):
        sentences = [
            "What are the most interesting places near Forest Hotel?",
            "Which hotel in Vegas has the best thrill ride?",
            "Is chocolate milk good for kids?",
            "We don't like crowded museums!",
        ]
        for s in sentences:
            for t in tag(s):
                assert t.tag in TAGSET, (t.text, t.tag)

    def test_empty_raises(self):
        with pytest.raises(TaggingError):
            PosTagger().tag([])

    def test_extra_lexicon(self):
        tagger = PosTagger(extra_lexicon={"oassis": ("NNP",)})
        result = tagger.tag("we like oassis")
        assert result[-1].tag == "NNP"

    def test_extra_lexicon_bad_tag_rejected(self):
        with pytest.raises(TaggingError):
            PosTagger(extra_lexicon={"foo": ("BANANA",)})

    def test_closed_class_wins_over_extra(self):
        tagger = PosTagger(extra_lexicon={"the": ("NN",)})
        assert tagger.tag("the place")[0].tag == "DT"
