"""Unit tests for the dependency parser across question constructions."""

import pytest

from repro.errors import ParsingError
from repro.nlp import parse
from repro.nlp.graph import DEPENDENCY_LABELS


def edges_of(text):
    g = parse(text)
    return {(e.label, e.head.lower, e.dependent.lower) for e in g.edges()}


class TestRunningExample:
    """The paper's running example (Figure 1 source question)."""

    SENTENCE = ("What are the most interesting places near Forest Hotel, "
                "Buffalo, we should visit in the fall?")

    @pytest.fixture(scope="class")
    def graph(self):
        return parse(self.SENTENCE)

    def test_root_is_places(self, graph):
        assert graph.head.text == "places"

    def test_copula_and_attr(self, graph):
        places = graph.head
        assert [n.text for n in graph.children(places, "cop")] == ["are"]
        assert [n.text for n in graph.children(places, "attr")] == ["What"]

    def test_interesting_modifies_places(self, graph):
        places = graph.head
        amods = graph.children(places, "amod")
        assert [n.text for n in amods] == ["interesting"]

    def test_near_pp(self, graph):
        places = graph.head
        preps = graph.children(places, "prep")
        assert [n.text for n in preps] == ["near"]
        hotel = graph.children(preps[0], "pobj")[0]
        assert hotel.text == "Hotel"

    def test_apposition(self, graph):
        hotel = next(n for n in graph if n.text == "Hotel")
        appos = graph.children(hotel, "appos")
        assert [n.text for n in appos] == ["Buffalo"]

    def test_relative_clause_on_places(self, graph):
        places = graph.head
        rcs = graph.children(places, "rcmod")
        assert [n.text for n in rcs] == ["visit"]

    def test_relative_clause_internals(self, graph):
        visit = next(n for n in graph if n.text == "visit")
        assert [n.text for n in graph.children(visit, "nsubj")] == ["we"]
        assert [n.text for n in graph.children(visit, "aux")] == ["should"]
        in_pp = graph.children(visit, "prep")
        assert [n.text for n in in_pp] == ["in"]
        assert [n.text for n in graph.children(in_pp[0], "pobj")] == ["fall"]


class TestQuestionConstructions:
    def test_wh_subject_question(self):
        e = edges_of("Which hotel in Vegas has the best thrill ride?")
        assert ("nsubj", "has", "hotel") in e
        assert ("prep", "hotel", "in") in e
        assert ("pobj", "in", "vegas") in e
        assert ("dobj", "has", "ride") in e

    def test_inversion_with_fronted_object(self):
        e = edges_of("What type of digital camera should I buy?")
        assert ("dobj", "buy", "type") in e
        assert ("nsubj", "buy", "i") in e
        assert ("aux", "buy", "should") in e
        assert ("prep", "type", "of") in e
        assert ("pobj", "of", "camera") in e

    def test_fronted_pp_question(self):
        e = edges_of("At what container should I store coffee?")
        assert ("prep", "store", "at") in e
        assert ("pobj", "at", "container") in e
        assert ("dobj", "store", "coffee") in e

    def test_yes_no_copular_question(self):
        e = edges_of("Is chocolate milk good for kids?")
        assert ("nsubj", "good", "milk") in e
        assert ("cop", "good", "is") in e
        assert ("prep", "good", "for") in e
        assert ("pobj", "for", "kids") in e

    def test_wrb_question(self):
        e = edges_of("Where do you visit in Buffalo?")
        assert ("advmod", "visit", "where") in e
        assert ("aux", "visit", "do") in e
        assert ("nsubj", "visit", "you") in e
        assert ("prep", "visit", "in") in e

    def test_do_support_yes_no(self):
        e = edges_of("Do you like sushi?")
        assert ("aux", "like", "do") in e
        assert ("nsubj", "like", "you") in e
        assert ("dobj", "like", "sushi") in e


class TestDeclaratives:
    def test_simple_svo(self):
        e = edges_of("We visit parks.")
        assert ("nsubj", "visit", "we") in e
        assert ("dobj", "visit", "parks") in e

    def test_modal_chain(self):
        e = edges_of("We should visit Buffalo.")
        assert ("aux", "visit", "should") in e

    def test_negation(self):
        e = edges_of("We do not eat meat.")
        assert ("neg", "eat", "not") in e

    def test_contracted_negation(self):
        e = edges_of("We don't eat meat.")
        assert ("neg", "eat", "n't") in e

    def test_xcomp_infinitive(self):
        e = edges_of("We want to visit a museum.")
        assert ("xcomp", "want", "visit") in e
        assert ("dobj", "visit", "museum") in e

    def test_copular_declarative(self):
        e = edges_of("Buffalo is a city.")
        assert ("nsubj", "city", "buffalo") in e
        assert ("cop", "city", "is") in e

    def test_conjoined_objects(self):
        e = edges_of("We visit parks and museums.")
        assert ("conj", "parks", "museums") in e
        assert ("cc", "parks", "and") in e

    def test_conjoined_subjects(self):
        e = edges_of("My friends and I like hiking.")
        assert ("conj", "friends", "i") in e

    def test_passive(self):
        e = edges_of("The museum was closed.")
        assert any(label in ("auxpass", "cop") for label, h, d in e
                   if d == "was")

    def test_imperative(self):
        e = edges_of("Recommend a good hotel in Buffalo.")
        assert ("dobj", "recommend", "hotel") in e


class TestNounPhrases:
    def test_compound_noun(self):
        e = edges_of("the thrill ride")
        assert ("nn", "ride", "thrill") in e

    def test_superlative_np(self):
        e = edges_of("the most interesting places")
        assert ("advmod", "interesting", "most") in e
        assert ("amod", "places", "interesting") in e

    def test_possessive(self):
        e = edges_of("the hotel's pool is big")
        assert ("poss", "pool", "hotel") in e
        assert ("possessive", "hotel", "'s") in e

    def test_numeric_modifier(self):
        e = edges_of("We saw 5 parks.")
        assert ("num", "parks", "5") in e


class TestRelativeClauses:
    def test_reduced_relative(self):
        e = edges_of("the places we visit")
        assert ("rcmod", "places", "visit") in e
        assert ("nsubj", "visit", "we") in e

    def test_reduced_relative_with_modal(self):
        e = edges_of("places we should visit in the fall")
        assert ("rcmod", "places", "visit") in e
        assert ("aux", "visit", "should") in e


class TestInvariants:
    SENTENCES = [
        "What are the most interesting places near Forest Hotel, Buffalo, "
        "we should visit in the fall?",
        "Which hotel in Vegas has the best thrill ride?",
        "What type of digital camera should I buy?",
        "Is chocolate milk good for kids?",
        "Where do you visit in Buffalo?",
        "We want to visit a romantic restaurant.",
        "Recommend a good hotel.",
        "My friends and I like parks and museums.",
    ]

    @pytest.mark.parametrize("sentence", SENTENCES)
    def test_every_token_has_exactly_one_head(self, sentence):
        g = parse(sentence)
        for node in g.nodes():
            assert g.parent_edge(node) is not None, node

    @pytest.mark.parametrize("sentence", SENTENCES)
    def test_graph_is_acyclic(self, sentence):
        g = parse(sentence)
        for node in g.nodes():
            seen = set()
            cur = node
            while cur is not None:
                assert cur.index not in seen, f"cycle at {node}"
                seen.add(cur.index)
                cur = g.parent(cur)

    @pytest.mark.parametrize("sentence", SENTENCES)
    def test_all_labels_are_known(self, sentence):
        g = parse(sentence)
        for edge in g.edges():
            assert edge.label in DEPENDENCY_LABELS

    @pytest.mark.parametrize("sentence", SENTENCES)
    def test_single_root(self, sentence):
        g = parse(sentence)
        roots = g.children(g.root_node, "root")
        assert len(roots) == 1

    def test_unparseable_raises(self):
        with pytest.raises(ParsingError):
            parse("?")
